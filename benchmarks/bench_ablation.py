"""Benchmark: ablations of the design choices DESIGN.md calls out."""

from conftest import run_once

from repro.experiments import ablation


def test_uncleanliness_tail_ablation(benchmark):
    rows = run_once(benchmark, ablation.uncleanliness_tail_ablation)
    print()
    print(ablation.format_rows(
        "Ablation: uncleanliness tail (Beta alpha) vs. spatial clustering", rows
    ))
    # Heavier tail (smaller alpha) -> stronger clustering.
    assert rows[0]["density_ratio@/24"] > rows[-1]["density_ratio@/24"]


def test_report_age_ablation(benchmark):
    rows = run_once(benchmark, ablation.report_age_ablation)
    print()
    print(ablation.format_rows(
        "Ablation: bot-report age vs. temporal prediction", rows
    ))
    # Temporal uncleanliness: every report age predicts (the paper's
    # five-month gap is the deliberately extreme case).
    assert all(row["predictive_prefixes"] > 0 for row in rows)


def test_evasion_ablation(benchmark):
    rows = run_once(benchmark, ablation.evasion_ablation)
    print()
    print(ablation.format_rows(
        "Ablation: blacklist-aware attackers vs. prediction", rows
    ))
    # Full evasion of the listed /24s guts fine-grained prediction...
    assert rows[-1]["intersection@/24"] < 0.3 * max(rows[0]["intersection@/24"], 1)
    # ...but the unclean /16s still leak: some predictive band survives.
    assert rows[-1]["predictive_prefixes"] > 0
    assert rows[-1]["intersection@/16"] >= 0.5 * rows[0]["intersection@/16"]


def test_clustering_ablation(benchmark):
    rows = run_once(benchmark, ablation.clustering_ablation)
    print()
    print(ablation.format_rows(
        "Ablation: homogeneous /24 blocks vs network-aware clustering", rows
    ))
    # Bots cluster under every partitioning...
    assert all(row["bots_cluster"] for row in rows)
    # ...but heterogeneous partitions span orders of magnitude in size,
    # the paper's reason for homogeneous blocks (§4.1).
    spreads = [row["size_spread"] for row in rows if row["partitioning"].startswith("clusters(p=0.")]
    assert any(spread not in ("1x",) for spread in spreads)


def test_field_stability_ablation(benchmark):
    rows = run_once(benchmark, ablation.field_stability_ablation)
    print()
    print(ablation.format_rows(
        "Ablation: uncleanliness-field stability (the temporal mechanism)", rows
    ))
    # Spatial clustering survives any stability (dirt always clusters
    # somewhere)...
    assert all(row["spatial_holds"] is True for row in rows)
    # ...but temporal prediction needs field memory: a frozen field keeps
    # the full band, a memoryless one loses (almost) all of it.
    assert rows[0]["predictive_prefixes"] > 3 * max(rows[-1]["predictive_prefixes"], 1)


def test_estimator_ablation(benchmark, scenario):
    rows = run_once(benchmark, ablation.estimator_ablation, scenario)
    print()
    print(ablation.format_rows(
        "Ablation: naive vs. empirical control estimation (full scale)", rows
    ))
    # The naive estimate always inflates the apparent density gap.
    for row in rows:
        assert row["gap_vs_naive"] >= row["gap_vs_empirical"]


def test_prefix_band_ablation(benchmark, scenario):
    rows = run_once(benchmark, ablation.prefix_band_ablation, scenario)
    print()
    print(ablation.format_rows(
        "Ablation: predictor quality across the prefix band (full scale)", rows
    ))
    # The mid band wins; the extreme short end is not uniformly better.
    winners = [row["prefix"] for row in rows if row["better_predictor"]]
    assert winners, "no predictive prefixes at all"
    assert any(20 <= n <= 24 for n in winners)
