"""Benchmark: regenerate Figure 1 (scanning vs. botnet population).

Runs its own 18-week simulation with a mid-observation bot report and a
post-report cleanup intervention, then checks the figure's three claims.
"""

from conftest import run_once

from repro.experiments import figure1


def test_figure1(benchmark):
    result = run_once(benchmark, figure1.run)
    print()
    print(figure1.format_result(result))

    # Claim 1: a large share of the reported botnet is seen scanning at
    # the peak (paper: ~35%).
    assert result.peak_overlap_fraction() > 0.15
    # Claim 2: the /24 overlay identifies at least as many bot addresses
    # as the address-level intersection, every week.
    assert result.block_overlay_dominates()
    # Claim 3: scanning from the reported botnet drops noticeably after
    # the report circulates.
    assert result.activity_drops_after_report()
    # The peak overlap happens near the report week, not long after.
    peak_week = result.bot_address_overlap.index(max(result.bot_address_overlap))
    assert abs(peak_week - result.report_week) <= 2
