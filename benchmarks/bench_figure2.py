"""Benchmark: regenerate Figure 2 (density estimation techniques)."""

from conftest import BENCH_SUBSETS, run_once

from repro.experiments import figure2


def test_figure2(benchmark, scenario, bench_rng):
    result = run_once(
        benchmark,
        figure2.run,
        scenario,
        bench_rng,
        subsets=BENCH_SUBSETS,
        naive_subsets=20,
    )
    print()
    print(figure2.format_result(result))

    # Paper shape: naive estimate far above the empirical one, doubling
    # per added bit while saturated; the bot report denser than both.
    assert result.naive_overdisperses()
    assert result.naive_doubles_per_bit()
    assert result.bot_densest()
    # The naive/empirical gap is large at short prefixes (Kohler et al.:
    # real addresses are far from uniform).
    density = result.density
    assert density.naive[16].median > 3 * density.control[16].median
