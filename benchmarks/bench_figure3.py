"""Benchmark: regenerate Figure 3 (comparative density, four classes)."""

from conftest import BENCH_SUBSETS, run_once

from repro.experiments import figure3


def test_figure3(benchmark, scenario, bench_rng):
    result = run_once(
        benchmark, figure3.run, scenario, bench_rng, subsets=BENCH_SUBSETS
    )
    print()
    print(figure3.format_result(result))

    # Paper shape: every unclean class is at least as dense as control at
    # every prefix length in [16, 32] (Eq. 3).
    assert result.all_hold()
    # And the advantage is substantial in the operative mid band.
    for tag, panel in result.panels.items():
        assert panel.density_ratio(20) > 1.3, tag
