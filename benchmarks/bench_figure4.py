"""Benchmark: regenerate Figure 4 (predictive capacity of R_bot-test)."""

from conftest import BENCH_SUBSETS, run_once

from repro.experiments import figure4


def test_figure4(benchmark, scenario, bench_rng):
    result = run_once(
        benchmark, figure4.run, scenario, bench_rng, subsets=BENCH_SUBSETS
    )
    print()
    print(figure4.format_result(result))

    # Paper shape: the five-month-old bot report beats control for bots,
    # spam and scan at the 95% level somewhere in [16, 32]...
    assert result.bot_spam_scan_predicted()
    # ...with the win covering the paper's operative region (>= 20 bits)...
    for tag in ("bot", "spam", "scan"):
        winners = result.panels[tag].predictive_prefixes()
        assert any(20 <= n <= 24 for n in winners), tag
    # ...but NOT for phishing (panel ii), the multidimensionality result.
    assert result.phishing_not_predicted()
