"""Benchmark: regenerate Figure 5 (phishing predicts phishing)."""

from conftest import BENCH_SUBSETS, run_once

from repro.experiments import figure5


def test_figure5(benchmark, scenario, bench_rng):
    result = run_once(
        benchmark, figure5.run, scenario, bench_rng, subsets=BENCH_SUBSETS
    )
    print()
    print(figure5.format_result(result))

    # Paper shape: past phishing IS a better-than-control predictor of
    # future phishing (temporal uncleanliness holds on its own dimension).
    assert result.phishing_self_predicts()
    low, high = result.prediction.predictive_range()
    assert low <= 24 and high >= low
