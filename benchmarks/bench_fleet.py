#!/usr/bin/env python
"""Fleet supervisor throughput / degraded-overhead / resume guard.

Three promises of the fleet layer are enforced here (all sized for the
single-core CI runner — ratios against a sequential baseline, never
parallel-speedup floors):

* **Supervision is cheap.**  Running ``N`` member networks through the
  :class:`~repro.fleet.supervisor.FleetSupervisor` (checksums, retry
  machinery, clearinghouse pooling) must cost close to the ``N``
  sequential ``scenario_reports`` builds it wraps — the floor is the
  sequential/fleet time ratio.
* **Degradation is not amplification.**  A fleet with one permanently
  failing member must finish *no slower* than about the fault-free
  run: the failing shard's retries are bounded and the clearinghouse
  pools whatever delivered.  Ceiling on degraded/fault-free time.
* **Resume beats recompute.**  A second supervisor over the same
  cache directory must resume every shard from its checkpoint far
  faster than the cold run — the floor is the cold/resume ratio.

Before any timing the script asserts the fleet's pooled scores are
bit-identical to pooling the sequential builds directly.

Results land in ``BENCH_fleet.json``; ``--guard`` exits non-zero when a
floor/ceiling is broken.

Usage::

    PYTHONPATH=src python benchmarks/bench_fleet.py \
        --scale full --output BENCH_fleet.json
    PYTHONPATH=src python benchmarks/bench_fleet.py --scale small --guard
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

SCALES = {
    # member count, timing repetitions (min-of-reps), retry budget
    "full": dict(shards=4, reps=2),
    "small": dict(shards=3, reps=1),
}

#: sequential_seconds / fleet_seconds must stay above this (the fleet
#: machinery may only add bounded overhead on top of the real work).
THROUGHPUT_FLOORS = {"full": 0.70, "small": 0.65}
#: degraded_seconds / faultfree_seconds must stay below this (one dead
#: member means bounded retries, not amplification).
DEGRADED_CEILING = 1.15
#: cold_seconds / resume_seconds must stay above this.
RESUME_FLOORS = {"full": 3.0, "small": 2.0}


def _timed(op) -> float:
    start = time.perf_counter()
    op()
    return time.perf_counter() - start


def _reset_caches() -> None:
    from repro.core.stages import reset_scenario_engine
    from repro.engine.store import reset_default_store

    reset_default_store()
    reset_scenario_engine()


def _dead_member_runner(shard, feed_tags):
    from repro.fleet import scenario_reports

    if shard.name == "net-a":
        raise RuntimeError("member network offline")
    return scenario_reports(shard, feed_tags)


def check_identity(config) -> int:
    """Fleet pooling must equal pooling the sequential builds."""
    from repro.fleet import (
        Clearinghouse,
        FleetSupervisor,
        ShardFeed,
        reports_as_of,
        scenario_reports,
    )

    _reset_caches()
    feeds = []
    for shard in config.shards:
        reports = scenario_reports(shard, config.feed_tags)
        feeds.append(
            ShardFeed(
                name=shard.name, reports=reports, as_of=reports_as_of(reports)
            )
        )
    direct = Clearinghouse(feeds, prefix_len=config.prefix_len).pooled_scores()

    _reset_caches()
    result = FleetSupervisor(config, checkpoint=False).run()
    pooled = result.clearinghouse.pooled_scores()
    if not np.array_equal(pooled.scores, direct.scores):
        raise AssertionError("fleet pooled scores diverge from direct pooling")
    if not np.array_equal(pooled.blocks, direct.blocks):
        raise AssertionError("fleet pooled blocks diverge from direct pooling")
    return len(pooled)


def bench_throughput(config, params) -> dict:
    from repro.fleet import FleetSupervisor, scenario_reports

    def sequential():
        _reset_caches()
        for shard in config.shards:
            scenario_reports(shard, config.feed_tags)

    def fleet():
        _reset_caches()
        FleetSupervisor(config, checkpoint=False).run()

    seq_s = min(_timed(sequential) for _ in range(params["reps"]))
    fleet_s = min(_timed(fleet) for _ in range(params["reps"]))
    return {
        "shards": len(config.shards),
        "sequential_seconds": round(seq_s, 4),
        "fleet_seconds": round(fleet_s, 4),
        "ratio": round(seq_s / fleet_s, 3),
    }


def bench_degraded(config, params) -> dict:
    from dataclasses import replace

    from repro.fleet import FleetSupervisor

    dead_config = replace(config, backoff=0.0)

    def faultfree():
        _reset_caches()
        FleetSupervisor(config, checkpoint=False).run()

    def degraded():
        _reset_caches()
        FleetSupervisor(
            dead_config, runner=_dead_member_runner, checkpoint=False
        ).run()

    # Sanity: the degraded run really quarantines exactly one member.
    _reset_caches()
    probe = FleetSupervisor(
        dead_config, runner=_dead_member_runner, checkpoint=False
    ).run()
    if probe.quarantined != ("net-a",):
        raise AssertionError(f"unexpected quarantine set: {probe.quarantined}")

    ok_s = min(_timed(faultfree) for _ in range(params["reps"]))
    degraded_s = min(_timed(degraded) for _ in range(params["reps"]))
    return {
        "quarantined": list(probe.quarantined),
        "faultfree_seconds": round(ok_s, 4),
        "degraded_seconds": round(degraded_s, 4),
        "ratio": round(degraded_s / ok_s, 3),
    }


def bench_resume(config, params) -> dict:
    from repro.engine.store import ArtifactStore
    from repro.fleet import FleetSupervisor

    with tempfile.TemporaryDirectory() as cache_dir:
        store = ArtifactStore(disk_dir=Path(cache_dir))

        _reset_caches()
        cold_s = _timed(lambda: FleetSupervisor(config, store=store).run())

        def resume():
            _reset_caches()
            result = FleetSupervisor(config, store=store).run()
            if not all(o.from_checkpoint for o in result.outcomes):
                raise AssertionError("resume missed a shard checkpoint")

        resume_s = min(_timed(resume) for _ in range(max(2, params["reps"])))
    return {
        "cold_seconds": round(cold_s, 4),
        "resume_seconds": round(resume_s, 4),
        "speedup": round(cold_s / resume_s, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(SCALES), default="full")
    parser.add_argument("--output", default="BENCH_fleet.json")
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when a floor is broken")
    args = parser.parse_args(argv)

    # Hermetic cold timings: no disk cache behind the default store.
    os.environ["REPRO_CACHE_DIR"] = ""

    from repro.fleet import heterogeneous_fleet

    params = SCALES[args.scale]
    config = heterogeneous_fleet(params["shards"], seed=7, small=True)

    pooled_blocks = check_identity(config)
    sections = {
        "throughput": bench_throughput(config, params),
        "degraded": bench_degraded(config, params),
        "resume": bench_resume(config, params),
    }

    snapshot = {
        "suite": "fleet",
        "scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "pooled_blocks": pooled_blocks,
        "throughput_floor": THROUGHPUT_FLOORS[args.scale],
        "degraded_ceiling": DEGRADED_CEILING,
        "resume_floor": RESUME_FLOORS[args.scale],
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    throughput = sections["throughput"]
    degraded = sections["degraded"]
    resume = sections["resume"]
    print(
        f"  throughput  {throughput['shards']} shards: sequential "
        f"{throughput['sequential_seconds']:.2f}s vs fleet "
        f"{throughput['fleet_seconds']:.2f}s (ratio {throughput['ratio']})"
    )
    print(
        f"  degraded    {degraded['degraded_seconds']:.2f}s vs fault-free "
        f"{degraded['faultfree_seconds']:.2f}s (ratio {degraded['ratio']})"
    )
    print(
        f"  resume      cold {resume['cold_seconds']:.2f}s vs resume "
        f"{resume['resume_seconds']:.4f}s ({resume['speedup']}x)"
    )

    if not args.guard:
        return 0
    failed = []
    if throughput["ratio"] < THROUGHPUT_FLOORS[args.scale]:
        failed.append(
            f"throughput: sequential/fleet {throughput['ratio']} < "
            f"floor {THROUGHPUT_FLOORS[args.scale]}"
        )
    if degraded["ratio"] > DEGRADED_CEILING:
        failed.append(
            f"degraded: degraded/faultfree {degraded['ratio']} > "
            f"ceiling {DEGRADED_CEILING}"
        )
    if resume["speedup"] < RESUME_FLOORS[args.scale]:
        failed.append(
            f"resume: cold/resume {resume['speedup']}x < "
            f"floor {RESUME_FLOORS[args.scale]}x"
        )
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
