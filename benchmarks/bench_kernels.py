"""Microbenchmarks for the columnar hot-path kernels.

Times the two paths the PR-2 vectorization targets — traffic-stage cold
build and TRW detection — plus the scan detector, the DNSBL query-log
analytics and the raw day-sampling kernel.  Unlike the table/figure
benchmarks these run the hot paths directly (no artifact engine), so a
cold build really is cold.

Scale is controlled by ``REPRO_BENCH_SCALE``:

* ``full`` (default) — the reproduction-scale scenario (~1.4M flows);
* ``small`` — the ~100x-smaller test scenario, for CI smoke runs.

There are NO timing assertions here (CI runs this with
``--benchmark-disable`` as a smoke test); the numeric record lives in
``BENCH_kernels.json`` via ``snapshot_kernels.py``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from conftest import run_once

from repro.core.blocklist import Blocklist
from repro.core.report import Report
from repro.core.scenario import ScenarioConfig
from repro.detect.dnsbl import DNSBLServer
from repro.detect.scan import ScanDetector
from repro.detect.trw import TRWDetector
from repro.flows.generator import TrafficGenerator
from repro.flows.kernels import sample_day_segments
from repro.sim.botnet import BotnetSimulation
from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import PAPER_WINDOWS

SCALE = os.environ.get("REPRO_BENCH_SCALE", "full")


def _scenario_config() -> ScenarioConfig:
    return ScenarioConfig.small() if SCALE == "small" else ScenarioConfig()


@pytest.fixture(scope="module")
def actors():
    """The internet + botnet substrate (not part of any timed region)."""
    config = _scenario_config()
    seeds = np.random.SeedSequence(config.seed).spawn(8)
    internet = SyntheticInternet(config.internet, np.random.default_rng(seeds[0]))
    botnet = BotnetSimulation(internet, config.botnet, np.random.default_rng(seeds[1]))
    return config, internet, botnet


@pytest.fixture(scope="module")
def border(actors):
    """One October border capture, built once for the detector benches."""
    config, internet, botnet = actors
    generator = TrafficGenerator(internet, botnet, config.traffic)
    return generator.generate(
        PAPER_WINDOWS.OCTOBER,
        np.random.default_rng(np.random.SeedSequence(config.seed).spawn(8)[3]),
    )


def test_traffic_cold_build(benchmark, actors):
    config, internet, botnet = actors
    generator = TrafficGenerator(internet, botnet, config.traffic)

    def build():
        return generator.generate(
            PAPER_WINDOWS.OCTOBER,
            np.random.default_rng(np.random.SeedSequence(config.seed).spawn(8)[3]),
        )

    traffic = run_once(benchmark, build)
    assert len(traffic.flows) > 0
    assert traffic.populations["fast_scanners"].size > 0


def test_trw_walk(benchmark, border):
    states = run_once(benchmark, TRWDetector().walk, border.flows)
    assert states  # every capture has at least one walked source


def test_trw_detect(benchmark, border):
    detected = run_once(benchmark, TRWDetector().detect, border.flows)
    assert detected.dtype == np.uint32


def test_scan_detect(benchmark, border):
    detected = run_once(benchmark, ScanDetector().detect, border.flows)
    assert set(detected.tolist()) >= set(
        border.ground_truth("fast_scanners").tolist()
    )


def test_dnsbl_query_log_analytics(benchmark, border):
    """Bulk lookups plus the recon sweep over the resulting query log."""
    hostile = Report.from_addresses(
        "hostile", border.ground_truth("slow_scanners")
    )
    blocklist = Blocklist()
    blocklist.add_report(hostile, day=0)
    server = DNSBLServer(blocklist)
    rng = np.random.default_rng(2007)
    subjects = border.flows.unique_sources()
    queriers = rng.integers(1 << 24, 1 << 28, size=64, dtype=np.uint32)

    def sweep():
        for querier in queriers:
            server.query_many(int(querier), subjects, day=5)
        return server.reconnaissance_queriers(hostile, min_hits=2,
                                              min_hit_fraction=0.01)

    flagged = run_once(benchmark, sweep)
    assert len(flagged) == len(queriers)  # every querier hit the bots


def test_day_sampling_kernel(benchmark):
    """The raw segment sampler at window-scale fan-out."""
    rng = np.random.default_rng(42)
    events = 200_000 if SCALE != "small" else 5_000
    lo = rng.integers(0, 7, size=events)
    hi = lo + rng.integers(0, 14, size=events)
    counts = np.maximum(1, rng.poisson(3.0, size=events))

    def sample():
        return sample_day_segments(lo, hi, counts, np.random.default_rng(7))

    owners, days = benchmark(sample)
    assert owners.size == days.size > 0
