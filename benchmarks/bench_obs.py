#!/usr/bin/env python
"""Observability overhead guard.

Proves the two overhead promises of the tracing/metrics layer:

* **disabled** (the default): the projected cost of every no-op
  ``span()``/counter touch in a representative workload stays under
  **2%** of its runtime.  Projection (per-event no-op cost x event
  count) rather than A/B timing is used because the real disabled
  overhead is far below run-to-run timing noise.
* **enabled**: actually recording the span tree and metrics costs under
  **5%** measured wall time on the same workload.

The workload runs the instrumented hot paths directly — traffic
generation plus the scan and TRW detectors at test scale — so every
span/counter site on that path is exercised.  Results land in
``BENCH_obs.json``; ``--guard`` exits non-zero when a bound is broken
(the CI perf-guard step).

Usage::

    python benchmarks/bench_obs.py            # report only
    python benchmarks/bench_obs.py --guard    # enforce bounds
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.detect.scan import ScanDetector
from repro.detect.trw import TRWDetector
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.timeline import PAPER_WINDOWS

DISABLED_BOUND = 0.02
ENABLED_BOUND = 0.05

NOOP_CALLS = 200_000
REPEATS = 5


def build_inputs():
    internet = SyntheticInternet(
        InternetConfig(num_slash16=60, mean_hosts=30.0),
        np.random.default_rng(7),
    )
    botnet = BotnetSimulation(
        internet,
        BotnetConfig(daily_compromises=25.0, horizon_days=334),
        np.random.default_rng(8),
    )
    generator = TrafficGenerator(
        internet,
        botnet,
        TrafficConfig(benign_clients_per_day=300, suspicious_hosts=400),
    )
    return generator


def workload(generator) -> None:
    """One pass over the instrumented hot paths (generate + detect)."""
    traffic = generator.generate(PAPER_WINDOWS.OCTOBER, np.random.default_rng(9))
    ScanDetector().detect(traffic.flows)
    TRWDetector().detect(traffic.flows)


def best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def count_spans(span) -> int:
    return 1 + sum(count_spans(child) for child in span.children)


def measure() -> dict:
    generator = build_inputs()
    previous = obs_trace.set_tracer(obs_trace.Tracer(enabled=False))
    try:
        # Per-event no-op cost: one enabled-check + shared handle.
        start = time.perf_counter()
        for _ in range(NOOP_CALLS):
            with obs_trace.span("hot"):
                pass
        noop_span_s = (time.perf_counter() - start) / NOOP_CALLS

        registry = obs_metrics.set_registry(obs_metrics.MetricsRegistry())
        start = time.perf_counter()
        for _ in range(NOOP_CALLS):
            obs_metrics.inc("hot")
        counter_s = (time.perf_counter() - start) / NOOP_CALLS
        obs_metrics.set_registry(registry)

        workload(generator)  # warm caches/allocators before timing
        disabled_s = best_of(lambda: workload(generator))

        tracer = obs_trace.tracer()
        tracer.enabled = True
        enabled_s = best_of(lambda: workload(generator))
        spans_per_run = sum(count_spans(root) for root in tracer.roots) // REPEATS
        tracer.clear()
    finally:
        obs_trace.set_tracer(previous)

    # Each span site costs one no-op span plus (conservatively) two
    # metric touches on the disabled path.
    events = spans_per_run
    projected = events * (noop_span_s + 2 * counter_s)
    return {
        "workload_disabled_s": disabled_s,
        "workload_enabled_s": enabled_s,
        "noop_span_ns": noop_span_s * 1e9,
        "counter_inc_ns": counter_s * 1e9,
        "spans_per_run": events,
        "disabled_overhead_projected": projected / disabled_s,
        "enabled_overhead_measured": max(0.0, enabled_s / disabled_s - 1.0),
        "disabled_bound": DISABLED_BOUND,
        "enabled_bound": ENABLED_BOUND,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when an overhead bound is broken")
    parser.add_argument("--output", default=str(Path(__file__).with_name(
        "BENCH_obs.json")))
    args = parser.parse_args(argv)

    results = measure()
    Path(args.output).write_text(json.dumps(results, indent=2, sort_keys=True)
                                 + "\n")

    print(f"workload: disabled {results['workload_disabled_s'] * 1e3:.1f}ms, "
          f"enabled {results['workload_enabled_s'] * 1e3:.1f}ms "
          f"({results['spans_per_run']} spans/run)")
    print(f"no-op span: {results['noop_span_ns']:.0f}ns/call, "
          f"counter inc: {results['counter_inc_ns']:.0f}ns/call")
    print(f"disabled overhead (projected): "
          f"{results['disabled_overhead_projected']:.3%} "
          f"(bound {DISABLED_BOUND:.0%})")
    print(f"enabled overhead (measured):   "
          f"{results['enabled_overhead_measured']:.3%} "
          f"(bound {ENABLED_BOUND:.0%})")

    if not args.guard:
        return 0
    failed = []
    if results["disabled_overhead_projected"] >= DISABLED_BOUND:
        failed.append("disabled-tracer overhead bound broken")
    if results["enabled_overhead_measured"] >= ENABLED_BOUND:
        failed.append("enabled-tracer overhead bound broken")
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
