#!/usr/bin/env python
"""Scenario-pack guard: packs must stay cheap, and the identity free.

Three promises of the pack layer are enforced here (sized for the
single-core CI runner — ratios against the paper-default world, never
absolute seconds):

* **Building a pack config is trivial.**  A pack is a pure
  ``ScenarioConfig -> ScenarioConfig`` transform plus validation; the
  floor is builds-per-second across the whole registry.
* **The identity pack is free.**  ``paper-default`` fingerprints
  identically to the plain default, so once the default world is warm a
  pack run must resolve entirely from cache — the floor is the
  cold/warm speedup, and the warm run must perform zero stage builds.
* **Adversarial worlds are bounded.**  Every built-in pack simulates
  end to end (internet through reports) within a small multiple of the
  paper-default world: AS topology generation, DHCP rebinding, diurnal
  warping and the stale-feed replay are all vectorised kernels, not
  per-event Python.  Ceiling on pack/default cold-build time.

Results land in ``BENCH_packs.json``; ``--guard`` exits non-zero when a
floor/ceiling is broken.

Usage::

    PYTHONPATH=src python benchmarks/bench_packs.py \
        --scale full --output BENCH_packs.json
    PYTHONPATH=src python benchmarks/bench_packs.py --scale small --guard
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

import numpy as np

SCALES = {
    # timing repetitions (min-of-reps) and config-build rounds
    "full": dict(reps=3, build_rounds=200),
    "small": dict(reps=2, build_rounds=50),
}

#: Pack-config builds (transform + validate) per second, whole registry.
BUILD_FLOOR = 200.0
#: cold default build / warm paper-default resolve must exceed this.
IDENTITY_SPEEDUP_FLOORS = {"full": 5.0, "small": 5.0}
#: Every pack's cold build must stay within this multiple of the
#: paper-default cold build.
OVERHEAD_CEILINGS = {"full": 3.0, "small": 3.5}


def _timed(op) -> float:
    start = time.perf_counter()
    op()
    return time.perf_counter() - start


def _reset_caches() -> None:
    from repro.core.stages import reset_scenario_engine
    from repro.engine.store import reset_default_store

    reset_default_store()
    reset_scenario_engine()


def _cold_build_seconds(config, reps: int) -> float:
    from repro.core.scenario import PaperScenario

    def build():
        _reset_caches()
        PaperScenario._create(config).reports

    return min(_timed(build) for _ in range(reps))


def bench_build(params) -> dict:
    from repro.scenarios import list_packs

    packs = list_packs()

    def round_trip():
        for pack in packs:
            pack.build(small=True)

    seconds = min(_timed(round_trip) for _ in range(params["build_rounds"]))
    per_second = len(packs) / seconds if seconds > 0 else float("inf")
    return {
        "packs": len(packs),
        "round_seconds": round(seconds, 6),
        "builds_per_second": round(min(per_second, 1e9), 1),
    }


def bench_identity(params) -> dict:
    from repro.core.scenario import PaperScenario, ScenarioConfig
    from repro.core.stages import scenario_engine
    from repro.scenarios import get_pack

    base = ScenarioConfig.small()
    cold_s = _cold_build_seconds(base, params["reps"])

    # Warm the default world once, then resolve the identity pack.
    _reset_caches()
    PaperScenario._create(base).reports
    engine = scenario_engine()
    before = dict(engine.build_counts)
    config = get_pack("paper-default").build(small=True)

    warm_s = min(
        _timed(lambda: PaperScenario._create(config).reports)
        for _ in range(max(2, params["reps"]))
    )
    if engine.build_counts != before:
        raise AssertionError(
            "identity pack rebuilt stages on a warm store: "
            f"{before} -> {engine.build_counts}"
        )
    return {
        "cold_seconds": round(cold_s, 4),
        "warm_seconds": round(warm_s, 6),
        "speedup": round(cold_s / warm_s, 1),
    }


def bench_packs(params) -> dict:
    from repro.scenarios import get_pack, pack_names

    base_s = _cold_build_seconds(
        get_pack("paper-default").build(small=True), params["reps"]
    )
    per_pack = {}
    for name in pack_names():
        if name == "paper-default":
            continue
        seconds = _cold_build_seconds(
            get_pack(name).build(small=True), params["reps"]
        )
        per_pack[name] = {
            "seconds": round(seconds, 4),
            "ratio": round(seconds / base_s, 3),
        }
    return {
        "paper_default_seconds": round(base_s, 4),
        "packs": per_pack,
        "max_ratio": round(
            max(entry["ratio"] for entry in per_pack.values()), 3
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(SCALES), default="full")
    parser.add_argument("--output", default="BENCH_packs.json")
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when a floor is broken")
    args = parser.parse_args(argv)

    # Hermetic cold timings: no disk cache behind the default store.
    os.environ["REPRO_CACHE_DIR"] = ""

    params = SCALES[args.scale]
    sections = {
        "build": bench_build(params),
        "identity": bench_identity(params),
        "simulate": bench_packs(params),
    }

    snapshot = {
        "suite": "packs",
        "scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "build_floor": BUILD_FLOOR,
        "identity_speedup_floor": IDENTITY_SPEEDUP_FLOORS[args.scale],
        "overhead_ceiling": OVERHEAD_CEILINGS[args.scale],
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    build = sections["build"]
    identity = sections["identity"]
    simulate = sections["simulate"]
    print(
        f"  build       {build['packs']} packs at "
        f"{build['builds_per_second']:.0f} builds/s"
    )
    print(
        f"  identity    cold {identity['cold_seconds']:.2f}s vs warm "
        f"{identity['warm_seconds']:.4f}s ({identity['speedup']}x)"
    )
    print(
        f"  simulate    paper-default {simulate['paper_default_seconds']:.2f}s; "
        f"worst pack ratio {simulate['max_ratio']}"
    )
    for name, entry in sorted(simulate["packs"].items()):
        print(f"    {name:<22} {entry['seconds']:.2f}s ({entry['ratio']}x)")

    if not args.guard:
        return 0
    failed = []
    if build["builds_per_second"] < BUILD_FLOOR:
        failed.append(
            f"build: {build['builds_per_second']} builds/s < "
            f"floor {BUILD_FLOOR}"
        )
    if identity["speedup"] < IDENTITY_SPEEDUP_FLOORS[args.scale]:
        failed.append(
            f"identity: cold/warm {identity['speedup']}x < "
            f"floor {IDENTITY_SPEEDUP_FLOORS[args.scale]}x"
        )
    if simulate["max_ratio"] > OVERHEAD_CEILINGS[args.scale]:
        failed.append(
            f"simulate: worst pack/default ratio {simulate['max_ratio']} > "
            f"ceiling {OVERHEAD_CEILINGS[args.scale]}"
        )
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
