"""Benchmarks of the library's computational kernels.

Unlike the experiment benchmarks (one-shot, assert paper shapes), these
time the hot paths repeatedly so regressions in the analysis kernels are
visible: CIDR masking over large reports, Monte-Carlo subset draws, the
payload-bearing classifier, and the detectors over the October capture.
"""

import numpy as np

from repro.core import cidr as rcidr
from repro.detect.scan import ScanDetector
from repro.ipspace import cidr as icidr
from repro.detect.spam import SpamDetector


def test_block_count_kernel(benchmark, scenario):
    control = scenario.control
    result = benchmark(lambda: icidr.block_count(control, 24))
    assert result > 0


def test_intersection_kernel(benchmark, scenario):
    bot, spam = scenario.bot, scenario.spam
    result = benchmark(lambda: rcidr.intersection_count(bot, spam, 24))
    assert result >= 0


def test_control_subset_draw(benchmark, scenario):
    rng = np.random.default_rng(1)
    size = len(scenario.bot)
    sample = benchmark(lambda: scenario.control.sample(size, rng))
    assert len(sample) == size


def test_payload_bearing_classifier(benchmark, scenario):
    flows = scenario.october_traffic.flows
    mask = benchmark(flows.payload_bearing_mask)
    assert mask.shape == (len(flows),)


def test_scan_detector_full_capture(benchmark, scenario):
    flows = scenario.october_traffic.flows
    detected = benchmark.pedantic(
        lambda: ScanDetector().detect(flows), rounds=1, iterations=1
    )
    assert detected.size > 0


def test_spam_detector_full_capture(benchmark, scenario):
    flows = scenario.october_traffic.flows
    detected = benchmark.pedantic(
        lambda: SpamDetector().detect(flows), rounds=1, iterations=1
    )
    assert detected.size > 0
