#!/usr/bin/env python
"""Predictor fit+score throughput snapshot / adapter-overhead guard.

Two promises of the ``repro.predict`` layer are enforced here:

* **The protocol costs nothing.**  The ``uncleanliness`` predictor is a
  thin adapter over :class:`~repro.core.uncleanliness.UncleanlinessScorer`;
  a full fit + multi-prefix scoring pass through the protocol must stay
  within 5% of calling the scorer directly.  Before timing, the script
  asserts the two paths produce bit-identical rankings.
* **Every registered rival is benchmarked.**  Each predictor in the
  registry gets a fit + /24 scoring timing so a regression in any
  model's hot path shows up in the committed snapshot.

Results land in ``BENCH_predictors.json`` at the repo root; ``--guard``
exits non-zero when the adapter overhead reaches the 5% ceiling.

Usage::

    PYTHONPATH=src python benchmarks/bench_predictors.py \
        --scale full --output BENCH_predictors.json
    PYTHONPATH=src python benchmarks/bench_predictors.py --scale small --guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.report import DataClass, Report, ReportType
from repro.core.uncleanliness import UncleanlinessScorer
from repro.predict import UncleanlinessPredictor, list_predictors, make_predictor

SCALES = {
    # feed sizes (addresses per feed), timing repetitions
    "full": dict(feed_size=400_000, reps=7),
    "small": dict(feed_size=50_000, reps=5),
}

PREFIXES = (16, 24, 32)
OVERHEAD_CEILING_PCT = 5.0


def build_feeds(params) -> dict:
    """Three class-tagged feeds with CIDR structure.

    Addresses cluster into /16s (as real feeds do) so block counts at
    every prefix are non-trivial rather than one-address-per-block.
    """
    rng = np.random.default_rng(0xFEED)
    feeds = {}
    for tag, data_class in (
        ("bot", DataClass.BOTS),
        ("scan", DataClass.SCANNING),
        ("spam", DataClass.SPAM),
    ):
        nets = rng.integers(0, 2**16, size=256, dtype=np.uint32) << 16
        hosts = rng.integers(0, 2**16, size=params["feed_size"], dtype=np.uint32)
        addresses = nets[rng.integers(0, nets.size, size=hosts.size)] | hosts
        feeds[tag] = Report(
            tag=tag,
            addresses=np.unique(addresses),
            report_type=ReportType.PROVIDED,
            data_class=data_class,
        )
    return feeds


def _timed(op) -> float:
    start = time.perf_counter()
    op()
    return time.perf_counter() - start


def _direct_pass(feeds) -> dict:
    """The pre-protocol path: scorer called directly, class-keyed."""
    grouped = {report.data_class: report for report in feeds.values()}
    out = {}
    for prefix_len in PREFIXES:
        out[prefix_len] = UncleanlinessScorer(prefix_len=prefix_len).score(
            grouped
        )
    return out


def _adapter_pass(feeds) -> dict:
    """The same work through the Predictor protocol."""
    model = UncleanlinessPredictor().fit(feeds)
    return {prefix_len: model.score_blocks(prefix_len)
            for prefix_len in PREFIXES}


def bench_adapter_overhead(feeds, params) -> dict:
    """Protocol adapter vs direct scorer over the full prefix sweep."""
    # Bit-identity first: the adapter must change nothing but the API.
    direct = _direct_pass(feeds)
    adapted = _adapter_pass(feeds)
    for prefix_len in PREFIXES:
        if not np.array_equal(direct[prefix_len].blocks,
                              adapted[prefix_len].blocks):
            raise AssertionError(f"adapter blocks diverge at /{prefix_len}")
        if not np.array_equal(direct[prefix_len].scores,
                              adapted[prefix_len].scores):
            raise AssertionError(f"adapter scores diverge at /{prefix_len}")

    direct_s = min(_timed(lambda: _direct_pass(feeds))
                   for _ in range(params["reps"]))
    adapter_s = min(_timed(lambda: _adapter_pass(feeds))
                    for _ in range(params["reps"]))
    overhead_pct = (adapter_s - direct_s) / direct_s * 100.0
    return {
        "prefixes": list(PREFIXES),
        "training_addresses": int(sum(len(r) for r in feeds.values())),
        "direct_seconds": round(direct_s, 5),
        "adapter_seconds": round(adapter_s, 5),
        "overhead_pct": round(overhead_pct, 2),
    }


def bench_models(feeds, params) -> dict:
    """Fit + /24 scoring cost for every registered predictor."""
    total_addresses = sum(len(r) for r in feeds.values())
    out = {}
    for name in list_predictors():
        fit_s = min(
            _timed(lambda: make_predictor(name).fit(feeds))
            for _ in range(params["reps"])
        )
        score_s = min(
            _timed(
                lambda: make_predictor(name).fit(feeds).score_blocks(24)
            ) - fit_s
            for _ in range(params["reps"])
        )
        score_s = max(score_s, 1e-9)
        ranking = make_predictor(name).fit(feeds).score_blocks(24)
        out[name] = {
            "fit_seconds": round(fit_s, 5),
            "score24_seconds": round(score_s, 5),
            "blocks_at_24": len(ranking),
            "addresses_per_sec": round(total_addresses / (fit_s + score_s), 1),
        }
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(SCALES), default="full")
    parser.add_argument("--output", default="BENCH_predictors.json")
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when the overhead ceiling breaks")
    args = parser.parse_args(argv)

    params = SCALES[args.scale]
    feeds = build_feeds(params)

    sections = {
        "adapter_overhead": bench_adapter_overhead(feeds, params),
        "models": bench_models(feeds, params),
    }

    snapshot = {
        "suite": "predictors",
        "scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "overhead_ceiling_pct": OVERHEAD_CEILING_PCT,
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    overhead = sections["adapter_overhead"]
    print(
        f"  adapter_overhead  direct {overhead['direct_seconds']:.4f}s, "
        f"adapter {overhead['adapter_seconds']:.4f}s "
        f"({overhead['overhead_pct']:+.2f}%)"
    )
    for name, row in sections["models"].items():
        print(
            f"  {name:<16}  fit {row['fit_seconds']:.4f}s, "
            f"score/24 {row['score24_seconds']:.4f}s "
            f"({row['blocks_at_24']} blocks, "
            f"{row['addresses_per_sec']:.0f} addr/s)"
        )

    if not args.guard:
        return 0
    failed = []
    if overhead["overhead_pct"] >= OVERHEAD_CEILING_PCT:
        failed.append(
            f"adapter_overhead: {overhead['overhead_pct']}% >= "
            f"{OVERHEAD_CEILING_PCT}% ceiling"
        )
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
