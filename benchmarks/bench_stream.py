#!/usr/bin/env python
"""Streaming-fold throughput and query-latency snapshot / guard.

Two promises of the streaming layer are enforced here:

* **Incremental ingest beats cold rebuild.**  Advancing a warm
  :class:`~repro.stream.state.IncrementalState` by its final day must be
  much cheaper than rebuilding the whole window's query surface from
  scratch (detectors over every flow, whole-window score table, fresh
  interval indexes) — that is the point of folding day-batches.  Before
  timing, the script asserts both paths produce bit-identical scores.
* **Lookups are sub-millisecond.**  ``score``/``is_blocked`` answer from
  the precomputed interval indexes; the p99 of single-address lookups
  through the real :class:`~repro.stream.service.UncleanlinessService`
  surface must stay under 1 ms.

Results land in ``BENCH_stream.json`` at the repo root; ``--guard``
exits non-zero when the ingest speedup falls below the floor (5x at
full scale, 3x at the small CI scale where fixed per-day overheads
dominate) or the p99 lookup latency reaches 1 ms.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream.py \
        --scale full --output BENCH_stream.json
    PYTHONPATH=src python benchmarks/bench_stream.py --scale small --guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import folds
from repro.core.report import DataClass, Report, ReportType
from repro.detect.scan import ScanDetector
from repro.detect.spam import SpamDetector
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.ipspace.intervals import IntervalIndex
from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.timeline import Window
from repro.stream import (
    DayBatch,
    IncrementalState,
    StreamConfig,
    UncleanlinessService,
    day_batches,
)

SCALES = {
    # window length, synthetic-internet size, traffic volume, lookups
    "full": dict(days=14, num_slash16=100, mean_hosts=30.0,
                 benign_clients_per_day=200, suspicious_hosts=600,
                 lookups=20_000, ingest_reps=5, rebuild_reps=3),
    "small": dict(days=7, num_slash16=30, mean_hosts=15.0,
                  benign_clients_per_day=60, suspicious_hosts=180,
                  lookups=5_000, ingest_reps=3, rebuild_reps=2),
}

SPEEDUP_FLOORS = {"full": 5.0, "small": 3.0}
P99_LOOKUP_CEILING_MS = 1.0


def build_world(params):
    """Synthetic traffic plus provided feeds for one bench window."""
    window = Window(273, 273 + params["days"] - 1)
    internet = SyntheticInternet(
        InternetConfig(
            num_slash16=params["num_slash16"],
            mean_hosts=params["mean_hosts"],
        ),
        np.random.default_rng(0xBE),
    )
    botnet = BotnetSimulation(
        internet,
        BotnetConfig(daily_compromises=40.0, horizon_days=window.end_day + 1),
        np.random.default_rng(0xBF),
    )
    traffic = TrafficGenerator(
        internet,
        botnet,
        TrafficConfig(
            benign_clients_per_day=params["benign_clients_per_day"],
            suspicious_hosts=params["suspicious_hosts"],
        ),
    ).generate(window, np.random.default_rng(0xC0))

    rng = np.random.default_rng(0xC1)
    provided = {}
    for tag, data_class in (("bot", DataClass.BOTS),
                            ("phish", DataClass.PHISHING)):
        provided[tag] = Report(
            tag=tag,
            addresses=np.unique(
                rng.integers(0, 2**32, size=2_000, dtype=np.uint32)
            ),
            report_type=ReportType.PROVIDED,
            data_class=data_class,
            period=window.dates(),
        ).without_reserved()
    return window, traffic, provided


def cold_rebuild(config, traffic, provided):
    """The non-incremental path: everything from raw window flows."""
    reports = dict(provided)
    reports["scan"] = folds.observed_report(
        "scan",
        ScanDetector(config.scan_detector).detect(traffic.flows),
        config.window,
    )
    reports["spam"] = folds.observed_report(
        "spam",
        SpamDetector(config.spam_detector).detect(traffic.flows),
        config.window,
    )
    reports["unclean"] = folds.unclean_union(reports, config.window)
    scores = folds.batch_scores(
        reports, prefix_len=config.prefix_len, weights=dict(config.weights)
    )
    blocklist = folds.blocklist_networks(scores, config.threshold)
    score_index = IntervalIndex.from_blocks(
        scores.blocks, config.prefix_len, values=scores.scores
    )
    block_index = IntervalIndex.from_blocks(blocklist, config.prefix_len)
    return scores, blocklist, score_index, block_index


def bench_ingest(config, traffic, provided, params) -> dict:
    """Final-day incremental fold vs whole-window rebuild."""
    batches = list(day_batches(traffic, provided))
    warm = IncrementalState(config)
    for batch in batches[:-1]:
        warm.ingest(batch)
    final = batches[-1]

    # Bit-identity first: the two paths must agree exactly.
    probe = warm.snapshot()
    probe.ingest(final)
    cold_scores, cold_blocklist, _, _ = cold_rebuild(config, traffic, provided)
    if not np.array_equal(probe.scores().scores, cold_scores.scores):
        raise AssertionError("incremental scores diverge from cold rebuild")
    if not np.array_equal(probe.blocklist(), cold_blocklist):
        raise AssertionError("incremental blocklist diverges from cold rebuild")

    ingest_s = min(
        _timed(lambda state=warm.snapshot(): state.ingest(final))
        for _ in range(params["ingest_reps"])
    )
    rebuild_s = min(
        _timed(lambda: cold_rebuild(config, traffic, provided))
        for _ in range(params["rebuild_reps"])
    )
    return {
        "window_days": len(batches),
        "window_flows": len(traffic.flows),
        "final_day_flows": len(final.flows),
        "scored_blocks": len(probe.scores()),
        "incremental_ingest_seconds": round(ingest_s, 5),
        "cold_rebuild_seconds": round(rebuild_s, 5),
        "speedup": round(rebuild_s / ingest_s, 2),
    }


def _timed(op) -> float:
    start = time.perf_counter()
    op()
    return time.perf_counter() - start


def bench_lookups(config, traffic, provided, params) -> dict:
    """Per-lookup latency through the service query surface."""
    service = UncleanlinessService(config, checkpointing=False)
    for batch in day_batches(traffic, provided):
        service.ingest(batch)

    rng = np.random.default_rng(0xD0)
    count = params["lookups"]
    # Half the probes inside scored space, half anywhere.
    scored = service.scores().blocks
    probes = rng.integers(0, 2**32, size=count, dtype=np.uint32)
    if scored.size:
        inside = scored[rng.integers(0, scored.size, size=count // 2)]
        probes[: count // 2] = inside + rng.integers(
            0, 2 ** (32 - config.prefix_len), size=count // 2, dtype=np.uint32
        )

    latencies = np.empty(count, dtype=np.float64)
    for i, address in enumerate(probes):
        start = time.perf_counter()
        if i % 2:
            service.is_blocked(int(address))
        else:
            service.score(int(address))
        latencies[i] = time.perf_counter() - start
    p50, p99 = np.percentile(latencies, [50, 99])
    return {
        "lookups": count,
        "scored_blocks": int(scored.size),
        "blocklist_size": int(service.blocklist().size),
        "p50_ms": round(float(p50) * 1e3, 4),
        "p99_ms": round(float(p99) * 1e3, 4),
        "lookups_per_sec": round(count / float(latencies.sum()), 1),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(SCALES), default="full")
    parser.add_argument("--output", default="BENCH_stream.json")
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when a floor is broken")
    args = parser.parse_args(argv)

    params = SCALES[args.scale]
    floor = SPEEDUP_FLOORS[args.scale]
    window, traffic, provided = build_world(params)
    config = StreamConfig(window=window)

    sections = {
        "incremental_ingest": bench_ingest(config, traffic, provided, params),
        "lookup_latency": bench_lookups(config, traffic, provided, params),
    }

    snapshot = {
        "suite": "stream",
        "scale": args.scale,
        "python": platform.python_version(),
        "numpy": np.__version__,
        "speedup_floor": floor,
        "p99_lookup_ceiling_ms": P99_LOOKUP_CEILING_MS,
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    ingest = sections["incremental_ingest"]
    lookup = sections["lookup_latency"]
    print(
        f"  incremental_ingest  {ingest['incremental_ingest_seconds']:.4f}s "
        f"vs cold {ingest['cold_rebuild_seconds']:.4f}s "
        f"({ingest['speedup']}x over {ingest['window_days']} days)"
    )
    print(
        f"  lookup_latency      p50 {lookup['p50_ms']:.3f} ms, "
        f"p99 {lookup['p99_ms']:.3f} ms "
        f"({lookup['lookups_per_sec']:.0f} lookups/s)"
    )

    if not args.guard:
        return 0
    failed = []
    if ingest["speedup"] < floor:
        failed.append(
            f"incremental_ingest: {ingest['speedup']}x < required {floor}x"
        )
    if lookup["p99_ms"] >= P99_LOOKUP_CEILING_MS:
        failed.append(
            f"lookup_latency: p99 {lookup['p99_ms']} ms >= "
            f"{P99_LOOKUP_CEILING_MS} ms ceiling"
        )
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
