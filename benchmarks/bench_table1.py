"""Benchmark: regenerate Table 1 (the report inventory)."""

from conftest import run_once

from repro.experiments import table1


def test_table1(benchmark, scenario):
    result = run_once(benchmark, table1.run, scenario)
    print()
    print(table1.format_result(result))

    sizes = {row["tag"]: row["size"] for row in result.rows()}
    # Shape: control >> bot > spam > scan; bot-test tiny; sizes non-zero.
    assert result.size_ordering_matches()
    assert all(size > 0 for size in sizes.values())
    # The scan/bot and spam/bot ratios should be in the paper's ballpark
    # (paper: 0.24 and 0.64).
    assert 0.1 < sizes["scan"] / sizes["bot"] < 0.5
    assert 0.4 < sizes["spam"] / sizes["bot"] < 0.9
