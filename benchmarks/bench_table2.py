"""Benchmark: regenerate Table 2 (the prediction-test reports)."""

from conftest import run_once

from repro.experiments import table2


def test_table2(benchmark, scenario):
    result = run_once(benchmark, table2.run, scenario)
    print()
    print(table2.format_result(result))

    # Paper shape: unknown (708) > hostile (287) >> innocent (35), and the
    # blocked /24s are nearly idle (<2% of their space communicated; we
    # allow 2x slack for simulator scale).
    assert result.partition_shape_matches()
    assert result.sparse_utilisation()
