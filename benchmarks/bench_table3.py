"""Benchmark: regenerate Table 3 (TP/FP counts per prefix length)."""

from conftest import run_once

from repro.experiments import table3


def test_table3(benchmark, scenario):
    result = run_once(benchmark, table3.run, scenario)
    print()
    print(table3.format_result(result))

    # Paper shape: all columns weakly decrease with n; ~90% TP rate at
    # /24 (97% counting unknowns hostile); FP gone at long prefixes.
    assert result.monotone()
    assert result.high_tp_rate(floor=0.80)
    assert result.tp_rate_at_24_unknown_hostile() >= 0.90
    assert result.fp_vanishes_at_long_prefixes()
