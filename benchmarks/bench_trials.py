#!/usr/bin/env python
"""Trial-matrix Monte-Carlo throughput snapshot and regression guard.

Times the paper-scale Monte-Carlo evaluation (1000 equal-cardinality
random control subsets, |R| ~ 6e5 control addresses, 17 prefix lengths)
two ways for each statistic of the §4/§5 tests:

* **per-trial**: the pre-batching reference — ``monte_carlo`` calling
  ``statistic.per_trial`` on one subset ``Report`` at a time;
* **batched**: the trial-matrix path — ``monte_carlo`` dispatching whole
  :class:`~repro.core.trials.TrialEnsemble` chunks to
  ``statistic.batch``.

Both paths draw identical per-trial RNG streams, so before timing, the
script asserts the two produce bit-identical matrices on a sample.
Results (trials/sec and the batched-over-per-trial speedup) land in
``BENCH_trials.json`` at the repo root; ``--guard`` exits non-zero when
the speedup falls below the floor (10x at full scale, 3x at the small
CI scale where fixed overheads dominate).

Usage::

    PYTHONPATH=src python benchmarks/bench_trials.py \
        --scale full --output BENCH_trials.json
    PYTHONPATH=src python benchmarks/bench_trials.py --scale small --guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro.core import cidr as rcidr
from repro.core.density import BlockCountStatistic
from repro.core.prediction import IntersectionStatistic
from repro.core.report import Report
from repro.core.sampling import monte_carlo

SCALES = {
    # control |R|, subset size, batched trials, per-trial reference trials
    "full": dict(control=600_000, size=2_000, trials=1_000, reference_trials=100),
    "small": dict(control=60_000, size=500, trials=100, reference_trials=25),
}

SPEEDUP_FLOORS = {"full": 10.0, "small": 3.0}

PREFIXES = tuple(rcidr.PREFIX_RANGE)


def build_reports(control_size: int) -> tuple:
    rng = np.random.default_rng(0x7219)
    control = Report.from_addresses(
        "control",
        np.unique(rng.integers(0, 2**32, size=control_size, dtype=np.uint32)),
    )
    # A "present" report for the intersection statistic: a clustered
    # slice of control space, as the paper's unclean reports are.
    present = Report.from_addresses("present", control.addresses[:: 7])
    return control, present


def time_monte_carlo(control, size, trials, statistic) -> float:
    start = time.perf_counter()
    monte_carlo(control, size, trials, np.random.default_rng(42), statistic)
    return time.perf_counter() - start


def bench_statistic(name, statistic, control, params) -> dict:
    """Check bit-identity, then time both paths; returns one section."""
    size, trials = params["size"], params["trials"]
    check = min(10, trials)
    batched_sample = monte_carlo(
        control, size, check, np.random.default_rng(42), statistic
    )
    reference_sample = monte_carlo(
        control, size, check, np.random.default_rng(42), statistic.per_trial
    )
    if not np.array_equal(batched_sample, reference_sample):
        raise AssertionError(f"{name}: batched path is not bit-identical")

    reference_trials = params["reference_trials"]
    reference_s = time_monte_carlo(
        control, size, reference_trials, statistic.per_trial
    )
    batched_s = time_monte_carlo(control, size, trials, statistic)

    per_trial_rate = reference_trials / reference_s
    batched_rate = trials / batched_s
    return {
        "prefixes": len(PREFIXES),
        "subset_size": size,
        "batched_trials": trials,
        "batched_seconds": round(batched_s, 4),
        "batched_trials_per_sec": round(batched_rate, 1),
        "per_trial_reference_trials": reference_trials,
        "per_trial_seconds": round(reference_s, 4),
        "per_trial_trials_per_sec": round(per_trial_rate, 1),
        "speedup": round(batched_rate / per_trial_rate, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=tuple(SCALES), default="full")
    parser.add_argument("--output", default="BENCH_trials.json")
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when the speedup floor is broken")
    args = parser.parse_args(argv)

    params = SCALES[args.scale]
    floor = SPEEDUP_FLOORS[args.scale]
    control, present = build_reports(params["control"])

    sections = {}
    sections["density_block_counts"] = bench_statistic(
        "density_block_counts", BlockCountStatistic(PREFIXES), control, params
    )
    sections["prediction_intersections"] = bench_statistic(
        "prediction_intersections",
        IntersectionStatistic(
            prefixes=PREFIXES,
            present_blocks=tuple(
                rcidr.cidr_set(present, n) for n in PREFIXES
            ),
        ),
        control,
        params,
    )

    snapshot = {
        "suite": "trials",
        "scale": args.scale,
        "control_addresses": len(control),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "speedup_floor": floor,
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    for name, section in sections.items():
        print(
            f"  {name:26s} {section['batched_trials_per_sec']:9.1f} trials/s "
            f"batched vs {section['per_trial_trials_per_sec']:7.1f} per-trial "
            f"({section['speedup']}x)"
        )

    if not args.guard:
        return 0
    failed = [
        f"{name}: {section['speedup']}x < required {floor}x"
        for name, section in sections.items()
        if section["speedup"] < floor
    ]
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
