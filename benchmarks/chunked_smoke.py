#!/usr/bin/env python
"""Memory-capped smoke: a full window folded through the chunked path.

CI leg for the out-of-core promise.  The script builds the paper-scale
October window, records every detector's in-memory verdict, spills the
window to a memory-mapped chunk directory, **drops the in-memory log**,
then clamps the process address space (``RLIMIT_AS``) to its current
size plus a fixed headroom far below what re-materialising the window
would need — and folds all three detectors over the chunks under that
cap.  Success requires both surviving the ulimit and reproducing the
in-memory flagged sets bit for bit.

The headroom budgets the fold's real transient state (per-chunk columns
plus partial aggregates, ~190 MB traced for the scan fold at full
scale) with margin for allocator slack; a regression that materialises
the window inside the fold, or accumulates every chunk's partial, blows
through it and the leg fails with ``MemoryError``.

Usage::

    PYTHONPATH=src python benchmarks/chunked_smoke.py --scale full
"""

from __future__ import annotations

import argparse
import gc
import sys
import tempfile
from pathlib import Path

import numpy as np

try:
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None

from repro.core.scenario import ScenarioConfig
from repro.detect.scan import ScanDetector
from repro.detect.spam import SpamDetector
from repro.detect.trw import TRWDetector
from repro.flows.chunked import ChunkedFlowLog
from repro.flows.generator import TrafficGenerator
from repro.sim.botnet import BotnetSimulation
from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import PAPER_WINDOWS

#: Address-space allowance above the post-build baseline for the folds.
HEADROOM_MB = {"full": 288, "small": 160}


def _vm_size_kb() -> int:
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmSize:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("full", "small"), default="full")
    args = parser.parse_args(argv)

    if resource is None:
        print("skip: resource module unavailable on this platform")
        return 0

    config = ScenarioConfig.small() if args.scale == "small" else ScenarioConfig()
    seeds = np.random.SeedSequence(config.seed).spawn(8)
    internet = SyntheticInternet(config.internet, np.random.default_rng(seeds[0]))
    botnet = BotnetSimulation(
        internet, config.botnet, np.random.default_rng(seeds[1])
    )
    traffic = TrafficGenerator(internet, botnet, config.traffic).generate(
        PAPER_WINDOWS.OCTOBER,
        np.random.default_rng(np.random.SeedSequence(config.seed).spawn(8)[3]),
    )
    flows = traffic.flows
    detectors = [
        ("scan", ScanDetector()),
        ("trw", TRWDetector()),
        ("spam", SpamDetector()),
    ]
    expected = {name: detector.detect(flows) for name, detector in detectors}
    total_flows = len(flows)

    with tempfile.TemporaryDirectory() as tmp_dir:
        chunked = ChunkedFlowLog.spill_to_dir(
            flows,
            Path(tmp_dir) / "window",
            max_flows=max(4096, total_flows // 12),
            day_bounded=False,
        )
        del traffic, flows
        gc.collect()

        base_kb = _vm_size_kb()
        if base_kb == 0:
            print("skip: /proc/self/status unavailable (not Linux)")
            return 0
        headroom_kb = HEADROOM_MB[args.scale] * 1024
        cap = (base_kb + headroom_kb) * 1024
        _, hard = resource.getrlimit(resource.RLIMIT_AS)
        resource.setrlimit(resource.RLIMIT_AS, (cap, hard))
        print(
            f"{total_flows} flows in {chunked.chunk_count} chunks; "
            f"address space capped at {cap // (1024 * 1024)} MB "
            f"(baseline {base_kb // 1024} MB + {HEADROOM_MB[args.scale]} MB)"
        )

        try:
            for name, detector in detectors:
                flagged = detector.detect_chunked(chunked)
                if not np.array_equal(flagged, expected[name]):
                    print(
                        f"FAIL: {name} chunked fold diverges from in-memory",
                        file=sys.stderr,
                    )
                    return 1
                print(f"  {name:5s} fold ok ({flagged.size} flagged)")
        except MemoryError:
            print(
                "FAIL: chunked fold exceeded the memory cap "
                f"({HEADROOM_MB[args.scale]} MB headroom)",
                file=sys.stderr,
            )
            return 1
    print("memory-capped chunked smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
