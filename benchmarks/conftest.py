"""Benchmark fixtures.

The benchmark suite runs every experiment at full reproduction scale
(~1/64 of the paper's data volumes).  Building the scenario takes tens of
seconds, so it is constructed once per session and shared; each benchmark
then times its own analysis and asserts the paper's shape claims.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scenario import PaperScenario, ScenarioConfig

#: Monte-Carlo subsets for the density/prediction benchmarks.  The paper
#: uses 1000; 200 keeps the suite under a few minutes while leaving the
#: 95% criterion well resolved.
BENCH_SUBSETS = 200


@pytest.fixture(scope="session")
def scenario():
    """The full-scale paper scenario (built once)."""
    return PaperScenario(ScenarioConfig())


@pytest.fixture
def bench_rng():
    return np.random.default_rng(0xB0B)


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (experiments are too heavy to repeat)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
