"""Benchmark fixtures.

The benchmark suite runs every experiment at full reproduction scale
(~1/64 of the paper's data volumes).  The scenario is served by the
staged artifact engine: within a session every benchmark shares one set
of stage artifacts, and across sessions the disk layer of the artifact
store (``$REPRO_CACHE_DIR`` / ``~/.cache/repro``) makes the report-level
stages warm-start, so reruns time only the analyses themselves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import run_scenario
from repro.core.scenario import ScenarioConfig

#: Monte-Carlo subsets for the density/prediction benchmarks.  The paper
#: uses 1000; 200 keeps the suite under a few minutes while leaving the
#: 95% criterion well resolved.
BENCH_SUBSETS = 200


@pytest.fixture(scope="session")
def scenario():
    """The full-scale paper scenario (stage-cached, lazily built)."""
    return run_scenario(ScenarioConfig()).scenario


@pytest.fixture
def bench_rng():
    return np.random.default_rng(0xB0B)


def run_once(benchmark, fn, *args, **kwargs):
    """Time ``fn`` exactly once (experiments are too heavy to repeat)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
