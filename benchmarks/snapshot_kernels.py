#!/usr/bin/env python
"""Record kernel throughput to ``BENCH_kernels.json``.

Times the vectorized hot paths (traffic-stage cold build, TRW walk and
detect, scan detect) directly — no artifact engine, so every build is
genuinely cold — and writes flows/sec and events/sec to a JSON snapshot
at the repo root.  At ``--scale full`` the snapshot also embeds the
PR-1 loop-based timings (measured on the same class of machine) and the
resulting speedups, so the perf trajectory is auditable from the file
alone.

Usage::

    PYTHONPATH=src python benchmarks/snapshot_kernels.py \
        --scale full --output BENCH_kernels.json

Pass ``--scale small`` in CI for a cheap smoke snapshot (speedups are
omitted there: the baselines were measured at full scale only).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.core.scenario import ScenarioConfig
from repro.detect.scan import ScanDetector
from repro.detect.trw import TRWDetector
from repro.flows.generator import TrafficGenerator
from repro.sim.botnet import BotnetSimulation
from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import PAPER_WINDOWS

#: PR-1 per-bot-loop timings at full scale (seconds), measured on the
#: reference container right before the columnar rewrite landed.  Kept
#: as constants so the speedup column survives the old code's deletion.
LOOP_BASELINES_FULL = {
    "traffic_cold_build": 3.70,
    "trw_walk": 4.78,
    "scan_detect": 5.06,
}


def best_of(fn, repeats):
    """Best wall-clock of ``repeats`` runs; returns (seconds, result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("full", "small"), default="full")
    parser.add_argument("--output", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per section")
    args = parser.parse_args()

    config = ScenarioConfig.small() if args.scale == "small" else ScenarioConfig()
    seeds = np.random.SeedSequence(config.seed).spawn(8)
    internet = SyntheticInternet(config.internet, np.random.default_rng(seeds[0]))
    botnet = BotnetSimulation(internet, config.botnet, np.random.default_rng(seeds[1]))
    generator = TrafficGenerator(internet, botnet, config.traffic)
    window = PAPER_WINDOWS.OCTOBER
    window_events = int(botnet.event_indices(window).size)

    def cold_build():
        return generator.generate(
            window,
            np.random.default_rng(np.random.SeedSequence(config.seed).spawn(8)[3]),
        )

    sections = {}

    seconds, traffic = best_of(cold_build, args.repeats)
    flows = len(traffic.flows)
    sections["traffic_cold_build"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "window_events": window_events,
        "events_per_sec": round(window_events / seconds),
    }

    detector = TRWDetector()
    seconds, states = best_of(lambda: detector.walk(traffic.flows), args.repeats)
    sections["trw_walk"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "sources_walked": len(states),
    }

    seconds, detected = best_of(
        lambda: detector.detect(traffic.flows), args.repeats
    )
    sections["trw_detect"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "sources_flagged": int(detected.size),
    }

    seconds, detected = best_of(
        lambda: ScanDetector().detect(traffic.flows), args.repeats
    )
    sections["scan_detect"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "sources_flagged": int(detected.size),
    }

    if args.scale == "full":
        for name, baseline in LOOP_BASELINES_FULL.items():
            sections[name]["loop_baseline_seconds"] = baseline
            sections[name]["speedup_vs_loops"] = round(
                baseline / sections[name]["seconds"], 2
            )

    snapshot = {
        "suite": "kernels",
        "scale": args.scale,
        "seed": config.seed,
        "window": [window.start_day, window.end_day],
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": args.repeats,
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    for name, section in sections.items():
        speedup = section.get("speedup_vs_loops")
        suffix = f"  ({speedup}x vs loops)" if speedup else ""
        print(f"  {name:20s} {section['seconds']:8.3f}s{suffix}")


if __name__ == "__main__":
    main()
