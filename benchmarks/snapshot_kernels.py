#!/usr/bin/env python
"""Record kernel throughput to ``BENCH_kernels.json`` (and guard it).

Times the vectorized hot paths (traffic-stage cold build, TRW walk and
detect, scan detect and its row-table reference) directly — no artifact
engine, so every build is genuinely cold — and writes flows/sec and
events/sec to a JSON snapshot at the repo root.  At ``--scale full``
the snapshot also embeds the PR-1 loop-based timings (measured on the
same class of machine) and the resulting speedups, so the perf
trajectory is auditable from the file alone.

Two chunked sections cover the out-of-core layer:

* ``chunked_fold`` — the window spilled to a memmap directory and every
  detector folded over it (bit-identity with the in-memory verdict is
  a hard assertion, not a guard);
* ``chunked_memory_scaling`` — repeating synthetic traffic at 1x and 2x
  window length folded through the TRW partial-aggregate path.  The log
  doubles; the fold's peak traced allocation must not (it is bounded by
  chunk size plus per-pair state, which repetition keeps constant).

``--guard`` exits non-zero when the ``scan_detect`` speedups fall below
their floors (5x over the 5.06s loop baseline at full scale; 4x/1.2x
over the row-table reference at full/small scale) or when the chunked
fold's peak memory grows with window length.

Usage::

    PYTHONPATH=src python benchmarks/snapshot_kernels.py \
        --scale full --output BENCH_kernels.json
    PYTHONPATH=src python benchmarks/snapshot_kernels.py \
        --scale small --guard
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core.scenario import ScenarioConfig
from repro.detect.scan import ScanDetector
from repro.detect.spam import SpamDetector
from repro.detect.trw import TRWDetector
from repro.flows.chunked import ChunkedFlowLog
from repro.flows.generator import TrafficGenerator
from repro.flows.log import COLUMN_DTYPES, FlowLog
from repro.sim.botnet import BotnetSimulation
from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import PAPER_WINDOWS

#: PR-1 per-bot-loop timings at full scale (seconds), measured on the
#: reference container right before the columnar rewrite landed.  Kept
#: as constants so the speedup column survives the old code's deletion.
LOOP_BASELINES_FULL = {
    "traffic_cold_build": 3.70,
    "trw_walk": 4.78,
    "scan_detect": 5.06,
}

#: ``--guard`` floors and ceilings.
SCAN_SPEEDUP_FLOOR_FULL = 5.0  # vs the 5.06s loop baseline
SCAN_VS_REFERENCE_FLOORS = {"full": 4.0, "small": 1.2}
#: Folding a 2x-length window of repeating traffic may grow the fold's
#: peak allocation by at most this factor (the log itself grows ~2x).
CHUNKED_PEAK_GROWTH_CEILING = 1.6


def _log_nbytes(flows: FlowLog) -> int:
    return sum(flows.column(name).nbytes for name in COLUMN_DTYPES)


def _repeating_flows(days: int, per_day: int) -> FlowLog:
    """``days`` identical days of traffic from a fixed source/dst pool.

    Every day replays the same (source, destination) template, so the
    TRW first-contact table — the fold's only cross-chunk state — stays
    constant while the log grows linearly with ``days``.
    """
    rng = np.random.default_rng(0xC1D)
    src = rng.choice(256, size=per_day).astype(np.uint32) + 1
    dst = (src * 17 + rng.choice(24, size=per_day).astype(np.uint32)) % 997 + 1
    offsets = np.sort(rng.uniform(0.0, 86_400.0, per_day))
    day_template = dict(
        src_addr=src,
        dst_addr=dst,
        src_port=np.full(per_day, 40_000, dtype=np.uint16),
        dst_port=np.full(per_day, 80, dtype=np.uint16),
        protocol=np.full(per_day, 6, dtype=np.uint8),
        packets=np.ones(per_day, dtype=np.uint32),
        octets=np.full(per_day, 512, dtype=np.uint64),
        tcp_flags=np.where(rng.random(per_day) < 0.6, 2, 18).astype(np.uint8),
    )
    columns = {
        name: np.concatenate([value] * days)
        for name, value in day_template.items()
    }
    start = np.concatenate(
        [offsets + day * 86_400.0 for day in range(days)]
    )
    return FlowLog(start_time=start, end_time=start + 1.0, **columns)


def _traced_fold(detector, chunked):
    """(seconds, peak_traced_bytes, flagged) of one chunked fold."""
    tracemalloc.start()
    started = time.perf_counter()
    flagged = detector.detect_chunked(chunked)
    seconds = time.perf_counter() - started
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return seconds, peak, flagged


def bench_chunked_fold(traffic, tmp_dir: str) -> dict:
    """Every detector folded over the spilled window, identity-checked."""
    flows = traffic.flows
    chunked = ChunkedFlowLog.spill_to_dir(
        flows,
        Path(tmp_dir) / "window",
        max_flows=max(4096, len(flows) // 12),
        day_bounded=False,
    )
    section = {
        "chunks": chunked.chunk_count,
        "log_mb": round(_log_nbytes(flows) / 1e6, 1),
    }
    for name, detector in (
        ("scan", ScanDetector()),
        ("trw", TRWDetector()),
        ("spam", SpamDetector()),
    ):
        whole = detector.detect(flows)
        seconds, peak, flagged = _traced_fold(detector, chunked)
        if not np.array_equal(flagged, whole):
            raise AssertionError(f"{name} chunked fold diverges from in-memory")
        section[name] = {
            "seconds": round(seconds, 4),
            "peak_traced_mb": round(peak / 1e6, 1),
            "sources_flagged": int(whole.size),
        }
    return section


def bench_chunked_memory_scaling(scale: str, tmp_dir: str) -> dict:
    """Fold peak vs window length over repeating traffic (1x vs 2x)."""
    days = 6 if scale == "small" else 14
    per_day = 20_000 if scale == "small" else 100_000
    detector = TRWDetector()
    measurements = {}
    for label, length in (("window", days), ("window_x2", 2 * days)):
        flows = _repeating_flows(length, per_day)
        chunked = ChunkedFlowLog.spill_to_dir(
            flows,
            Path(tmp_dir) / f"scaling-{label}",
            max_flows=max(4096, per_day // 2),
        )
        seconds, peak, flagged = _traced_fold(detector, chunked)
        if not np.array_equal(flagged, detector.detect(flows)):
            raise AssertionError(f"{label} chunked fold diverges from in-memory")
        measurements[label] = {
            "days": length,
            "flows": len(flows),
            "chunks": chunked.chunk_count,
            "log_mb": round(_log_nbytes(flows) / 1e6, 1),
            "seconds": round(seconds, 4),
            "peak_traced_mb": round(peak / 1e6, 1),
        }
    peak_growth = (
        measurements["window_x2"]["peak_traced_mb"]
        / max(measurements["window"]["peak_traced_mb"], 0.1)
    )
    log_growth = (
        measurements["window_x2"]["log_mb"]
        / max(measurements["window"]["log_mb"], 0.1)
    )
    measurements["peak_growth"] = round(peak_growth, 2)
    measurements["log_growth"] = round(log_growth, 2)
    return measurements


def best_of(fn, repeats):
    """Best wall-clock of ``repeats`` runs; returns (seconds, result)."""
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=("full", "small"), default="full")
    parser.add_argument("--output", default="BENCH_kernels.json")
    parser.add_argument("--repeats", type=int, default=3,
                        help="take the best of N runs per section")
    parser.add_argument("--guard", action="store_true",
                        help="exit non-zero when a floor is broken")
    args = parser.parse_args(argv)

    config = ScenarioConfig.small() if args.scale == "small" else ScenarioConfig()
    seeds = np.random.SeedSequence(config.seed).spawn(8)
    internet = SyntheticInternet(config.internet, np.random.default_rng(seeds[0]))
    botnet = BotnetSimulation(internet, config.botnet, np.random.default_rng(seeds[1]))
    generator = TrafficGenerator(internet, botnet, config.traffic)
    window = PAPER_WINDOWS.OCTOBER
    window_events = int(botnet.event_indices(window).size)

    def cold_build():
        return generator.generate(
            window,
            np.random.default_rng(np.random.SeedSequence(config.seed).spawn(8)[3]),
        )

    sections = {}

    seconds, traffic = best_of(cold_build, args.repeats)
    flows = len(traffic.flows)
    sections["traffic_cold_build"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "window_events": window_events,
        "events_per_sec": round(window_events / seconds),
    }

    detector = TRWDetector()
    seconds, states = best_of(lambda: detector.walk(traffic.flows), args.repeats)
    sections["trw_walk"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "sources_walked": len(states),
    }

    seconds, detected = best_of(
        lambda: detector.detect(traffic.flows), args.repeats
    )
    sections["trw_detect"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "sources_flagged": int(detected.size),
    }

    scan_detector = ScanDetector()
    seconds, detected = best_of(
        lambda: scan_detector.detect(traffic.flows), args.repeats
    )
    sections["scan_detect"] = {
        "seconds": round(seconds, 4),
        "flows": flows,
        "flows_per_sec": round(flows / seconds),
        "sources_flagged": int(detected.size),
    }

    reference_seconds, reference_detected = best_of(
        lambda: scan_detector.detect_reference(traffic.flows), args.repeats
    )
    if not np.array_equal(reference_detected, detected):
        raise AssertionError("scan kernel diverges from detect_reference")
    sections["scan_detect"]["reference_seconds"] = round(reference_seconds, 4)
    sections["scan_detect"]["speedup_vs_reference"] = round(
        reference_seconds / sections["scan_detect"]["seconds"], 2
    )

    with tempfile.TemporaryDirectory() as tmp_dir:
        sections["chunked_fold"] = bench_chunked_fold(traffic, tmp_dir)
        sections["chunked_memory_scaling"] = bench_chunked_memory_scaling(
            args.scale, tmp_dir
        )

    if args.scale == "full":
        for name, baseline in LOOP_BASELINES_FULL.items():
            sections[name]["loop_baseline_seconds"] = baseline
            sections[name]["speedup_vs_loops"] = round(
                baseline / sections[name]["seconds"], 2
            )

    snapshot = {
        "suite": "kernels",
        "scale": args.scale,
        "seed": config.seed,
        "window": [window.start_day, window.end_day],
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repeats": args.repeats,
        "sections": sections,
    }
    Path(args.output).write_text(json.dumps(snapshot, indent=2) + "\n")
    print(f"wrote {args.output}")
    for name, section in sections.items():
        if "seconds" not in section:
            continue
        speedup = section.get("speedup_vs_loops")
        suffix = f"  ({speedup}x vs loops)" if speedup else ""
        print(f"  {name:20s} {section['seconds']:8.3f}s{suffix}")
    scaling = sections["chunked_memory_scaling"]
    print(
        f"  chunked fold peak    "
        f"{scaling['window']['peak_traced_mb']:.1f} MB -> "
        f"{scaling['window_x2']['peak_traced_mb']:.1f} MB "
        f"({scaling['peak_growth']}x) while the log grows "
        f"{scaling['log_growth']}x"
    )

    if not args.guard:
        return 0
    failed = []
    scan = sections["scan_detect"]
    if args.scale == "full":
        if scan["speedup_vs_loops"] < SCAN_SPEEDUP_FLOOR_FULL:
            failed.append(
                f"scan_detect: {scan['speedup_vs_loops']}x over loops < "
                f"required {SCAN_SPEEDUP_FLOOR_FULL}x"
            )
    reference_floor = SCAN_VS_REFERENCE_FLOORS[args.scale]
    if scan["speedup_vs_reference"] < reference_floor:
        failed.append(
            f"scan_detect: {scan['speedup_vs_reference']}x over "
            f"detect_reference < required {reference_floor}x"
        )
    if scaling["peak_growth"] > CHUNKED_PEAK_GROWTH_CEILING:
        failed.append(
            f"chunked fold peak grew {scaling['peak_growth']}x over a "
            f"{scaling['log_growth']}x longer window "
            f"(ceiling {CHUNKED_PEAK_GROWTH_CEILING}x)"
        )
    for message in failed:
        print(f"GUARD FAIL: {message}", file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
