#!/usr/bin/env python
"""Operational workflow: turn last month's reports into a /24 blocklist.

This is the use the paper motivates: a network operator holds September's
unclean reports and wants to pre-emptively distrust the networks they
implicate.  The workflow:

1. collect the September reports (bots, scanning, spamming — phishing is
   scored on its own dimension per §5.2);
2. score every /24 with the multidimensional uncleanliness metric (§7);
3. emit the blocks above a score threshold as a blocklist;
4. score the blocklist against *October's* ground-truth bot population —
   addresses the September feeds never saw.

Run:  python examples/blocklist_prediction.py
"""

import datetime

import numpy as np

from repro.api import run_scenario
from repro.core.uncleanliness import UncleanlinessScorer
from repro.core.report import Report
from repro.detect.botlog import BotLogMonitor
from repro.ipspace import cidr as lowcidr
from repro.sim.timeline import Window, date_to_day

SEPTEMBER = Window.from_dates(datetime.date(2006, 9, 1), datetime.date(2006, 9, 30))
OCTOBER = Window.from_dates(datetime.date(2006, 10, 1), datetime.date(2006, 10, 31))

SCORE_THRESHOLD = 0.5


def main() -> None:
    scenario = run_scenario(small=True)
    rng = np.random.default_rng(1)

    # --- 1. September evidence (the feeds we would actually hold) -------
    monitor = BotLogMonitor()
    sept_bots = Report(
        tag="sept-bots",
        addresses=monitor.observe(
            scenario.botnet, SEPTEMBER, rng,
            channels=scenario.config.bot_report_channels,
        ),
    )
    sept_scan = Report(
        tag="sept-scan",
        addresses=scenario.botnet.active_addresses(SEPTEMBER, scanners_only=True),
    )
    sept_spam = Report(
        tag="sept-spam",
        addresses=scenario.botnet.active_addresses(SEPTEMBER, spammers_only=True),
    )
    print(f"September evidence: bots={len(sept_bots)}, "
          f"scan={len(sept_scan)}, spam={len(sept_spam)}")

    # --- 2. score /24s ---------------------------------------------------
    scorer = UncleanlinessScorer(prefix_len=24)
    scores = scorer.score(
        {"bots": sept_bots, "scanning": sept_scan, "spam": sept_spam}
    )
    print(f"scored {len(scores)} /24 blocks; top offenders:")
    for row in scores.top(5):
        print(f"  {row['block']:>18}  score={row['score']:.3f}  "
              f"bots={row['bots']} scan={row['scanning']} spam={row['spam']}")

    # --- 3. emit the blocklist -------------------------------------------
    blocklist = scores.blocklist(SCORE_THRESHOLD)
    print(f"\nblocklist: {len(blocklist)} /24s at score >= {SCORE_THRESHOLD}")

    # --- 4. score against October's ground truth -------------------------
    october_bots = scenario.botnet.active_addresses(OCTOBER)
    block_nets = np.asarray(
        sorted(block.network for block in blocklist), dtype=np.uint32
    )
    caught = lowcidr.contains(october_bots, block_nets, 24).sum()
    print(f"October ground truth: {october_bots.size} unique bot addresses")
    print(f"  inside the blocklist: {caught} "
          f"({caught / max(october_bots.size, 1):.0%} of all future bots)")

    # Compare against a random blocklist of the same size drawn from the
    # control population (the paper's control comparison).
    control_blocks = np.unique(scenario.control.addresses & np.uint32(0xFFFFFF00))
    random_blocks = np.sort(
        rng.choice(control_blocks, size=len(blocklist), replace=False)
    )
    random_caught = lowcidr.contains(october_bots, random_blocks, 24).sum()
    print(f"  inside an equal-sized RANDOM blocklist: {random_caught} "
          f"({random_caught / max(october_bots.size, 1):.0%})")
    advantage = caught / max(random_caught, 1)
    print(f"  uncleanliness advantage: {advantage:.0f}x")


if __name__ == "__main__":
    main()
