#!/usr/bin/env python
"""The §7 extension indicator: C&C rendezvous observed through a sinkhole.

The paper's conclusion names "communication with botnet C&C nodes" as the
next indicator to add to an uncleanliness metric.  This example plays it
out: one botnet's rendezvous point is sinkholed into the observed
network, its members phone home across the border, the sinkhole monitor
reports them — and that report predicts the *other* botnets' future
members, because all botnets farm the same unclean networks.

Run:  python examples/cnc_sinkhole.py
"""

import numpy as np

from repro.api import prediction_test, run_scenario
from repro.core.report import DataClass, Report, ReportType
from repro.detect.cnc import SinkholeMonitor
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.sim.timeline import PAPER_WINDOWS

SINKHOLED_CHANNEL = 9  # a botnet outside every Table 1 feed


def main() -> None:
    scenario = run_scenario(small=True)
    config = scenario.config
    rng = np.random.default_rng(4)

    # --- seize one channel's rendezvous and replay October ---------------
    traffic_config = TrafficConfig(
        benign_clients_per_day=config.traffic.benign_clients_per_day,
        suspicious_hosts=config.traffic.suspicious_hosts,
        sinkholed_channels=(SINKHOLED_CHANNEL,),
    )
    generator = TrafficGenerator(scenario.internet, scenario.botnet, traffic_config)
    traffic = generator.generate(PAPER_WINDOWS.OCTOBER, rng)
    print(f"October border capture with a sinkholed C&C: "
          f"{len(traffic.flows)} flows")

    # --- the monitor turns phone-homes into a bot report ------------------
    monitor = SinkholeMonitor()
    detected = monitor.detect(traffic.flows, generator.sinkhole_addresses())
    cnc_report = Report(
        tag="cnc",
        addresses=detected,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.BOTS,
        period=PAPER_WINDOWS.OCTOBER.dates(),
    )
    truth = traffic.ground_truth("cnc")
    print(f"sinkhole monitor reported {len(cnc_report)} bots "
          f"(ground truth: {truth.size} members phoned home)")
    print()

    # --- does the sinkholed botnet predict the other botnets? ------------
    # The prediction target is the October membership of the channels the
    # provided bot feed covers — botnets the sinkhole never saw.
    result = prediction_test(scenario, cnc_report, "bot", rng=rng, subsets=150)
    print("predicting OTHER botnets' October members from the sinkhole:")
    for n in (16, 20, 24, 28):
        print(f"  /{n}: intersection={result.observed[n]:>4}  "
              f"control median={result.control[n].median:>6.1f}  "
              f"beats control in {result.exceedance[n]:.0%} of draws")
    print(f"  predictive prefix range: {result.predictive_range()}")
    print()
    print("one seized rendezvous point maps the unclean networks that all")
    print("the other botnets keep harvesting — exactly why §7 wants C&C")
    print("communication folded into the uncleanliness metric.")


if __name__ == "__main__":
    main()
