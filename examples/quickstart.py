#!/usr/bin/env python
"""Quickstart: test both uncleanliness hypotheses on a synthetic scenario.

Builds the fast (~1s) version of the paper's datasets — a synthetic
Internet, a year of botnet and phishing activity, the October 2006
observation window, and every report of Table 1 — then runs the paper's
two core tests through the :mod:`repro.api` facade:

* spatial uncleanliness (§4): do compromised hosts cluster into fewer
  /n blocks than random control addresses?
* temporal uncleanliness (§5): does a five-month-old bot report predict
  October's bots better than random control addresses?

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.api import density_test, prediction_test, run_scenario


def main() -> None:
    print("Building the scenario (synthetic Internet + botnet + detectors)...")
    run = run_scenario(small=True)
    print(f"  {run.internet!r}")
    print(f"  {run.botnet!r}")
    print(f"  reports: " + ", ".join(
        f"{tag}={len(report)}" for tag, report in sorted(run.reports.items())
    ))
    print()

    rng = np.random.default_rng(0)

    print("Spatial uncleanliness (Eq. 3): are bots denser than control?")
    spatial = density_test(run, "bot", rng=rng, subsets=100)
    for n in (16, 20, 24, 28):
        print(
            f"  /{n}: bot blocks={spatial.observed[n]:>5}  "
            f"control median={spatial.control[n].median:>7.0f}  "
            f"density ratio={spatial.density_ratio(n):.2f}"
        )
    print(f"  hypothesis holds: {spatial.hypothesis_holds()}")
    print()

    print("Temporal uncleanliness (Eq. 5): does May's botnet predict October's?")
    temporal = prediction_test(run, "bot-test", "bot", rng=rng, subsets=100)
    for n in (16, 20, 24, 28):
        print(
            f"  /{n}: intersection={temporal.observed[n]:>3}  "
            f"control median={temporal.control[n].median:>5.1f}  "
            f"beats control in {temporal.exceedance[n]:.0%} of draws"
        )
    print(f"  hypothesis holds: {temporal.hypothesis_holds()}")
    print(f"  predictive prefix range: {temporal.predictive_range()}")
    print()

    print("And the negative result: bots do NOT predict phishing (§5.2).")
    phish = prediction_test(run, "bot-test", "phish-present", rng=rng, subsets=100)
    print(f"  predictive prefixes vs phishing: {phish.predictive_prefixes() or 'none'}")


if __name__ == "__main__":
    main()
