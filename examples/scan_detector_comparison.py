#!/usr/bin/env python
"""Bake-off of the three scan-detection methods the paper's lineage uses.

The paper's ``scan`` class cites the CERT threshold technique and two
research detectors; this library implements all three:

* the hourly fan-out **threshold** detector (Gates et al. TR);
* **Threshold Random Walk** sequential hypothesis testing (Jung et al.);
* a **logistic-regression** classifier over behavioural features
  (Gates et al. ISCC'06), trained on a separate labelled fortnight.

This example runs them against the same October border capture and
scores each on precision/recall over the fast-scanner ground truth, plus
how many *slow* scanners each catches (the population whose escape
creates the paper's §6 unknown class).

Run:  python examples/scan_detector_comparison.py
"""

import numpy as np

from repro.api import run_scenario
from repro.detect.logistic import LogisticScanModel
from repro.detect.scan import ScanDetector
from repro.detect.trw import TRWDetector
from repro.flows.generator import TrafficGenerator
from repro.sim.timeline import Window


def score(name, detected, truth, slow, benign):
    detected = set(detected.tolist())
    hits = len(detected & truth)
    precision = hits / len(detected) if detected else 0.0
    recall = hits / len(truth) if truth else 0.0
    return {
        "detector": name,
        "flagged": len(detected),
        "recall(fast)": f"{recall:.0%}",
        "precision-ish": f"{precision:.0%}",
        "slow caught": len(detected & slow),
        "benign flagged": len(detected & benign),
    }


def main() -> None:
    scenario = run_scenario(small=True)
    capture = scenario.october_traffic
    flows = capture.flows
    truth = set(capture.ground_truth("fast_scanners").tolist())
    slow = set(capture.ground_truth("slow_scanners").tolist()) - truth
    hostile = truth | slow | {
        int(a)
        for name in ("spammers", "ephemeral", "suspicious")
        for a in capture.ground_truth(name)
    }
    benign = set(capture.ground_truth("benign").tolist()) - hostile
    print(f"October capture: {len(flows)} flows; ground truth: "
          f"{len(truth)} fast scanners, {len(slow)} slow scanners")
    print()

    # Train the logistic model on a DIFFERENT, earlier fortnight.
    generator = TrafficGenerator(
        scenario.internet, scenario.botnet, scenario.config.traffic
    )
    training = generator.generate(Window(220, 233), np.random.default_rng(77))
    logistic = LogisticScanModel().fit_from_truth(
        training.flows, training.ground_truth("fast_scanners")
    )

    rows = [
        score("hourly threshold", ScanDetector().detect(flows), truth, slow, benign),
        score("TRW", TRWDetector().detect(flows), truth, slow, benign),
        score("logistic regression", logistic.detect(flows), truth, slow, benign),
    ]
    header = list(rows[0])
    widths = {k: max(len(k), *(len(str(r[k])) for r in rows)) for k in header}
    print("  ".join(k.ljust(widths[k]) for k in header))
    for row in rows:
        print("  ".join(str(row[k]).ljust(widths[k]) for k in header))
    print()
    print("learned coefficients (standardised):")
    for row in logistic.coefficients():
        print(f"  {row['feature']:>20}: {row['weight']:+.3f}")
    print()
    print("the hourly detector is precise but blind to slow scanners by")
    print("construction; TRW and the logistic model catch failed-connection")
    print("behaviour regardless of rate — which shrinks the §6 unknown class")
    print("at the cost of flagging quiet probers the paper left uncertain.")


if __name__ == "__main__":
    main()
