#!/usr/bin/env python
"""The §7 future-work metric: multidimensional uncleanliness scores.

The paper's conclusion calls for "a multidimensional uncleanliness metric
to measure the aggregate probability that an address is occupied",
motivated by its finding that the four indicators are not one signal:
bots, scanning and spamming co-move, phishing follows its own geography.

This example:

1. measures the cross-relationships between the four October reports as
   block-set Jaccard similarities (the quantitative form of §5.2);
2. scores every /24 on all four dimensions with the noisy-OR aggregate;
3. shows how the per-dimension breakdown separates "bot-flavoured" from
   "phish-flavoured" uncleanliness.

Run:  python examples/uncleanliness_scores.py
"""

from repro.api import run_scenario
from repro.core.uncleanliness import UncleanlinessScorer, block_jaccard


def main() -> None:
    scenario = run_scenario(small=True)
    reports = {
        "bots": scenario.bot,
        "scanning": scenario.scan,
        "spam": scenario.spam,
        "phishing": scenario.phish,
    }

    # --- 1. cross-relationships (§5.2) ------------------------------------
    print("block-set Jaccard similarity at /24 (higher = related):")
    names = list(reports)
    header = " " * 10 + "".join(f"{n:>10}" for n in names)
    print(header)
    for a in names:
        cells = []
        for b in names:
            value = block_jaccard(reports[a], reports[b], 24)
            cells.append(f"{value:>10.3f}")
        print(f"{a:>10}" + "".join(cells))
    print()
    bot_scan = block_jaccard(reports["bots"], reports["scanning"], 24)
    bot_phish = block_jaccard(reports["bots"], reports["phishing"], 24)
    print(f"bots~scanning is {bot_scan / max(bot_phish, 1e-9):.0f}x more "
          f"similar than bots~phishing: uncleanliness is multidimensional")
    print()

    # --- 2. aggregate scores -----------------------------------------------
    scorer = UncleanlinessScorer(prefix_len=24)
    scores = scorer.score(reports)
    print(f"scored {len(scores)} /24 blocks; the ten most unclean:")
    for row in scores.top(10):
        print(f"  {row['block']:>18}  score={row['score']:.3f}  "
              f"bots={row['bots']:>3} scan={row['scanning']:>3} "
              f"spam={row['spam']:>3} phish={row['phishing']:>3}")
    print()

    # --- 3. dimension separation -------------------------------------------
    phish_flavoured = [
        row for row in scores.top(len(scores))
        if row["phishing"] > 0 and row["bots"] == 0
    ]
    bot_flavoured = [
        row for row in scores.top(len(scores))
        if row["bots"] > 0 and row["phishing"] == 0
    ]
    both = [
        row for row in scores.top(len(scores))
        if row["bots"] > 0 and row["phishing"] > 0
    ]
    print(f"dimension separation across {len(scores)} blocks:")
    print(f"  bot-flavoured only:   {len(bot_flavoured):>5}")
    print(f"  phish-flavoured only: {len(phish_flavoured):>5}")
    print(f"  both dimensions:      {len(both):>5}")
    print("phishers and botmasters mostly occupy different networks — a")
    print("single scalar score would hide that; the per-class breakdown")
    print("keeps both risk surfaces visible.")


if __name__ == "__main__":
    main()
