#!/usr/bin/env python
"""The §6 virtual blocking experiment, end to end.

Replays the paper's evaluation of predictive blocking: given a five-month
-old report of 186 bot addresses, how well would blocking its /24s have
worked against the two weeks of live border traffic in October?

The script extracts the candidate set from the NetFlow capture, splits it
into hostile / unknown / innocent exactly as §6.1 prescribes, sweeps the
blocked prefix length from /24 to /32, and prints the resulting TP/FP
table (the paper's Table 3) plus ROC operating points.

Run:  python examples/virtual_blocking.py
"""

from repro.api import run_scenario
from repro.ipspace import cidr as icidr
from repro.flows.record import TCPFlags


def main() -> None:
    scenario = run_scenario(small=True)
    flows = scenario.october_traffic.flows
    print(f"October border capture: {len(flows)} flows, "
          f"{flows.unique_sources().size} distinct external sources")
    print(f"old bot report: {len(scenario.bot_test)} addresses "
          f"({icidr.block_count(scenario.bot_test, 24)} /24s) "
          f"from {scenario.bot_test.period[0]}")
    print()

    # --- candidate extraction and partition (§6.1) ----------------------
    part = scenario.partition
    print("candidate partition (paper's Table 2 shape):")
    for report in (part.candidate, part.hostile, part.unknown, part.innocent):
        print(f"  {report.tag:>10}: {len(report):>5} addresses")
    print()

    # Peek at what the unknowns were doing — the paper hand-examined
    # these and found slow scans and ephemeral-to-ephemeral probing.
    unknown_flows = flows.from_sources(part.unknown.addresses)
    syn_only = ((unknown_flows.tcp_flags & TCPFlags.ACK) == 0).mean()
    eph_eph = (
        (unknown_flows.src_port >= 1024) & (unknown_flows.dst_port >= 1024)
    ).mean()
    print(f"unknown-class behaviour: {syn_only:.0%} of their flows are "
          f"SYN-only probes, {eph_eph:.0%} ephemeral-to-ephemeral")
    print()

    # --- the prefix sweep (Eqs. 7-9, Table 3) ----------------------------
    result = scenario.blocking()
    print(f"{'n':>3} {'TP(n)':>6} {'FP(n)':>6} {'pop(n)':>7} {'unknown':>8} "
          f"{'tp_rate':>8} {'fp_rate':>8}")
    for row in result.rows:
        print(f"{row.prefix:>3} {row.true_positives:>6} "
              f"{row.false_positives:>6} {row.population:>7} "
              f"{row.unknown:>8} {row.tp_rate:>8.2f} {row.fp_rate:>8.2f}")
    print()

    row24 = result.row(24)
    blocked24 = icidr.block_count(scenario.bot_test, 24)
    print(f"at /24: {row24.tp_rate:.0%} of scored candidates are hostile "
          f"(paper: ~90%); {row24.tp_rate_assuming_unknown_hostile:.0%} "
          f"counting unknowns as hostile (paper: 97%)")
    print(f"blocking cost: {blocked24} /24s = {blocked24 * 256} addresses, "
          f"of which only {len(part.candidate)} "
          f"({len(part.candidate) / (blocked24 * 256):.1%}) ever "
          f"communicated — blocking is nearly free")


if __name__ == "__main__":
    main()
