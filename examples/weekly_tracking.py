#!/usr/bin/env python
"""Operating uncleanliness as a weekly loop.

The paper scores one static snapshot; a deployment runs continuously.
This example drives :class:`repro.core.tracking.UncleanlinessTracker`
through twelve weeks of the simulated autumn: each week the new bot and
spam evidence is folded into a TTL-managed /24 blocklist, stale entries
age out, and the current list is scored against the NEXT week's ground
truth — the honest, out-of-sample version of the paper's temporal claim.

Run:  python examples/weekly_tracking.py
"""

import datetime

from repro.api import run_scenario
from repro.core.report import Report
from repro.core.tracking import TrackerConfig, UncleanlinessTracker
from repro.sim.timeline import Window, date_to_day

START = date_to_day(datetime.date(2006, 8, 7))
WEEKS = 12


def week_window(index: int) -> Window:
    return Window(START + 7 * index, START + 7 * index + 6)


def main() -> None:
    scenario = run_scenario(small=True)
    tracker = UncleanlinessTracker(
        TrackerConfig(ttl_days=45, listing_threshold=0.5)
    )

    print(f"{'week':>10} {'evidence':>9} {'active':>7} {'pruned':>7} "
          f"{'next-week coverage':>19} {'collateral':>11}")
    for index in range(WEEKS):
        window = week_window(index)
        bots = Report.from_addresses(
            f"bots-w{index}", scenario.botnet.active_addresses(window)
        )
        spammers = Report.from_addresses(
            f"spam-w{index}",
            scenario.botnet.active_addresses(window, spammers_only=True),
        )
        snapshot = tracker.update(
            window.end_day, {"bots": bots, "spam": spammers}
        )

        future = week_window(index + 1)
        future_bots = Report.from_addresses(
            "truth", scenario.botnet.active_addresses(future)
        )
        # Collateral: benign clients during the future week.
        traffic = scenario.october_traffic
        benign = Report.from_addresses(
            "benign", traffic.ground_truth("benign")
        )
        result = tracker.evaluate(future.start_day, future_bots, benign)
        start_date = window.dates()[0].isoformat()
        print(f"{start_date:>10} {len(bots):>9} "
              f"{snapshot['active_entries']:>7} {snapshot['pruned']:>7} "
              f"{result['hostile_coverage']:>19.0%} "
              f"{result['benign_collateral']:>11.1%}")

    print()
    print("the list tracks the botnet week over week: coverage stays high")
    print("because unclean networks keep producing bots, while TTL expiry")
    print("and score decay keep the list from growing without bound.")


if __name__ == "__main__":
    main()
