"""Reproduction of Collins et al., "Using uncleanliness to predict future
botnet addresses" (IMC 2007).

Quick start::

    from repro import PaperScenario, ScenarioConfig, density_test, prediction_test
    import numpy as np

    scenario = PaperScenario(ScenarioConfig.small())
    rng = np.random.default_rng(0)
    spatial = density_test(scenario.bot, scenario.control, rng, subsets=100)
    print(spatial.hypothesis_holds())

Subpackages
-----------
``repro.core``
    The paper's contribution: reports, CIDR analysis, the spatial and
    temporal uncleanliness tests, the §6 blocking experiment, the §7
    multidimensional metric, and the end-to-end scenario builder.
``repro.ipspace``
    IPv4 address arithmetic, CIDR blocks, IANA 2006 allocations,
    reserved-space filtering.
``repro.sim``
    The synthetic Internet, botnet and phishing ecosystems.
``repro.flows``
    NetFlow V5 records, columnar flow logs, border traffic generation.
``repro.detect``
    Scan (fan-out and TRW), spam, bot-log and phishing-list detectors.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.
"""

from repro.core import (
    BETTER_PREDICTOR_LEVEL,
    BLOCKING_PREFIXES,
    PREFIX_RANGE,
    BlockingResult,
    BlockScores,
    CandidatePartition,
    DataClass,
    DensityResult,
    PaperScenario,
    PredictionResult,
    Report,
    ReportType,
    ScenarioConfig,
    UncleanlinessScorer,
    block_jaccard,
    blocking_test,
    density_test,
    partition_candidates,
    prediction_test,
)
from repro.ipspace import CIDRBlock

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Report",
    "ReportType",
    "DataClass",
    "CIDRBlock",
    "PREFIX_RANGE",
    "BETTER_PREDICTOR_LEVEL",
    "BLOCKING_PREFIXES",
    "DensityResult",
    "density_test",
    "PredictionResult",
    "prediction_test",
    "BlockingResult",
    "CandidatePartition",
    "partition_candidates",
    "blocking_test",
    "UncleanlinessScorer",
    "BlockScores",
    "block_jaccard",
    "PaperScenario",
    "ScenarioConfig",
]
