"""Reproduction of Collins et al., "Using uncleanliness to predict future
botnet addresses" (IMC 2007).

Quick start — the :mod:`repro.api` facade is the public surface::

    from repro.api import run_scenario, evaluate, compare

    run = run_scenario(small=True)
    spatial = evaluate(run, metric="density", train="bot", subsets=100)
    print(spatial.hypothesis_holds())                 # §4 spatial test
    temporal = evaluate(run, metric="prediction", subsets=100)
    print(temporal.predictive_range())                # §5 temporal test
    duel = compare(run, subsets=100)                  # rival predictors
    print(duel.auc_ranking())

Subpackages
-----------
``repro.api``
    The supported entry point: ``run_scenario``, ``evaluate``,
    ``compare``, ``list_predictors``/``make_predictor``, returning
    frozen typed result dataclasses.  The pre-1.2 verbs
    (``density_test``, ``prediction_test``, ``evaluate_blocking``)
    remain as deprecated bit-identical shims.
``repro.predict``
    The ``Predictor`` protocol and the rival models it hosts: the §7
    uncleanliness adapter, an implicit-recommendation time-series
    model, and a greedy spatial graph-clustering model.
``repro.core``
    The paper's contribution: reports, CIDR analysis, the spatial and
    temporal uncleanliness tests, the §6 blocking experiment, the §7
    multidimensional metric, and the end-to-end scenario builder.
``repro.obs``
    Observability: span tracing, typed metrics, run manifests
    (``runs/<fingerprint>-<n>/manifest.json``).
``repro.ipspace``
    IPv4 address arithmetic, CIDR blocks, IANA 2006 allocations,
    reserved-space filtering.
``repro.sim``
    The synthetic Internet, botnet and phishing ecosystems.
``repro.flows``
    NetFlow V5 records, columnar flow logs, border traffic generation.
``repro.detect``
    Scan (fan-out and TRW), spam, bot-log and phishing-list detectors.
``repro.experiments``
    One module per paper table/figure, regenerating its rows/series.

Importing deep names (``PaperScenario``, ``blocking_test``, ...) from
this top-level package still works but emits a one-time
``DeprecationWarning`` per name; import them from :mod:`repro.core` (or
switch to the facade) instead.
"""

import warnings as _warnings

from repro.api import (
    BlockingResult,
    ComparisonResult,
    DensityResult,
    FleetResult,
    ModelEvaluation,
    PredictionResult,
    ScenarioConfig,
    ScenarioRun,
    compare,
    density_test,
    evaluate,
    evaluate_blocking,
    list_predictors,
    make_predictor,
    prediction_test,
    run_fleet,
    run_scenario,
)
from repro.core.report import Report

__version__ = "1.2.0"

__all__ = [
    "__version__",
    "run_scenario",
    "evaluate",
    "compare",
    "list_predictors",
    "make_predictor",
    "density_test",
    "prediction_test",
    "evaluate_blocking",
    "run_fleet",
    "FleetResult",
    "ScenarioRun",
    "ScenarioConfig",
    "Report",
    "DensityResult",
    "PredictionResult",
    "BlockingResult",
    "ModelEvaluation",
    "ComparisonResult",
]

#: Names that used to live in the eager top-level namespace; now served
#: lazily with a one-time deprecation warning each, pointing at the
#: stable home.  Format: name -> (module, attribute).
_LEGACY = {
    "ReportType": ("repro.core.report", "ReportType"),
    "DataClass": ("repro.core.report", "DataClass"),
    "CIDRBlock": ("repro.ipspace", "CIDRBlock"),
    "PREFIX_RANGE": ("repro.core.cidr", "PREFIX_RANGE"),
    "BETTER_PREDICTOR_LEVEL": ("repro.core.prediction", "BETTER_PREDICTOR_LEVEL"),
    "BLOCKING_PREFIXES": ("repro.core.blocking", "BLOCKING_PREFIXES"),
    "CandidatePartition": ("repro.core.blocking", "CandidatePartition"),
    "partition_candidates": ("repro.core.blocking", "partition_candidates"),
    "blocking_test": ("repro.core.blocking", "blocking_test"),
    "UncleanlinessScorer": ("repro.core.uncleanliness", "UncleanlinessScorer"),
    "BlockScores": ("repro.core.uncleanliness", "BlockScores"),
    "block_jaccard": ("repro.core.uncleanliness", "block_jaccard"),
    "PaperScenario": ("repro.core.scenario", "PaperScenario"),
}

_LEGACY_WARNED = set()


def __getattr__(name: str):
    try:
        module_name, attr = _LEGACY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    if name not in _LEGACY_WARNED:
        _LEGACY_WARNED.add(name)
        _warnings.warn(
            f"importing {name!r} from the top-level 'repro' package is "
            f"deprecated; import it from {module_name!r} or use the "
            f"repro.api facade",
            DeprecationWarning,
            stacklevel=2,
        )
    import importlib

    return getattr(importlib.import_module(module_name), attr)


def __dir__():
    return sorted(set(__all__) | set(_LEGACY))
