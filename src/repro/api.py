"""The public facade, redesigned around the ``Predictor`` protocol.

Everything a library user needs is here::

    from repro.api import run_scenario, evaluate, compare

    run = run_scenario(small=True)
    spatial = evaluate(run, metric="density", train="bot")   # §4: Figs. 2-3
    temporal = evaluate(run, metric="prediction")            # §5: Figs. 4-5
    table3 = evaluate(run, metric="blocking")                # §6: Table 3
    duel = compare(run, ["uncleanliness", "recommender"])    # head-to-head

:func:`run_scenario` returns a :class:`ScenarioRun` — a frozen handle
pairing a :class:`~repro.core.scenario.ScenarioConfig` with its
fingerprint and the (shared, lazily built) scenario behind it.

:func:`evaluate` is the single evaluation entry: pick a model from the
registry (:func:`list_predictors` / :func:`make_predictor`, or any
object satisfying :class:`repro.predict.Predictor`), a training feed
(``train``) and a ``metric`` — ``"density"``, ``"prediction"``,
``"blocking"`` or ``"all"`` — and get back the frozen typed result
(:class:`DensityResult`, :class:`PredictionResult`,
:class:`BlockingResult` or :class:`repro.predict.ModelEvaluation`).
:func:`compare` runs rival predictors head-to-head over one shared
Monte-Carlo null.  The pre-1.2 verbs — :func:`density_test`,
:func:`prediction_test`, :func:`evaluate_blocking` — remain as thin
delegating shims (one ``DeprecationWarning`` per name per process)
producing bit-identical numbers.

Determinism: when no ``rng``/``seed`` is given, each test seeds its
generator from ``config.seed ^ 0xC1D`` — the same convention the CLI
uses — so facade results are reproducible from the scenario seed alone
and identical to an `uncleanliness` run with the same flags.

Scenarios are cached per config fingerprint (two configs sharing a seed
but differing in any field get independent entries), so repeated facade
calls never rebuild artifacts; the heavy stage values additionally live
in the engine's content-addressed store.  Evaluations are cached the
same way, with the **predictor fingerprint a mandatory part of every
cache key** — two models over one scenario can never collide.
"""

from __future__ import annotations

import os
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Generic, List, Optional, Sequence, TypeVar, Union

import numpy as np

from repro.core.blocking import (
    BLOCKING_PREFIXES,
    BlockingResult,
    blocking_test_blocks as _blocking_test_blocks,
)
from repro.core.cidr import PREFIX_RANGE
from repro.core.density import DensityResult
from repro.core.density import density_test as _density_test
from repro.core.prediction import PredictionResult
from repro.core.prediction import prediction_test as _prediction_test
from repro.core.report import Report
from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.engine.fingerprint import fingerprint as _fingerprint
from repro.engine.store import MISS, default_store
from repro.fleet import (
    FleetConfig,
    FleetResult,
    FleetSupervisor,
    NetworkShard,
    heterogeneous_fleet,
)
from repro.ipspace.addr import AddressLike
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.predict import (
    ComparisonResult,
    ModelEvaluation,
    Predictor,
    compare_predictors,
    evaluate_predictor,
)
from repro.predict import list_predictors as _registry_list
from repro.predict import make_predictor as _registry_make
from repro.predict.evaluate import EvaluationCodec
from repro.predict.protocol import BasePredictor, _report_digest
from repro.predict.registry import DEFAULT_PREDICTORS
from repro.scenarios import ScenarioPack, get_pack
from repro.scenarios import list_packs as _registry_list_packs
from repro.scenarios import pack_names
from repro.sim.timeline import PAPER_WINDOWS
from repro.stream import StreamConfig, UncleanlinessService, day_batches
from repro.stream.checkpoint import stream_fingerprint

__all__ = [
    "ScenarioRun",
    "run_scenario",
    "run_pack",
    "list_packs",
    "pack_names",
    "ScenarioPack",
    "evaluate",
    "compare",
    "list_predictors",
    "make_predictor",
    "density_test",
    "prediction_test",
    "evaluate_blocking",
    "run_fleet",
    "fleet_density_test",
    "fleet_prediction_test",
    "stream_service",
    "score",
    "is_blocked",
    "top_blocks",
    "clear_scenario_cache",
    "DensityResult",
    "PredictionResult",
    "BlockingResult",
    "ModelEvaluation",
    "ComparisonResult",
    "ScenarioConfig",
    "StreamConfig",
    "UncleanlinessService",
    "FleetConfig",
    "FleetResult",
    "NetworkShard",
]

_V = TypeVar("_V")


class _LRUCache(Generic[_V]):
    """A small bounded LRU keyed by fingerprint strings.

    Scenario handles hold simulations alive through the engine's memory
    tier, so the facade's per-fingerprint cache must not grow without
    bound in long-lived processes (a sweep over many seeds, say);
    evictions are counted to the named metric so cache thrash is
    visible in the run manifest.
    """

    def __init__(self, capacity: int, metric: str) -> None:
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self.metric = metric
        self._entries: "OrderedDict[str, _V]" = OrderedDict()

    def get(self, key: str) -> Optional[_V]:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: str, value: _V) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            obs_metrics.inc(self.metric)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries


def _cache_capacity(env: str, default: int) -> int:
    raw = os.environ.get(env)
    if raw is None:
        return default
    try:
        return max(1, int(raw))
    except ValueError:
        return default


#: Scenarios per config fingerprint, bounded (``$REPRO_SCENARIO_CACHE_SIZE``,
#: default 8); stage artifacts live in the engine store regardless, so an
#: evicted scenario rebuilds from cache, not from simulation.
_SCENARIOS: _LRUCache[PaperScenario] = _LRUCache(
    _cache_capacity("REPRO_SCENARIO_CACHE_SIZE", 8),
    "api.scenario_cache.evictions",
)

#: Streaming services per stream fingerprint (bounded like scenarios;
#: an evicted service resumes from its day checkpoints).
_SERVICES: _LRUCache[UncleanlinessService] = _LRUCache(
    _cache_capacity("REPRO_STREAM_CACHE_SIZE", 4),
    "api.stream_cache.evictions",
)


def _scenario_for(config: Optional[ScenarioConfig] = None) -> PaperScenario:
    """The shared scenario for a config, keyed by its full fingerprint."""
    config = config or ScenarioConfig()
    key = config.fingerprint()
    scenario = _SCENARIOS.get(key)
    if scenario is None:
        scenario = PaperScenario._create(config)
        _SCENARIOS.put(key, scenario)
    return scenario


def clear_scenario_cache() -> None:
    """Drop the shared scenario and stream-service handles (tests).

    Stage artifacts in the engine store are untouched; reset or clear
    the store itself (:func:`repro.engine.reset_default_store`) to force
    real rebuilds.
    """
    _SCENARIOS.clear()
    _SERVICES.clear()
    _EVALUATIONS.clear()


@dataclass(frozen=True)
class ScenarioRun:
    """A frozen handle on one configured scenario.

    Equality and hashing go by ``fingerprint`` (two runs of the same
    config are the same run); every :class:`PaperScenario` attribute —
    ``bot``, ``control``, ``partition``, ``report(tag)``,
    ``table1_rows()`` — is available by delegation.
    """

    config: ScenarioConfig
    fingerprint: str
    _scenario: PaperScenario = field(repr=False, compare=False)

    def report(self, tag: str) -> Report:
        """Look up a report by its Table 1/2 tag."""
        return self._scenario.report(tag)

    def table1_rows(self) -> List[dict]:
        """The report inventory in the shape of the paper's Table 1."""
        return self._scenario.table1_rows()

    @property
    def scenario(self) -> PaperScenario:
        """The underlying scenario (for code migrating off the old API)."""
        return self._scenario

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "_scenario"), name)


def run_scenario(
    config: Optional[ScenarioConfig] = None,
    *,
    small: bool = False,
    seed: Optional[int] = None,
) -> ScenarioRun:
    """Configure (but do not yet build) the paper's datasets.

    ``small=True`` selects the ~100x reduced test configuration; ``seed``
    overrides the config's seed.  Nothing is simulated until a report is
    first touched, and scenarios are shared per config fingerprint, so
    calling this repeatedly is free.
    """
    if config is None:
        config = ScenarioConfig.small() if small else ScenarioConfig()
    elif small:
        raise ValueError("pass either a config or small=True, not both")
    if seed is not None:
        config = replace(config, seed=seed)
    with obs_trace.span("api.run_scenario", small=small):
        scenario = _scenario_for(config)
    return ScenarioRun(
        config=scenario.config,
        fingerprint=scenario.config.fingerprint(),
        _scenario=scenario,
    )


ScenarioLike = Union[ScenarioRun, PaperScenario, ScenarioConfig, None]


def _resolve_scenario(
    scenario: ScenarioLike, pack: Optional[str] = None
) -> PaperScenario:
    if pack is not None:
        if isinstance(scenario, (ScenarioRun, PaperScenario)):
            base = scenario.config
        elif isinstance(scenario, ScenarioConfig) or scenario is None:
            base = scenario
        else:
            raise TypeError(
                f"expected a ScenarioRun, PaperScenario, ScenarioConfig or "
                f"None, got {type(scenario).__name__}"
            )
        return _scenario_for(get_pack(pack).build(base))
    if isinstance(scenario, ScenarioRun):
        return scenario._scenario
    if isinstance(scenario, PaperScenario):
        return scenario
    if isinstance(scenario, ScenarioConfig) or scenario is None:
        return _scenario_for(scenario)
    raise TypeError(
        f"expected a ScenarioRun, PaperScenario, ScenarioConfig or None, "
        f"got {type(scenario).__name__}"
    )


def list_packs() -> List[ScenarioPack]:
    """The registered scenario packs (see :mod:`repro.scenarios`)."""
    return _registry_list_packs()


def run_pack(
    name: str,
    *,
    base: Optional[ScenarioConfig] = None,
    small: bool = False,
    seed: Optional[int] = None,
) -> ScenarioRun:
    """Configure a scenario pack's world (see :mod:`repro.scenarios`).

    A pack is a pure config transform, so the returned run flows through
    the same fingerprint-keyed caches as any hand-built config —
    ``run_pack("paper-default")`` is byte-for-byte ``run_scenario()``.
    """
    with obs_trace.span("api.run_pack", pack=name):
        config = get_pack(name).build(base, small=small, seed=seed)
        return run_scenario(config)


def _as_report(scenario: PaperScenario, report: Union[str, Report]) -> Report:
    if isinstance(report, Report):
        return report
    return scenario.report(report)


def _default_rng(
    scenario: PaperScenario,
    rng: Optional[np.random.Generator],
    seed: Optional[int],
) -> np.random.Generator:
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either rng or seed, not both")
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    # The CLI's convention: derived from, but distinct from, the data seed.
    return np.random.default_rng(scenario.config.seed ^ 0xC1D)


# -- the predictor-generic evaluation entry ---------------------------------

#: Cached evaluation results per evaluation fingerprint
#: (``$REPRO_EVAL_CACHE_SIZE``, default 32).  The key always embeds the
#: predictor fingerprint, so rival models over one scenario occupy
#: distinct entries by construction.
_EVALUATIONS: _LRUCache[object] = _LRUCache(
    _cache_capacity("REPRO_EVAL_CACHE_SIZE", 32),
    "api.evaluation_cache.evictions",
)

#: The metric vocabulary of :func:`evaluate`.
_METRICS = ("density", "prediction", "blocking", "all")

TrainLike = Union[str, Report, Sequence[Union[str, Report]]]


def list_predictors() -> List[str]:
    """Registered predictor names (see :mod:`repro.predict.registry`)."""
    return _registry_list()


def make_predictor(name: str, **params) -> BasePredictor:
    """Construct a registered predictor by name with hyperparameters."""
    return _registry_make(name, **params)


def _training_reports(sc: PaperScenario, train: TrainLike) -> dict:
    """Resolve ``train`` (tag, report, or a sequence of either) to the
    tag-keyed mapping predictors fit on."""
    if isinstance(train, (str, Report)):
        train = (train,)
    reports = {}
    for item in train:
        report = _as_report(sc, item)
        if report.tag in reports:
            raise ValueError(f"duplicate training tag {report.tag!r}")
        reports[report.tag] = report
    if not reports:
        raise ValueError("at least one training report is required")
    return reports


def _resolve_predictor(
    predictor: Union[str, Predictor], params: Optional[dict]
) -> BasePredictor:
    if isinstance(predictor, str):
        return _registry_make(predictor, **(params or {}))
    if params:
        raise ValueError(
            "params only apply when the predictor is given by name"
        )
    return predictor


def _evaluation_key(
    sc: PaperScenario,
    predictor: BasePredictor,
    metric: str,
    training: dict,
    present: Optional[Report],
    control: Optional[Report],
    knobs: dict,
) -> str:
    """Fingerprint of one evaluation — scenario and **predictor**
    fingerprints plus every result-shaping knob.

    Threading the predictor fingerprint through the key is what keeps
    two models over the same scenario from ever colliding in the
    fingerprint-keyed caches (in-memory LRU and artifact store alike).
    Report identities hash by content digest, not tag alone, so a
    caller-supplied custom report never aliases a scenario tag.
    """
    identity = {
        "kind": "api.evaluate",
        "scenario": sc.config.fingerprint(),
        "predictor": predictor.fingerprint(),
        "metric": metric,
        "train": sorted(
            [tag, _report_digest(report)] for tag, report in training.items()
        ),
        "present": None if present is None else [
            present.tag, _report_digest(present)
        ],
        "control": None if control is None else [
            control.tag, _report_digest(control)
        ],
        "knobs": knobs,
    }
    return _fingerprint(identity)


def evaluate(
    scenario: ScenarioLike = None,
    predictor: Union[str, Predictor] = "uncleanliness",
    *,
    metric: str = "prediction",
    train: TrainLike = "bot-test",
    present: Union[str, Report] = "bot",
    control: Union[str, Report] = "control",
    params: Optional[dict] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    prefixes: Optional[Sequence[int]] = None,
    subsets: int = 1000,
    include_naive: bool = False,
    naive_subsets: int = 20,
    workers: Optional[int] = None,
    pack: Optional[str] = None,
):
    """The single evaluation entry: any predictor, any paper metric.

    ``pack`` names a scenario pack to apply before evaluation: the
    pack's transform runs over the given scenario's config (or the
    default when none is given) and the evaluation targets the variant
    world.

    ``predictor`` is a registry name (with optional constructor
    ``params``) or any fitted-or-not :class:`repro.predict.Predictor`;
    it is (re)fitted on the ``train`` reports.  ``metric`` selects the
    result:

    ``"density"``
        §4 spatial test of the training report(s) —
        :class:`DensityResult` (predictor-independent; the model's
        training feed is what is tested).
    ``"prediction"``
        §5 temporal test of the model's predicted blocks against
        ``present`` — :class:`PredictionResult`.
    ``"blocking"``
        §6 Table-3 virtual block of the model's predicted blocks over
        the scenario partition — :class:`BlockingResult`.
    ``"all"``
        Prediction + blocking + hostile-vs-innocent ROC in one
        :class:`repro.predict.ModelEvaluation`.

    Results are cached (in-memory, and in the artifact store for
    ``metric="all"``) under a key embedding the scenario *and
    predictor* fingerprints whenever no live ``rng`` is passed — with
    an explicit generator the caller controls the stream and the result
    is not a pure function of the key.
    """
    if metric not in _METRICS:
        raise ValueError(
            f"unknown metric {metric!r}; expected one of {_METRICS}"
        )
    sc = _resolve_scenario(scenario, pack)
    training = _training_reports(sc, train)
    model = _resolve_predictor(predictor, params)
    model.fit(training, window=PAPER_WINDOWS.OCTOBER)

    if metric == "density":
        reports = list(training.values())
        unclean = reports[0]
        for extra in reports[1:]:
            unclean = unclean.union(
                extra, tag="+".join(sorted(training))
            )
        with obs_trace.span("api.evaluate", metric=metric,
                            predictor=model.name):
            return _density_test(
                unclean,
                _as_report(sc, control),
                _default_rng(sc, rng, seed),
                prefixes=tuple(prefixes or PREFIX_RANGE),
                subsets=subsets,
                include_naive=include_naive,
                naive_subsets=naive_subsets,
                workers=workers,
            )

    present_report = _as_report(sc, present) if metric != "blocking" else None
    control_report = _as_report(sc, control) if metric != "blocking" else None
    knobs = {
        "prefixes": None if prefixes is None else tuple(prefixes),
        "subsets": subsets,
        "seed": seed,
    }
    cacheable = rng is None
    key = None
    if cacheable:
        key = _evaluation_key(
            sc, model, metric, training, present_report, control_report, knobs
        )
        cached = _EVALUATIONS.get(key)
        if cached is not None:
            obs_metrics.inc("api.evaluation_cache.hits")
            return cached
        if metric == "all":
            stored = default_store().get(f"eval-{key}", EvaluationCodec())
            if stored is not MISS:
                _EVALUATIONS.put(key, stored)
                obs_metrics.inc("api.evaluation_cache.disk_hits")
                return stored

    with obs_trace.span("api.evaluate", metric=metric, predictor=model.name):
        if metric == "blocking":
            blocking_prefixes = tuple(
                prefixes if prefixes is not None else BLOCKING_PREFIXES
            )
            result = _blocking_test_blocks(
                sc.partition,
                [model.score_blocks(n).blocks for n in blocking_prefixes],
                blocking_prefixes,
            )
        else:
            evaluation = evaluate_predictor(
                model,
                present_report,
                control_report,
                _default_rng(sc, rng, seed),
                partition=sc.partition if metric == "all" else None,
                prefixes=tuple(prefixes or PREFIX_RANGE),
                subsets=subsets,
                workers=workers,
            )
            result = evaluation if metric == "all" else evaluation.prediction

    if cacheable:
        _EVALUATIONS.put(key, result)
        if metric == "all":
            default_store().put(f"eval-{key}", result, EvaluationCodec())
    return result


def compare(
    scenario: ScenarioLike = None,
    predictors: Optional[Sequence[Union[str, Predictor]]] = None,
    *,
    train: TrainLike = "bot-test",
    present: Union[str, Report] = "bot",
    control: Union[str, Report] = "control",
    params: Optional[dict] = None,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    prefixes: Optional[Sequence[int]] = None,
    subsets: int = 1000,
    workers: Optional[int] = None,
    pack: Optional[str] = None,
) -> ComparisonResult:
    """Head-to-head evaluation of rival predictors over one scenario.

    ``pack`` applies a scenario pack to the (given or default) config
    first — the natural way to ask "which model wins under churn?".

    ``predictors`` lists registry names and/or predictor instances
    (default: every built-in model); ``params`` maps predictor names to
    constructor keyword dicts.  All models fit on the same ``train``
    feeds and share one §5 Monte-Carlo null per training cardinality,
    then each runs the Table-3 block and the hostile-vs-innocent ROC.
    Cached like :func:`evaluate`, keyed by every model's fingerprint.
    """
    sc = _resolve_scenario(scenario, pack)
    training = _training_reports(sc, train)
    chosen = list(predictors) if predictors is not None else list(
        DEFAULT_PREDICTORS
    )
    if not chosen:
        raise ValueError("at least one predictor is required")
    params = params or {}
    unknown = set(params) - {p for p in chosen if isinstance(p, str)}
    if unknown:
        raise ValueError(
            f"params given for predictors not in the comparison: "
            f"{sorted(unknown)}"
        )
    models = [
        _resolve_predictor(p, params.get(p) if isinstance(p, str) else None)
        for p in chosen
    ]
    for model in models:
        model.fit(training, window=PAPER_WINDOWS.OCTOBER)

    present_report = _as_report(sc, present)
    control_report = _as_report(sc, control)
    knobs = {
        "prefixes": None if prefixes is None else tuple(prefixes),
        "subsets": subsets,
        "seed": seed,
        "models": [model.fingerprint() for model in models],
    }
    cacheable = rng is None
    key = None
    if cacheable:
        key = _fingerprint(
            {
                "kind": "api.compare",
                "scenario": sc.config.fingerprint(),
                "present": [present_report.tag, _report_digest(present_report)],
                "control": [control_report.tag, _report_digest(control_report)],
                "knobs": knobs,
            }
        )
        cached = _EVALUATIONS.get(key)
        if cached is not None:
            obs_metrics.inc("api.evaluation_cache.hits")
            return cached

    with obs_trace.span(
        "api.compare", predictors=",".join(m.name for m in models)
    ):
        result = compare_predictors(
            models,
            present_report,
            control_report,
            _default_rng(sc, rng, seed),
            partition=sc.partition,
            prefixes=tuple(prefixes or PREFIX_RANGE),
            subsets=subsets,
            workers=workers,
        )
    if cacheable:
        _EVALUATIONS.put(key, result)
    return result


# -- pre-1.2 verbs (deprecated shims) ----------------------------------------

_DEPRECATED_WARNED = set()


def _warn_deprecated(name: str, hint: str) -> None:
    """One ``DeprecationWarning`` per legacy verb per process."""
    if name in _DEPRECATED_WARNED:
        return
    _DEPRECATED_WARNED.add(name)
    warnings.warn(
        f"repro.api.{name} is deprecated since 1.2.0; use {hint}",
        DeprecationWarning,
        stacklevel=3,
    )


def density_test(
    scenario: ScenarioLike = None,
    report: Union[str, Report] = "bot",
    *,
    control: Union[str, Report] = "control",
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    prefixes: Sequence[int] = tuple(PREFIX_RANGE),
    subsets: int = 1000,
    include_naive: bool = False,
    naive_subsets: int = 20,
    workers: Optional[int] = None,
) -> DensityResult:
    """Deprecated: the §4.2 spatial test — use
    ``evaluate(metric="density", train=report)``.

    Thin delegating wrapper; numbers are bit-identical to pre-1.2.
    """
    _warn_deprecated("density_test", 'evaluate(..., metric="density")')
    return evaluate(
        scenario,
        metric="density",
        train=report,
        control=control,
        rng=rng,
        seed=seed,
        prefixes=prefixes,
        subsets=subsets,
        include_naive=include_naive,
        naive_subsets=naive_subsets,
        workers=workers,
    )


def prediction_test(
    scenario: ScenarioLike = None,
    past: Union[str, Report] = "bot-test",
    present: Union[str, Report] = "bot",
    *,
    control: Union[str, Report] = "control",
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    prefixes: Sequence[int] = tuple(PREFIX_RANGE),
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> PredictionResult:
    """Deprecated: the §5.2 temporal test — use
    ``evaluate(metric="prediction", train=past, present=present)``.

    Thin delegating wrapper over the uncleanliness adapter; the §5
    numbers are bit-identical to pre-1.2 (the adapter's predicted
    blocks at every prefix are exactly ``C_n(past)``).
    """
    _warn_deprecated("prediction_test", 'evaluate(..., metric="prediction")')
    return evaluate(
        scenario,
        metric="prediction",
        train=past,
        present=present,
        control=control,
        rng=rng,
        seed=seed,
        prefixes=prefixes,
        subsets=subsets,
        workers=workers,
    )


def evaluate_blocking(
    scenario: ScenarioLike = None,
    *,
    bot_test: Union[str, Report] = "bot-test",
    prefixes: Sequence[int] = BLOCKING_PREFIXES,
) -> BlockingResult:
    """Deprecated: the §6 blocking experiment — use
    ``evaluate(metric="blocking", train=bot_test)``.

    Thin delegating wrapper; Table 3 is bit-identical to pre-1.2.
    """
    _warn_deprecated("evaluate_blocking", 'evaluate(..., metric="blocking")')
    return evaluate(
        scenario,
        metric="blocking",
        train=bot_test,
        prefixes=prefixes,
    )


# -- fleet / clearinghouse ---------------------------------------------------

FleetLike = Union[FleetResult, FleetConfig, Sequence[NetworkShard], None]

#: Policy keywords ``run_fleet`` forwards into :class:`FleetConfig`.
_FLEET_POLICY_KEYS = (
    "feed_tags",
    "deadline",
    "max_retries",
    "backoff",
    "quorum",
    "max_staleness_days",
    "workers",
    "prefix_len",
)


def _resolve_fleet(fleet: FleetLike, count: int, seed: Optional[int],
                   small: bool, pack: Optional[str], vantage: str,
                   policy: dict) -> FleetConfig:
    if fleet is None:
        base_seed = seed if seed is not None else ScenarioConfig().seed
        return heterogeneous_fleet(
            count, seed=base_seed, small=small, pack=pack, vantage=vantage,
            **policy,
        )
    if pack is not None or vantage != "global":
        raise ValueError(
            "pack/vantage only apply when run_fleet builds the default "
            "heterogeneous fleet (fleet=None); shape explicit shards with "
            "heterogeneous_fleet(pack=..., vantage=...) instead"
        )
    if isinstance(fleet, FleetConfig):
        return replace(fleet, **policy) if policy else fleet
    if isinstance(fleet, FleetResult):
        return replace(fleet.config, **policy) if policy else fleet.config
    return FleetConfig(shards=tuple(fleet), **policy)


def run_fleet(
    fleet: FleetLike = None,
    *,
    count: int = 3,
    seed: Optional[int] = None,
    small: bool = False,
    pack: Optional[str] = None,
    vantage: str = "global",
    runner=None,
    checkpoint: bool = True,
    **policy,
) -> FleetResult:
    """Run a multi-network fleet and pool it through the clearinghouse.

    ``fleet`` may be a :class:`FleetConfig`, a sequence of
    :class:`NetworkShard`, a previous :class:`FleetResult` (re-run the
    same membership), or ``None`` — the default
    :func:`~repro.fleet.heterogeneous_fleet` of ``count`` dissimilar
    networks.  Policy keywords (``deadline``, ``max_retries``,
    ``backoff``, ``quorum``, ``max_staleness_days``, ``workers``, ...)
    pass through to :class:`FleetConfig`.

    ``pack`` runs the default fleet over a scenario-pack world, and
    ``vantage="as"`` pins each member to one autonomous system of that
    world (see :func:`~repro.fleet.heterogeneous_fleet`); both apply
    only when ``fleet`` is ``None``.

    Completed shards checkpoint through the artifact store, so a re-run
    after a crash resumes instantly; shards that exhaust their retries
    are quarantined and the result's clearinghouse degrades gracefully
    (see :meth:`FleetResult.manifest`).
    """
    unknown = set(policy) - set(_FLEET_POLICY_KEYS)
    if unknown:
        raise TypeError(f"unknown fleet policy keywords: {sorted(unknown)}")
    config = _resolve_fleet(fleet, count, seed, small, pack, vantage, policy)
    with obs_trace.span("api.run_fleet", shards=len(config.shards)):
        supervisor = FleetSupervisor(
            config, runner=runner, checkpoint=checkpoint
        )
        return supervisor.run()


def _resolve_fleet_result(fleet: FleetLike, **kwargs) -> FleetResult:
    if isinstance(fleet, FleetResult):
        return fleet
    return run_fleet(fleet, **kwargs)


def _fleet_rng(
    result: FleetResult,
    rng: Optional[np.random.Generator],
    seed: Optional[int],
) -> np.random.Generator:
    if rng is not None:
        if seed is not None:
            raise ValueError("pass either rng or seed, not both")
        return rng
    if seed is not None:
        return np.random.default_rng(seed)
    # Same convention as the single-network verbs: derived from the
    # (first shard's) data seed, so fleet results reproduce from config.
    return np.random.default_rng(result.config.shards[0].config.seed ^ 0xC1D)


def fleet_density_test(
    fleet: FleetLike = None,
    report: str = "bot",
    *,
    control: str = "control",
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    prefixes: Sequence[int] = tuple(PREFIX_RANGE),
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> DensityResult:
    """The §4.2 spatial test on the *pooled* clearinghouse view.

    Pools ``report`` and ``control`` across every available feed and
    runs the density test on the union — the clearinghouse's answer to
    "is pooled unclean space denser than pooled address space?".
    """
    result = _resolve_fleet_result(fleet)
    ch = result.clearinghouse
    pooled = ch.pooled_report(report)
    with obs_trace.span("api.fleet_density_test", report=pooled.tag):
        return _density_test(
            pooled,
            ch.pooled_report(control),
            _fleet_rng(result, rng, seed),
            prefixes=prefixes,
            subsets=subsets,
            workers=workers,
        )


def fleet_prediction_test(
    fleet: FleetLike,
    target: str,
    past: str = "bot-test",
    present: str = "bot",
    *,
    control: str = "control",
    cross: bool = True,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
    prefixes: Sequence[int] = tuple(PREFIX_RANGE),
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> PredictionResult:
    """The §5.2 temporal test *across* networks.

    With ``cross=True`` (the paper's multi-vantage-point claim) the
    past report is pooled from every available feed **except**
    ``target``, and tested against ``target``'s own present report and
    control population: other networks' old uncleanliness predicting
    this network's current botnet space.  ``cross=False`` uses the
    target's local past report (the single-network baseline).
    """
    result = _resolve_fleet_result(fleet)
    ch = result.clearinghouse
    feed = ch.feed(target)
    past_report = (
        ch.pooled_report(past, exclude=(target,)) if cross
        else feed.reports[past]
    )
    with obs_trace.span(
        "api.fleet_prediction_test", target=target, cross=cross
    ):
        return _prediction_test(
            past_report,
            feed.reports[present],
            feed.reports[control],
            _fleet_rng(result, rng, seed),
            prefixes=prefixes,
            subsets=subsets,
            workers=workers,
        )


# -- streaming service -------------------------------------------------------

#: Report feeds a scenario delivers to the stream (everything in Table 1
#: except the detector-computed ``scan``/``spam`` and derived ``unclean``).
STREAM_FEED_TAGS = (
    "bot", "phish", "phish-present", "bot-test", "phish-test", "control",
)


def _stream_config_for(
    config: ScenarioConfig, prefix_len: int, threshold: float
) -> StreamConfig:
    """The stream calibrated to a scenario (replay-equivalent settings)."""
    return StreamConfig(
        window=PAPER_WINDOWS.OCTOBER,
        prefix_len=prefix_len,
        threshold=threshold,
        scan_detector=config.scan_detector,
        spam_detector=config.spam_detector,
    )


def _warm_service(service: UncleanlinessService, sc: PaperScenario) -> int:
    """Ingest every day the service has not seen yet; days folded.

    A cold service gets the scenario's feeds with its first batch; one
    resumed from a checkpoint already holds the merged feeds, so only
    the remaining days' flows are replayed.
    """
    window = service.config.window
    if service.cursor >= window.end_day:
        return 0
    provided = None
    if service.state.days_ingested == 0:
        provided = {tag: sc.report(tag) for tag in STREAM_FEED_TAGS}
    folded = 0
    for batch in day_batches(
        sc.october_traffic, provided, from_day=service.cursor + 1
    ):
        service.ingest(batch)
        folded += 1
    return folded


def stream_service(
    scenario: ScenarioLike = None,
    *,
    small: bool = False,
    seed: Optional[int] = None,
    prefix_len: int = 24,
    threshold: float = 0.5,
    warm: bool = True,
    checkpointing: bool = True,
) -> UncleanlinessService:
    """The streaming uncleanliness service for a scenario's traffic.

    Resumes from the newest day checkpoint when one exists, then (with
    ``warm=True``) folds in any days not yet ingested, so the returned
    service always answers for the scenario's full window.  Services
    are shared per stream fingerprint, so repeated calls — and the
    :func:`score` / :func:`is_blocked` / :func:`top_blocks` one-liners —
    reuse the warm index.
    """
    if scenario is None and (small or seed is not None):
        scenario = run_scenario(small=small, seed=seed)
    elif small or seed is not None:
        raise ValueError("pass either a scenario or small=/seed=, not both")
    sc = _resolve_scenario(scenario)
    config = _stream_config_for(sc.config, prefix_len, threshold)
    source = sc.config.fingerprint()
    with obs_trace.span("api.stream_service", source=source):
        service = _SERVICES.get(stream_fingerprint(config, source))
        if service is None:
            service = UncleanlinessService.resume(
                config, source=source, checkpointing=checkpointing
            )
            _SERVICES.put(service.fingerprint, service)
        if warm:
            _warm_service(service, sc)
    return service


def score(
    address: AddressLike,
    scenario: ScenarioLike = None,
    *,
    small: bool = False,
    seed: Optional[int] = None,
    prefix_len: int = 24,
) -> float:
    """Uncleanliness score of the block containing ``address`` — the §7
    metric served from the streaming index (0.0 for unreported space)."""
    return stream_service(
        scenario, small=small, seed=seed, prefix_len=prefix_len
    ).score(address)


def is_blocked(
    address: AddressLike,
    scenario: ScenarioLike = None,
    *,
    small: bool = False,
    seed: Optional[int] = None,
    prefix_len: int = 24,
    threshold: float = 0.5,
) -> bool:
    """Whether ``address`` is inside the current recommended blocklist."""
    return stream_service(
        scenario, small=small, seed=seed,
        prefix_len=prefix_len, threshold=threshold,
    ).is_blocked(address)


def top_blocks(
    count: int = 10,
    scenario: ScenarioLike = None,
    *,
    small: bool = False,
    seed: Optional[int] = None,
    prefix_len: int = 24,
) -> List[dict]:
    """The ``count`` most unclean blocks with per-class evidence."""
    return stream_service(
        scenario, small=small, seed=seed, prefix_len=prefix_len
    ).top_blocks(count)
