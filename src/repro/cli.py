"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    uncleanliness table1 [--small] [--seed N]
    uncleanliness figure4 [--subsets N] [--workers W]
    uncleanliness all --small
    uncleanliness ablation
    uncleanliness compare [--predictors NAME ...] [--train TAG ...]
    uncleanliness score --reports bots.txt scan.txt --threshold 0.5 \
        --output blocklist.txt
    uncleanliness validate --small
    uncleanliness profile --reports feed.txt
    uncleanliness cache [info|clear|doctor] [--purge-quarantine]
    uncleanliness trace [latest|<run-dir>|<fingerprint-prefix>]
    uncleanliness fleet [--shards N] [--small] [--workers W]
    uncleanliness packs
    uncleanliness table2 --pack attack-wave --small

The ``--small`` flag runs the ~100x reduced scenario (seconds instead of
a minute); shapes are preserved but the counts are proportionally lower.
``--pack`` runs any scenario verb (and the fleet) inside a named
scenario-pack world — ``uncleanliness packs`` lists them.

Scenario artifacts are cached by the staged engine (``~/.cache/repro``
or ``$REPRO_CACHE_DIR``), so a warm rerun of any table/figure skips the
simulation; ``uncleanliness cache`` inspects or clears that cache.
``--workers`` (default ``$REPRO_WORKERS`` or serial) parallelises the
Monte-Carlo control subsets with bit-identical results.

Observability: every run executes with span tracing enabled and leaves
a manifest — config fingerprint, seed, versions, metrics, span tree —
in ``runs/<fingerprint>-<n>/`` (``$REPRO_RUNS_DIR`` overrides; empty
disables).  ``uncleanliness trace`` pretty-prints a stored span tree,
and ``--profile`` on any verb prints the run's hotspot table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.scenario import ScenarioConfig
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import render as obs_render
from repro.obs import trace as obs_trace
from repro.experiments import (
    ablation,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
)

__all__ = ["main", "build_parser"]

_SCENARIO_EXPERIMENTS = {
    "figure2": (figure2, True),
    "figure3": (figure3, True),
    "figure4": (figure4, True),
    "figure5": (figure5, True),
    "table1": (table1, False),
    "table2": (table2, False),
    "table3": (table3, False),
}

_ALL = ("table1", "table2", "table3", "figure2", "figure3", "figure4", "figure5")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="uncleanliness",
        description=(
            "Reproduce tables and figures of 'Using uncleanliness to "
            "predict future botnet addresses' (IMC 2007)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_SCENARIO_EXPERIMENTS)
        + ["figure1", "ablation", "all", "compare", "score", "validate",
           "profile", "cache", "trace", "ingest", "serve", "fleet", "packs"],
        help="which experiment to regenerate; 'compare' runs rival "
        "blocklist predictors head-to-head (Table 3 + ROC-AUC per model "
        "over one shared Monte-Carlo null), 'score' scores user-provided "
        "report files into a /24 blocklist, 'validate' runs the statistical "
        "generator checks, 'profile' prints the address-structure profile "
        "of report files, 'cache' inspects or clears the artifact cache, "
        "'trace' pretty-prints the span tree of a recorded run, 'ingest' "
        "folds scenario day-batches into the streaming uncleanliness "
        "service (checkpointed, resumable), 'serve' answers score/blocked "
        "queries from the streaming index over stdin, 'fleet' runs the "
        "sharded multi-network fleet and prints the clearinghouse view "
        "next to each member network's local view, 'packs' lists the "
        "registered scenario packs",
    )
    parser.add_argument(
        "action",
        nargs="?",
        default=None,
        help="(cache) 'info' (default), 'clear', or 'doctor' — doctor "
        "checksum-verifies every cached artifact, quarantines corrupt "
        "ones, sweeps orphans and prints the store health counters; "
        "(trace) a run selector: 'latest' (default), a run directory "
        "name, a fingerprint prefix, or a path",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after the run, print the top-N span hotspot table "
        "(self-time ranking) to stderr",
    )
    parser.add_argument(
        "--purge-quarantine",
        action="store_true",
        help="(cache doctor) delete quarantined files after reporting",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="scenario seed (default: paper seed)"
    )
    parser.add_argument(
        "--small",
        action="store_true",
        help="use the fast ~100x reduced scenario",
    )
    parser.add_argument(
        "--subsets",
        type=int,
        default=200,
        help="Monte-Carlo control subsets for the density/prediction tests",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="Monte-Carlo worker processes (default: $REPRO_WORKERS or 1); "
        "results are bit-identical for any value",
    )
    parser.add_argument(
        "--reports",
        nargs="+",
        metavar="FILE",
        help="(score) report files: one address per line, optional "
        "'#:' header as written by repro.io.write_report",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="(score) minimum aggregate score for a block to be listed",
    )
    parser.add_argument(
        "--prefix",
        type=int,
        default=24,
        help="(score) blocklist granularity in bits",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="(score) write the blocklist here instead of stdout",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=3,
        help="(fleet) number of heterogeneous member networks",
    )
    parser.add_argument(
        "--pack",
        metavar="NAME",
        default=None,
        help="run inside a named scenario-pack world (see 'uncleanliness "
        "packs'); applies to every scenario verb and the fleet",
    )
    parser.add_argument(
        "--vantage",
        choices=("global", "as"),
        default="global",
        help="(fleet) 'as' pins each member network to one autonomous "
        "system of an AS-structured pack world",
    )
    parser.add_argument(
        "--predictors",
        nargs="+",
        metavar="NAME",
        default=None,
        help="(compare) registered predictor names to pit against each "
        "other (default: every registered model; see repro.api."
        "list_predictors)",
    )
    parser.add_argument(
        "--train",
        nargs="+",
        metavar="TAG",
        default=None,
        help="(compare) scenario report tag(s) the predictors fit on "
        "(default: bot-test)",
    )
    parser.add_argument(
        "--present",
        metavar="TAG",
        default="bot",
        help="(compare) present-day report the §5 test targets",
    )
    parser.add_argument(
        "--days",
        type=int,
        default=None,
        help="(ingest) fold at most this many not-yet-ingested days "
        "(default: all remaining days of the window)",
    )
    return parser


def _run_cache(args: argparse.Namespace) -> int:
    """Inspect or clear the staged-artifact cache."""
    from repro.engine import default_store

    store = default_store()
    action = args.action or "info"
    if action == "info":
        info = store.info()
        print("Staged artifact cache:")
        print(f"  disk dir:       {info['disk_dir'] or '(disk layer disabled)'}")
        print(f"  disk files:     {info['disk_files']} "
              f"({info['disk_bytes']} bytes)")
        print(f"  memory entries: {info['memory_entries']} "
              f"(max {info['max_memory_items']})")
        print(f"  hits:           {info['memory_hits']} memory, "
              f"{info['disk_hits']} disk; misses: {info['misses']}")
        print(f"  stream ckpts:   {info['stream_checkpoints']} "
              f"day checkpoint(s) ({info['stream_checkpoint_bytes']} bytes)")
        print(f"  flow chunks:    {info['flow_chunks']} chunk(s) "
              f"({info['flow_chunk_bytes']} bytes)")
        namespaces = info["fleet_namespaces"]
        print(f"  fleet ckpts:    {info['fleet_checkpoints']} shard "
              f"deliver(ies) in {len(namespaces)} namespace(s)")
        for name in sorted(namespaces):
            entry = namespaces[name]
            print(f"    {name}: {entry['entries']} entr(ies), "
                  f"{entry['bytes']} bytes")
        print(f"  quarantine:     {info['quarantine_files']} file(s)")
        return 0
    if action == "clear":
        removed = store.clear()
        print(f"cleared artifact cache ({removed} disk file(s) removed)")
        return 0
    if action == "doctor":
        report = store.doctor(purge_quarantine=args.purge_quarantine)
        degraded = (
            f"yes ({report['degraded_reason']})" if report["degraded"] else "no"
        )
        print("Cache doctor:")
        print(f"  disk dir:       {report['disk_dir'] or '(disk layer disabled)'}")
        print(f"  entries:        {report['entries_verified']} verified, "
              f"{report['entries_corrupt']} corrupt (quarantined), "
              f"{report['entries_version_skew']} version-skewed, "
              f"{report['entries_unreadable']} unreadable")
        print(f"  stream ckpts:   {report['stream_checkpoints_verified']} "
              f"verified, {report['stream_checkpoints_quarantined']} "
              f"quarantined")
        print(f"  fleet entries:  {report['fleet_entries_verified']} "
              f"verified, {report['fleet_entries_quarantined']} "
              f"quarantined")
        print(f"  orphans:        {report['orphans_swept']} swept, "
              f"{report['tmp_removed']} temp file(s) removed")
        if args.purge_quarantine:
            print(f"  quarantine:     purged {report['quarantine_purged']} file(s)")
        else:
            print(f"  quarantine:     {report['quarantine_files']} file(s) "
                  f"({report['quarantine_bytes']} bytes)")
        print(f"  health:         read_errors={report['read_errors']} "
              f"write_errors={report['write_errors']} "
              f"retries={report['retries']} "
              f"quarantined={report['quarantined']}")
        print(f"  degraded:       {degraded}")
        return 0 if not (report["entries_corrupt"] or report["degraded"]) else 1
    print(f"unknown cache action {action!r}; use 'info', 'clear' or 'doctor'",
          file=sys.stderr)
    return 2


def _run_trace(args: argparse.Namespace) -> int:
    """Pretty-print the span tree stored in a run manifest."""
    selector = args.action or "latest"
    run_dir = obs_manifest.find_run(selector)
    if run_dir is None:
        print(
            f"no recorded run matches {selector!r} under "
            f"{obs_manifest.resolve_runs_dir() or '(manifests disabled)'}",
            file=sys.stderr,
        )
        return 1
    manifest = obs_manifest.load_manifest(run_dir)
    print(f"run:         {run_dir.name}")
    print(f"command:     {manifest.get('command')}")
    print(f"fingerprint: {manifest.get('fingerprint')}")
    print(f"seed:        {manifest.get('seed')}")
    coverage = manifest.get("span_coverage")
    if coverage is not None:
        print(f"coverage:    {coverage:.1%} of root wall time in child spans")
    span = manifest.get("span")
    if span is None:
        print("(no span tree recorded)")
        return 0
    print()
    print(obs_render.render_span_tree(span))
    if args.profile:
        print()
        print(obs_render.render_hotspots(span))
    return 0


def _run_validate(args: argparse.Namespace) -> int:
    """Run the statistical generator checks on a built scenario."""
    from repro.api import run_scenario
    from repro.experiments.common import render_table
    from repro.sim.validation import validate_botnet

    scenario = run_scenario(_scenario_config(args))
    results = validate_botnet(scenario.botnet)
    print("Statistical validation of the botnet generator:")
    print()
    print(render_table([r.as_dict() for r in results]))
    return 0 if all(r.passed for r in results) else 1


def _run_profile(args: argparse.Namespace) -> int:
    """Print the address-structure profile of report files."""
    from repro.experiments.common import render_table
    from repro.io.reports import read_report
    from repro.ipspace.structure import profile_addresses

    if not args.reports:
        print("profile requires --reports FILE [FILE ...]", file=sys.stderr)
        return 2
    for path in args.reports:
        report = read_report(path)
        profile = profile_addresses(report.addresses)
        print(f"{path}: {len(report)} addresses")
        print(render_table(profile.rows()))
        growth = profile.unsaturated_growth()
        if growth is not None:
            print(f"unsaturated per-bit growth: {growth:.3f} "
                  f"(2.0 = uniform); looks uniform: {profile.looks_uniform()}")
        print()
    return 0


def _run_score(args: argparse.Namespace) -> int:
    """Score user-provided report files into a blocklist.

    Routed through the predictor registry: the files become the training
    feeds of the ``uncleanliness`` model, whose ranking at the requested
    prefix yields the blocklist (numerically identical to scoring with
    :class:`repro.core.uncleanliness.UncleanlinessScorer` directly).
    """
    from repro.api import make_predictor
    from repro.io.reports import read_report

    if not args.reports:
        print("score requires --reports FILE [FILE ...]", file=sys.stderr)
        return 2
    reports = {}
    weights = {}
    for path in args.reports:
        report = read_report(path)
        key = report.data_class if report.data_class != "n/a" else report.tag
        if key in reports:
            reports[key] = reports[key] | report
        else:
            reports[key] = report
            weights[key] = 1.0
    predictor = make_predictor("uncleanliness", weights=weights)
    ranking = predictor.fit(reports).score_blocks(args.prefix)
    blocks = ranking.blocklist(args.threshold)
    lines = [str(block) for block in blocks]
    if args.output:
        with open(args.output, "w") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))
        print(
            f"scored {len(ranking)} /{args.prefix} blocks from "
            f"{len(reports)} report class(es); wrote {len(blocks)} "
            f"to {args.output} [{predictor.name} {predictor.fingerprint()[:12]}]"
        )
    else:
        for line in lines:
            print(line)
    return 0


def _run_compare(args: argparse.Namespace, extra: dict) -> int:
    """Run rival predictors head-to-head over one scenario."""
    from repro import api
    from repro.experiments.common import render_table

    run = api.run_scenario(_scenario_config(args))
    train = list(args.train) if args.train else "bot-test"
    try:
        result = api.compare(
            run,
            args.predictors,
            train=train,
            present=args.present,
            subsets=args.subsets,
            workers=args.workers,
        )
    except (KeyError, ValueError) as err:
        print(f"compare failed: {err}", file=sys.stderr)
        return 2
    extra["compare"] = result.manifest()

    train_label = "+".join(train) if isinstance(train, list) else train
    print(
        f"Predictor comparison: {len(result.evaluations)} model(s) "
        f"fit on '{train_label}', predicting '{result.present_tag}' "
        f"({result.subsets} Monte-Carlo subsets, shared null)"
    )
    print()
    print("Models:")
    print(render_table([
        {
            "predictor": ev.predictor_name,
            "fingerprint": ev.predictor_fingerprint[:12],
            "training_addrs": ev.training_cardinality,
            "params": ", ".join(
                f"{key}={value}" for key, value in sorted(ev.params.items())
            ) or "-",
        }
        for ev in result.evaluations
    ]))

    print()
    print("Head-to-head (§5 predictive range, §6 rates at /24, ROC-AUC):")
    print(render_table(result.summary_table()))

    for ev in result.evaluations:
        if ev.blocking is None:
            continue
        print()
        print(f"Table 3 — {ev.predictor_name}:")
        print(render_table(ev.blocking.table3()))

    print()
    ranking = [
        f"{name} ({auc:.4f})" if auc is not None else f"{name} (no ROC)"
        for name, auc in result.auc_ranking()
    ]
    print("AUC ranking: " + " > ".join(ranking))
    return 0


def _run_ingest(args: argparse.Namespace) -> int:
    """Fold scenario day-batches into the streaming service."""
    from repro import api
    from repro.stream import day_batches

    config = _scenario_config(args)
    service = api.stream_service(
        config, prefix_len=args.prefix, threshold=args.threshold, warm=False
    )
    window = service.config.window
    if service.cursor >= window.end_day:
        print(f"stream already at head (day {service.cursor}); "
              f"nothing to ingest")
        return 0
    scenario = api.run_scenario(config).scenario
    provided = None
    if service.state.days_ingested == 0:
        provided = {tag: scenario.report(tag) for tag in api.STREAM_FEED_TAGS}
    folded = 0
    for batch in day_batches(
        scenario.october_traffic, provided, from_day=service.cursor + 1
    ):
        if args.days is not None and folded >= args.days:
            break
        delta = service.ingest(batch)
        folded += 1
        fresh = sum(delta.fresh.values())
        print(f"day {delta.day}: {delta.flows} flows, +{fresh} fresh "
              f"address(es), -{delta.retracted_spam} retracted, "
              f"{delta.blocks} scored blocks, "
              f"{delta.blocklist_size} blocklisted")
    state = "at head" if service.cursor >= window.end_day else "behind head"
    print(f"ingested {folded} day(s); cursor {service.cursor} of "
          f"{window.end_day} ({state}); checkpoints under "
          f"{service.fingerprint[:12]}...")
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Answer score/blocked queries over stdin from the warm index."""
    from repro import api

    config = _scenario_config(args)
    service = api.stream_service(
        config, prefix_len=args.prefix, threshold=args.threshold
    )
    info = service.info()
    print(f"serving window {info['window']} at day {info['cursor']}: "
          f"{info['blocks']} scored /{args.prefix} blocks, "
          f"{info['blocklist']} blocklisted")
    print("commands: score <ip> | blocked <ip> | top [n] | info | quit")
    import time

    latencies: List[float] = []
    status = 0
    for line in sys.stdin:
        parts = line.split()
        if not parts:
            continue
        command, operands = parts[0].lower(), parts[1:]
        try:
            if command in ("quit", "exit"):
                break
            elif command == "score" and len(operands) == 1:
                began = time.perf_counter()
                value = service.score(operands[0])
                latencies.append(time.perf_counter() - began)
                print(f"{operands[0]} {value:.4f}")
            elif command == "blocked" and len(operands) == 1:
                began = time.perf_counter()
                verdict = service.is_blocked(operands[0])
                latencies.append(time.perf_counter() - began)
                print(f"{operands[0]} {'blocked' if verdict else 'allowed'}")
            elif command == "top":
                count = int(operands[0]) if operands else 10
                for row in service.top_blocks(count):
                    evidence = " ".join(
                        f"{cls}={row[cls]}"
                        for cls in row if cls not in ("block", "score")
                    )
                    print(f"{row['block']} score={row['score']} {evidence}")
            elif command == "info":
                for key, value in service.info().items():
                    print(f"  {key}: {value}")
            else:
                print(f"? unknown command: {line.strip()}", file=sys.stderr)
                status = 2
        except (ValueError, TypeError) as err:
            print(f"? {err}", file=sys.stderr)
            status = 2
    if latencies:
        p50, p99 = np.percentile(latencies, [50, 99])
        print(f"served {len(latencies)} lookup(s): "
              f"p50 {p50 * 1e3:.3f} ms, p99 {p99 * 1e3:.3f} ms")
    return status


def _fleet_config(args: argparse.Namespace):
    from repro.fleet import heterogeneous_fleet

    seed = args.seed if args.seed is not None else ScenarioConfig().seed
    return heterogeneous_fleet(
        args.shards, seed=seed, small=args.small, workers=args.workers,
        pack=args.pack, vantage=args.vantage,
    )


def _run_fleet(args: argparse.Namespace, extra: dict) -> int:
    """Run the sharded fleet; print availability plus the cross-network
    Table 2/Table 3 comparison (clearinghouse view vs local views)."""
    from repro import api
    from repro.core.blocking import blocking_test
    from repro.experiments.common import render_table
    from repro.fleet import FleetFailure, QuorumError

    config = _fleet_config(args)
    try:
        result = api.run_fleet(config)
    except FleetFailure as err:
        print(f"fleet failed: {err}", file=sys.stderr)
        return 1
    extra["fleet"] = result.manifest()
    ch = result.clearinghouse

    print(
        f"Fleet of {len(config.shards)} network(s) "
        f"[{result.fingerprint[:12]}...]: {len(ch.available)} available, "
        f"{len(ch.stale)} stale, {len(result.quarantined)} quarantined"
        + ("  ** DEGRADED **" if ch.degraded else "")
    )
    print()
    print("Shard availability:")
    outcomes = {outcome.name: outcome for outcome in result.outcomes}
    rows = ch.availability()
    for row in rows:
        outcome = outcomes.get(row["network"])
        row["attempts"] = outcome.attempts if outcome else "-"
        row["resumed"] = (
            "yes" if outcome and outcome.from_checkpoint else "no"
        )
    print(render_table(rows))

    pooled = ch.pooled_scores(allow_partial=True)
    pooled_list = len(pooled.blocklist(args.threshold))
    print()
    print(
        f"Table 2 view — /{args.prefix} unclean blocks, local vs "
        f"clearinghouse (threshold {args.threshold}):"
    )
    table2_rows = []
    for feed in ch.available:
        local = ch.local_scores(feed.name)
        gained = int(np.setdiff1d(pooled.blocks, local.blocks).size)
        table2_rows.append(
            {
                "network": feed.name,
                "local_blocks": len(local.scores),
                "local_blocklist": len(local.blocklist(args.threshold)),
                "pooled_blocks": len(pooled.scores),
                "pooled_blocklist": pooled_list,
                "gained_blocks": gained,
            }
        )
    print(render_table(table2_rows))

    print()
    print(
        "Table 3 view — §6 blocking at /24, local bot-test vs the other "
        "networks' pooled bot-test:"
    )
    table3_rows = []
    for feed in ch.available:
        shard = config.shard(feed.name)
        partition = api.run_scenario(shard.config).partition
        local_row = blocking_test(
            partition, feed.reports["bot-test"], prefixes=(24,)
        ).row(24)
        entry = {
            "network": feed.name,
            "local_tp": local_row.true_positives,
            "local_fp": local_row.false_positives,
        }
        try:
            cross = ch.pooled_report("bot-test", exclude=(feed.name,))
        except QuorumError:
            entry["cross_tp"] = entry["cross_fp"] = "-"
        else:
            cross_row = blocking_test(partition, cross, prefixes=(24,)).row(24)
            entry["cross_tp"] = cross_row.true_positives
            entry["cross_fp"] = cross_row.false_positives
        table3_rows.append(entry)
    print(render_table(table3_rows))
    if ch.degraded:
        print()
        print(
            "degraded clearinghouse: "
            f"stale={list(ch.stale)} quarantined={list(result.quarantined)}; "
            "re-run to retry quarantined shards (completed shards resume "
            "from checkpoints)"
        )
    return 0


def _scenario_config(args: argparse.Namespace) -> ScenarioConfig:
    if args.small:
        config = ScenarioConfig.small()
    else:
        config = ScenarioConfig()
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    if args.pack is not None:
        from repro.scenarios import get_pack

        config = get_pack(args.pack).build(config)
    return config


def _run_packs(args: argparse.Namespace) -> int:
    """List the registered scenario packs."""
    from repro.experiments.common import render_table
    from repro.scenarios import list_packs

    print("Scenario packs (run any verb with --pack NAME):")
    print()
    print(render_table([
        {"pack": pack.name, "description": pack.description}
        for pack in list_packs()
    ]))
    print()
    print("example: uncleanliness table2 --pack attack-wave --small")
    return 0


def _run_one(name: str, scenario, args: argparse.Namespace) -> str:
    module, takes_subsets = _SCENARIO_EXPERIMENTS[name]
    with obs_trace.span(f"experiment.{name}", subsets=args.subsets):
        if takes_subsets:
            rng = np.random.default_rng(scenario.config.seed ^ 0xC1D)
            result = module.run(
                scenario, rng, subsets=args.subsets, workers=args.workers
            )
        else:
            result = module.run(scenario)
        return module.format_result(result)


def _figure1_config(args: argparse.Namespace):
    config = figure1.Figure1Config()
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    return config


def _manifest_identity(args: argparse.Namespace):
    """The ``(fingerprint, seed)`` identifying one CLI run's manifest.

    Scenario verbs use the full scenario-config fingerprint (what the
    artifact store keys on); figure1 fingerprints its own config; the
    report-file verbs fingerprint their canonicalised arguments.
    """
    from repro.engine.fingerprint import fingerprint

    if args.experiment == "figure1":
        config = _figure1_config(args)
        return fingerprint(config), config.seed
    if args.experiment in ("score", "profile"):
        identity = {
            "experiment": args.experiment,
            "reports": sorted(args.reports or ()),
            "threshold": args.threshold,
            "prefix": args.prefix,
        }
        return fingerprint(identity), None
    if args.experiment == "ablation":
        return fingerprint({"experiment": "ablation", "seed": args.seed}), args.seed
    if args.experiment == "fleet":
        config = _fleet_config(args)
        return config.fingerprint(), config.shards[0].config.seed
    config = _scenario_config(args)
    return config.fingerprint(), config.seed


def _dispatch(args: argparse.Namespace, extra: dict) -> int:
    if args.experiment == "score":
        return _run_score(args)

    if args.experiment == "compare":
        return _run_compare(args, extra)

    if args.experiment == "fleet":
        return _run_fleet(args, extra)

    if args.experiment == "validate":
        return _run_validate(args)

    if args.experiment == "profile":
        return _run_profile(args)

    if args.experiment == "ingest":
        return _run_ingest(args)

    if args.experiment == "serve":
        return _run_serve(args)

    if args.experiment == "figure1":
        with obs_trace.span("experiment.figure1"):
            output = figure1.format_result(figure1.run(_figure1_config(args)))
        with obs_trace.span("render"):
            print(output)
        return 0

    if args.experiment == "ablation":
        sections = (
            ("Ablation: uncleanliness tail vs. spatial clustering",
             ablation.uncleanliness_tail_ablation),
            ("Ablation: bot-report age vs. temporal prediction",
             ablation.report_age_ablation),
            ("Ablation: naive vs. empirical control estimation",
             ablation.estimator_ablation),
            ("Ablation: predictor quality across the prefix band",
             ablation.prefix_band_ablation),
            ("Ablation: blacklist-aware attackers vs. prediction",
             ablation.evasion_ablation),
            ("Ablation: homogeneous blocks vs network-aware clustering",
             ablation.clustering_ablation),
            ("Ablation: uncleanliness-field stability (temporal mechanism)",
             ablation.field_stability_ablation),
        )
        for index, (title, section) in enumerate(sections):
            if index:
                print()
            with obs_trace.span(f"experiment.ablation.{section.__name__}"):
                rows = section()
            print(ablation.format_rows(title, rows))
        return 0

    from repro.api import run_scenario

    with obs_trace.span("scenario.init"):
        scenario = run_scenario(_scenario_config(args)).scenario
    names = _ALL if args.experiment == "all" else (args.experiment,)
    outputs = [_run_one(name, scenario, args) for name in names]
    with obs_trace.span("render"):
        print("\n\n".join(outputs))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    # Meta verbs inspect state rather than produce results; they run
    # untraced and leave no manifest.
    if args.experiment == "cache":
        return _run_cache(args)
    if args.experiment == "trace":
        return _run_trace(args)
    if args.experiment == "packs":
        return _run_packs(args)

    if args.pack is not None:
        from repro.scenarios import get_pack

        try:
            get_pack(args.pack)
        except KeyError as err:
            print(err.args[0], file=sys.stderr)
            return 2

    obs_metrics.reset()
    tracer = obs_trace.tracer()
    was_enabled = tracer.enabled
    tracer.enabled = True
    root = None
    extra: dict = {}
    try:
        with tracer.span(f"cli.{args.experiment}") as root:
            code = _dispatch(args, extra)
    finally:
        tracer.enabled = was_enabled
        if root is not None and root in tracer.roots:
            tracer.roots.remove(root)

    span_dict = root.to_dict()
    fingerprint, seed = _manifest_identity(args)
    manifest_path = obs_manifest.write_manifest(
        command=args.experiment,
        fingerprint=fingerprint,
        seed=seed,
        argv=list(argv) if argv is not None else sys.argv[1:],
        span=span_dict,
        exit_code=code,
        extra=extra or None,
    )
    if manifest_path is not None:
        print(f"[manifest: {manifest_path}]", file=sys.stderr)
    if args.profile:
        print(obs_render.render_hotspots(span_dict), file=sys.stderr)
    return code


if __name__ == "__main__":
    sys.exit(main())
