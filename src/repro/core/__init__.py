"""The paper's primary contribution: uncleanliness analysis.

Reports (:mod:`~repro.core.report`), report-level CIDR operations
(:mod:`~repro.core.cidr`), the spatial test (:mod:`~repro.core.density`),
the temporal test (:mod:`~repro.core.prediction`), the §6 blocking
experiment (:mod:`~repro.core.blocking`), the §7 multidimensional metric
(:mod:`~repro.core.uncleanliness`), and the end-to-end scenario builder
(:mod:`~repro.core.scenario`).
"""

from repro.core.blocklist import Blocklist, BlocklistEntry
from repro.core.blocking import (
    BLOCKING_PREFIXES,
    BlockingResult,
    BlockingRow,
    CandidatePartition,
    CoveredCountStatistic,
    blocking_test,
    blocking_test_blocks,
    control_blocking_distribution,
    partition_candidates,
)
from repro.core.cidr import (
    PREFIX_RANGE,
    block_count,
    block_counts,
    cidr_blocks,
    cidr_set,
    intersection_count,
    intersection_counts,
    members_of,
)
from repro.core.density import (
    BlockCountStatistic,
    DensityResult,
    density_curve,
    density_test,
)
from repro.core.prediction import (
    BETTER_PREDICTOR_LEVEL,
    IntersectionStatistic,
    PredictionResult,
    control_intersection_distribution,
    prediction_test,
    prediction_test_blocks,
)
from repro.core.report import DataClass, Report, ReportType
from repro.core.roc import ROCCurve, auc, partition_roc, roc_curve
from repro.core.sampling import empirical_subsets, monte_carlo, naive_sample
from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.core.stats import BoxplotSummary, exceedance_fraction, summarize
from repro.core.tracking import (
    ListCoverageStatistic,
    TrackerConfig,
    UncleanlinessTracker,
)
from repro.core.trials import TrialEnsemble, TrialStatistic, is_batched
from repro.core.uncleanliness import (
    BlockScores,
    UncleanlinessScorer,
    block_jaccard,
)

__all__ = [
    "Report",
    "ReportType",
    "DataClass",
    "PREFIX_RANGE",
    "cidr_set",
    "cidr_blocks",
    "block_count",
    "block_counts",
    "intersection_count",
    "intersection_counts",
    "members_of",
    "DensityResult",
    "BlockCountStatistic",
    "density_curve",
    "density_test",
    "PredictionResult",
    "IntersectionStatistic",
    "prediction_test",
    "prediction_test_blocks",
    "control_intersection_distribution",
    "BETTER_PREDICTOR_LEVEL",
    "BLOCKING_PREFIXES",
    "BlockingRow",
    "BlockingResult",
    "CandidatePartition",
    "CoveredCountStatistic",
    "partition_candidates",
    "blocking_test",
    "blocking_test_blocks",
    "control_blocking_distribution",
    "UncleanlinessScorer",
    "BlockScores",
    "block_jaccard",
    "naive_sample",
    "empirical_subsets",
    "monte_carlo",
    "TrialEnsemble",
    "TrialStatistic",
    "is_batched",
    "BoxplotSummary",
    "summarize",
    "exceedance_fraction",
    "PaperScenario",
    "ScenarioConfig",
    "Blocklist",
    "BlocklistEntry",
    "ROCCurve",
    "roc_curve",
    "auc",
    "partition_roc",
    "TrackerConfig",
    "UncleanlinessTracker",
    "ListCoverageStatistic",
]
