"""The §6 virtual blocking experiment.

Evaluates whether blocking the CIDR blocks of a months-old bot report
would have been *effective*: how much hostile vs. legitimate traffic the
blocks would have caught during a later observation window.

Pipeline (following §6.1):

1. **Candidate extraction** — every external address observed in border
   traffic that (a) shares a /24 with an address of the old bot report
   and (b) generated at least one TCP record during the window.
2. **Partition** — candidates split into three reports:

   * ``hostile``: also present in the period's unclean reports (the union
     of bot, phish, scan and spam);
   * ``unknown``: not reported, and *never* exchanged payload (no TCP
     flow with >=36 bytes of payload and an ACK);
   * ``innocent``: not reported, but did exchange payload.

3. **Scoring** — for each prefix length n in [24, 32], count candidates
   inside :math:`C_n(R_{bot-test})`: ``pop(n)`` over hostile+innocent
   (Eq. 7), ``TP(n)`` over hostile (Eq. 8), ``FP(n)`` over innocent
   (Eq. 9).  Unknown addresses are tallied but never scored (§6.1).

The result reproduces Table 3 and the ROC view of §6.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import DataClass, Report, ReportType
from repro.core.stats import BoxplotSummary, summarize
# Re-exported from its new home (repro.core.trials) for existing
# importers; the statistic itself is predictor-generic and lives with
# the trial-matrix machinery.
from repro.core.trials import CoveredCountStatistic
from repro.flows.log import FlowLog
from repro.flows.record import Protocol
from repro.ipspace import cidr as _lowcidr
from repro.ipspace.kernels import member_counts_2d

__all__ = [
    "BLOCKING_PREFIXES",
    "CandidatePartition",
    "BlockingRow",
    "BlockingResult",
    "CoveredCountStatistic",
    "partition_candidates",
    "blocking_test",
    "blocking_test_blocks",
    "control_blocking_distribution",
]

#: §6 examines blocking at prefix lengths 24..32: "24 bits is the minimum
#: block size at which R_bot-test is an unambiguously better predictor".
BLOCKING_PREFIXES = tuple(range(24, 33))


@dataclass(frozen=True)
class CandidatePartition:
    """The candidate set and its hostile/unknown/innocent split (Table 2)."""

    candidate: Report
    hostile: Report
    unknown: Report
    innocent: Report

    def __post_init__(self) -> None:
        total = len(self.hostile) + len(self.unknown) + len(self.innocent)
        if total != len(self.candidate):
            raise ValueError(
                "partition does not cover the candidate set: "
                f"{len(self.hostile)}+{len(self.unknown)}+{len(self.innocent)} "
                f"!= {len(self.candidate)}"
            )

    def table2_rows(self) -> List[dict]:
        """Inventory rows in the shape of the paper's Table 2."""
        return [
            report.summary_row()
            for report in (self.candidate, self.hostile, self.unknown, self.innocent)
        ]


@dataclass(frozen=True)
class BlockingRow:
    """One row of Table 3."""

    prefix: int
    true_positives: int
    false_positives: int
    population: int
    unknown: int

    @property
    def tp_rate(self) -> float:
        """TP / scored population (the paper's ~90% at /24)."""
        return self.true_positives / self.population if self.population else 0.0

    @property
    def fp_rate(self) -> float:
        return self.false_positives / self.population if self.population else 0.0

    @property
    def tp_rate_assuming_unknown_hostile(self) -> float:
        """TP rate if unknowns are counted hostile (the paper's 97%)."""
        total = self.population + self.unknown
        if not total:
            return 0.0
        return (self.true_positives + self.unknown) / total

    def as_dict(self) -> dict:
        return {
            "n": self.prefix,
            "TP(n)": self.true_positives,
            "FP(n)": self.false_positives,
            "pop(n)": self.population,
            "unknown": self.unknown,
        }


@dataclass(frozen=True)
class BlockingResult:
    """Table 3 plus derived ROC quantities."""

    rows: tuple

    def row(self, prefix: int) -> BlockingRow:
        for r in self.rows:
            if r.prefix == prefix:
                return r
        raise KeyError(f"no blocking row for prefix {prefix}")

    def table3(self) -> List[dict]:
        return [r.as_dict() for r in self.rows]

    def roc_points(self) -> List[dict]:
        """Per-prefix operating points (§6.2's ROC analysis)."""
        return [
            {
                "n": r.prefix,
                "tp_rate": round(r.tp_rate, 4),
                "fp_rate": round(r.fp_rate, 4),
                "tp_rate_unknown_hostile": round(
                    r.tp_rate_assuming_unknown_hostile, 4
                ),
            }
            for r in self.rows
        ]

    def monotone_decreasing(self) -> bool:
        """All four columns shrink (weakly) as the prefix lengthens."""
        for earlier, later in zip(self.rows, self.rows[1:]):
            if later.prefix <= earlier.prefix:
                continue
            if (
                later.true_positives > earlier.true_positives
                or later.false_positives > earlier.false_positives
                or later.population > earlier.population
                or later.unknown > earlier.unknown
            ):
                return False
        return True


def partition_candidates(
    flows: FlowLog,
    bot_test: Report,
    unclean: Report,
    candidate_prefix: int = 24,
    period=None,
) -> CandidatePartition:
    """Extract and partition the candidate set from a border capture.

    ``flows`` is the window's border traffic, ``bot_test`` the old bot
    report whose /24s are under consideration, and ``unclean`` the union
    of the window's unclean reports.  ``period`` (calendar dates of the
    observation window) defaults to the unclean union's period — the
    candidates are observed during the traffic window, not at the old
    report's date.
    """
    if period is None:
        period = unclean.period
    tcp = flows.select(flows.protocol == Protocol.TCP)
    test_blocks = rcidr.cidr_set(bot_test, candidate_prefix)

    sources = tcp.unique_sources()
    in_blocks = _lowcidr.contains(sources, test_blocks, candidate_prefix)
    candidate_addrs = sources[in_blocks]
    candidate = Report(
        tag="candidate",
        addresses=candidate_addrs,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.NONE,
        period=period,
    )

    hostile = candidate.intersection(unclean, tag="hostile")

    payload_sources = tcp.payload_bearing_sources()
    rest = candidate.difference(hostile, tag="rest")
    had_payload = np.isin(rest.addresses, payload_sources)
    unknown = rest.filtered(~had_payload, tag="unknown")
    innocent = rest.filtered(had_payload, tag="innocent")
    return CandidatePartition(
        candidate=candidate, hostile=hostile, unknown=unknown, innocent=innocent
    )


def blocking_test_blocks(
    partition: CandidatePartition,
    blocks_by_prefix: Sequence[np.ndarray],
    prefixes: Sequence[int] = BLOCKING_PREFIXES,
) -> BlockingResult:
    """Score a virtual block of arbitrary per-prefix block sets.

    The predictor-generic half of the §6 experiment:
    ``blocks_by_prefix[i]`` is any model's sorted blocked set at
    ``prefixes[i]`` (the paper's choice is ``C_n(R_{bot-test})``, via
    :func:`blocking_test`).  Implements Eqs. 7-9: at each n, count the
    hostile (TP), innocent (FP) and combined (pop) candidates falling
    inside the blocked blocks; unknowns are tallied separately and never
    scored.  All prefixes are scored in one batched kernel pass per
    candidate class (:func:`repro.ipspace.kernels.member_counts_2d`).
    """
    prefixes = tuple(prefixes)
    blocks_by_prefix = list(blocks_by_prefix)
    if len(blocks_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(blocks_by_prefix)} block sets for {len(prefixes)} prefixes"
        )

    def scores(report: Report) -> np.ndarray:
        return member_counts_2d(
            report.addresses[np.newaxis, :], blocks_by_prefix, prefixes
        )[0]

    tp = scores(partition.hostile)
    fp = scores(partition.innocent)
    unknown = scores(partition.unknown)
    rows = [
        BlockingRow(
            prefix=n,
            true_positives=int(tp[column]),
            false_positives=int(fp[column]),
            population=int(tp[column] + fp[column]),
            unknown=int(unknown[column]),
        )
        for column, n in enumerate(prefixes)
    ]
    return BlockingResult(rows=tuple(rows))


def blocking_test(
    partition: CandidatePartition,
    bot_test: Report,
    prefixes: Sequence[int] = BLOCKING_PREFIXES,
) -> BlockingResult:
    """Score the virtual block of :math:`C_n(R_{bot-test})` per prefix.

    The paper's §6 configuration of :func:`blocking_test_blocks`: the
    blocked sets are the old bot report's own CIDR sets.
    """
    prefixes = tuple(sorted(prefixes))
    blocks_by_prefix = [rcidr.cidr_set(bot_test, n) for n in prefixes]
    return blocking_test_blocks(partition, blocks_by_prefix, prefixes)


def control_blocking_distribution(
    partition: CandidatePartition,
    bot_test: Report,
    control: Report,
    rng: np.random.Generator,
    prefixes: Sequence[int] = BLOCKING_PREFIXES,
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> Dict[str, Dict[int, BoxplotSummary]]:
    """The §6 null model: would a *random* report block as much?

    Draws ``subsets`` equal-cardinality random subsets of ``control``
    (the same Monte-Carlo machinery as §4/§5) and scores each subset's
    virtual block against the partition's hostile and innocent
    candidates.  Returns ``{"hostile"|"innocent": {n: BoxplotSummary}}``
    — the distribution the observed TP(n)/FP(n) of
    :func:`blocking_test` should tower over (hostile) or resemble
    (innocent) if the old bot report's blocks carry real signal.
    """
    size = len(bot_test)
    out: Dict[str, Dict[int, BoxplotSummary]] = {}
    prefixes = tuple(sorted(prefixes))
    for name, target in (
        ("hostile", partition.hostile),
        ("innocent", partition.innocent),
    ):
        matrix = monte_carlo_covered_counts(
            target, control, size, subsets, rng, prefixes, workers=workers
        )
        out[name] = {
            n: summarize(matrix[:, column])
            for column, n in enumerate(prefixes)
        }
    return out


def monte_carlo_covered_counts(
    target: Report,
    control: Report,
    size: int,
    subsets: int,
    rng: np.random.Generator,
    prefixes: Sequence[int],
    workers: Optional[int] = None,
) -> np.ndarray:
    """Monte-Carlo matrix of covered-address counts (one helper so the
    two §6 null distributions share code with any future targets)."""
    from repro.core.sampling import monte_carlo

    return monte_carlo(
        control,
        size,
        subsets,
        rng,
        statistic=CoveredCountStatistic.for_report(target, prefixes),
        workers=workers,
    )
