"""An operational CIDR blocklist with TTLs and evidence decay.

The paper evaluates a *virtual* block of :math:`C_n(R_{bot-test})` over a
fixed fortnight (§6).  Running that defence for real raises the questions
every blocklist operator (Spamhaus ZEN, Bleeding Snort — the paper's §2
examples) has to answer: how long does an entry stay listed, what happens
when the same network is re-reported, and how does stale evidence age
out?  :class:`Blocklist` packages those mechanics on top of the library's
reports and scores:

* entries are CIDR blocks with an insertion day, a time-to-live, and a
  score;
* re-reporting a listed block refreshes its TTL and raises its score
  (evidence accumulates via the same noisy-OR as
  :class:`~repro.core.uncleanliness.UncleanlinessScorer`);
* scores decay exponentially between sightings, so a network that
  cleans up ages off the list — the paper's temporal uncleanliness says
  this decay should be *slow* (unclean networks stay unclean for months).

All query methods take the current simulation day, so the structure works
directly against :mod:`repro.sim.timeline` day indices.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import Report
from repro.core.uncleanliness import BlockScores
from repro.ipspace import cidr as lowcidr
from repro.ipspace.addr import AddressLike, as_int
from repro.ipspace.cidr import CIDRBlock

__all__ = ["BlocklistEntry", "Blocklist"]


@dataclass
class BlocklistEntry:
    """One listed CIDR block."""

    block: CIDRBlock
    added_day: int
    last_seen_day: int
    expiry_day: int
    score: float
    reason: str = ""

    def active(self, day: int) -> bool:
        """Whether the entry is still in force on ``day``."""
        return day < self.expiry_day

    def decayed_score(self, day: int, half_life_days: float) -> float:
        """Score decayed by the time since the block was last re-reported."""
        age = max(0, day - self.last_seen_day)
        if half_life_days <= 0:
            return self.score
        return self.score * 0.5 ** (age / half_life_days)


class Blocklist:
    """A mutable, TTL-managed set of blocked CIDR blocks.

    Parameters
    ----------
    prefix_len:
        Granularity of the list; all entries share it (the paper's §6
        result says 24 bits is the operative choice).
    default_ttl_days:
        Lifetime granted on insertion and refresh.
    score_half_life_days:
        Half-life of the evidence decay.  The paper's temporal
        uncleanliness (months-long persistence) argues for a long one.
    """

    def __init__(
        self,
        prefix_len: int = 24,
        default_ttl_days: int = 30,
        score_half_life_days: float = 60.0,
    ) -> None:
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        if default_ttl_days <= 0:
            raise ValueError("default_ttl_days must be positive")
        self.prefix_len = prefix_len
        self.default_ttl_days = default_ttl_days
        self.score_half_life_days = score_half_life_days
        self._entries: Dict[int, BlocklistEntry] = {}

    # -- mutation ----------------------------------------------------------

    def add_block(
        self,
        block: CIDRBlock,
        day: int,
        score: float = 1.0,
        ttl_days: Optional[int] = None,
        reason: str = "",
    ) -> BlocklistEntry:
        """List (or refresh) one block.

        Re-listing refreshes the TTL and accumulates score via noisy-OR:
        ``new = 1 - (1 - old_decayed) * (1 - score)``.
        """
        if block.prefix_len != self.prefix_len:
            raise ValueError(
                f"entry prefix /{block.prefix_len} does not match "
                f"blocklist granularity /{self.prefix_len}"
            )
        if not 0 <= score <= 1:
            raise ValueError(f"score must be in [0, 1]: {score}")
        ttl = self.default_ttl_days if ttl_days is None else ttl_days
        existing = self._entries.get(block.network)
        if existing is not None and existing.active(day):
            decayed = existing.decayed_score(day, self.score_half_life_days)
            existing.score = 1.0 - (1.0 - decayed) * (1.0 - score)
            existing.last_seen_day = day
            existing.expiry_day = max(existing.expiry_day, day + ttl)
            if reason:
                existing.reason = reason
            return existing
        entry = BlocklistEntry(
            block=block,
            added_day=day,
            last_seen_day=day,
            expiry_day=day + ttl,
            score=score,
            reason=reason,
        )
        self._entries[block.network] = entry
        return entry

    def add_report(
        self,
        report: Report,
        day: int,
        score: float = 1.0,
        ttl_days: Optional[int] = None,
    ) -> int:
        """List every block the report's addresses touch; returns how many."""
        networks = rcidr.cidr_set(report, self.prefix_len)
        for network in networks:
            self.add_block(
                CIDRBlock(int(network), self.prefix_len),
                day,
                score=score,
                ttl_days=ttl_days,
                reason=f"report:{report.tag}",
            )
        return int(networks.size)

    def add_scores(
        self,
        scores: BlockScores,
        day: int,
        threshold: float,
        ttl_days: Optional[int] = None,
    ) -> int:
        """List every scored block at or above ``threshold``."""
        if scores.prefix_len != self.prefix_len:
            raise ValueError(
                f"scores at /{scores.prefix_len} do not match "
                f"blocklist granularity /{self.prefix_len}"
            )
        count = 0
        for network, score in zip(scores.blocks, scores.scores):
            if score >= threshold:
                self.add_block(
                    CIDRBlock(int(network), self.prefix_len),
                    day,
                    score=float(score),
                    ttl_days=ttl_days,
                    reason="scored",
                )
                count += 1
        return count

    def prune(self, day: int) -> int:
        """Drop expired entries; returns how many were removed."""
        expired = [net for net, e in self._entries.items() if not e.active(day)]
        for net in expired:
            del self._entries[net]
        return len(expired)

    def remove(self, block: CIDRBlock) -> bool:
        """Delist one block (e.g. a verified false positive)."""
        return self._entries.pop(block.network, None) is not None

    # -- queries ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self, day: Optional[int] = None) -> List[BlocklistEntry]:
        """All entries, or only those active on ``day``."""
        values = list(self._entries.values())
        if day is not None:
            values = [e for e in values if e.active(day)]
        return sorted(values, key=lambda e: e.block)

    def active_networks(self, day: int) -> np.ndarray:
        """Sorted masked-network array of blocks in force on ``day``."""
        nets = [e.block.network for e in self._entries.values() if e.active(day)]
        return np.asarray(sorted(nets), dtype=np.uint32)

    def is_blocked(self, address: AddressLike, day: int) -> bool:
        """Whether traffic from ``address`` would be dropped on ``day``."""
        entry = self._entries.get(
            as_int(address) & lowcidr.prefix_mask(self.prefix_len)
            if self.prefix_len
            else 0
        )
        return entry is not None and entry.active(day)

    def blocked_mask(self, addresses: np.ndarray, day: int) -> np.ndarray:
        """Vectorised :meth:`is_blocked` over an address array."""
        return lowcidr.contains(addresses, self.active_networks(day), self.prefix_len)

    def coverage(self, report: Report, day: int) -> float:
        """Fraction of the report's addresses the list blocks on ``day``."""
        if len(report) == 0:
            return 0.0
        return float(self.blocked_mask(report.addresses, day).mean())

    def score_of(self, address: AddressLike, day: int) -> float:
        """Decayed score of the entry covering ``address`` (0 if none)."""
        network = as_int(address) & lowcidr.prefix_mask(self.prefix_len) if self.prefix_len else 0
        entry = self._entries.get(network)
        if entry is None or not entry.active(day):
            return 0.0
        return entry.decayed_score(day, self.score_half_life_days)

    def __repr__(self) -> str:
        return (
            f"Blocklist(/{self.prefix_len}, entries={len(self)}, "
            f"ttl={self.default_ttl_days}d)"
        )
