"""Report-level CIDR operations.

Implements the paper's notation on whole reports: the set-valued masking
function :math:`C_n(S)` (Eq. 1), the inclusion relation (Eq. 2), and block
intersection counts (the quantity inside Eqs. 4 and 5).

The scalar block counter lives canonically in
:mod:`repro.ipspace.cidr` (which accepts reports directly);
:func:`block_count` here is a deprecated alias kept for old imports and
warns once per process.
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.core.report import Report
from repro.ipspace import cidr as _cidr
from repro.ipspace.cidr import CIDRBlock

__all__ = [
    "PREFIX_RANGE",
    "cidr_set",
    "cidr_blocks",
    "block_count",
    "block_counts",
    "intersection_count",
    "intersection_counts",
    "addresses_in_blocks",
    "members_of",
]

#: The paper restricts analyses to prefix lengths of 16..32 bits (§4.1),
#: following Collins & Reiter's observation that shorter prefixes are too
#: imprecise for filtering.
PREFIX_RANGE = range(16, 33)


def cidr_set(report: Report, prefix_len: int) -> np.ndarray:
    """:math:`C_n(\\mathcal{R})` as a sorted array of masked network ints."""
    return _cidr.unique_blocks(report.addresses, prefix_len)


def cidr_blocks(report: Report, prefix_len: int) -> list:
    """:math:`C_n(\\mathcal{R})` as :class:`CIDRBlock` objects."""
    return [CIDRBlock(int(net), prefix_len) for net in cidr_set(report, prefix_len)]


_WARNED = set()


def _warn_moved(name: str, replacement: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"repro.core.cidr.{name} is deprecated; use {replacement} "
        f"(the canonical implementation, which accepts reports directly)",
        DeprecationWarning,
        stacklevel=3,
    )


def block_count(report: Report, prefix_len: int) -> int:
    """:math:`|C_n(\\mathcal{R})|`.

    Deprecated alias of :func:`repro.ipspace.cidr.block_count`.
    """
    _warn_moved("block_count", "repro.ipspace.cidr.block_count")
    return _cidr.block_count(report, prefix_len)


def block_counts(report: Report, prefixes: Iterable[int] = PREFIX_RANGE) -> Dict[int, int]:
    """:math:`|C_n(\\mathcal{R})|` for each prefix length in ``prefixes``."""
    return {n: _cidr.block_count(report, n) for n in prefixes}


def intersection_count(past: Report, present: Report, prefix_len: int) -> int:
    """:math:`|C_n(\\mathcal{R}_{past}) \\cap C_n(\\mathcal{R}_{present})|`.

    The quantity compared in the temporal uncleanliness test (Eqs. 4, 5).
    """
    past_blocks = cidr_set(past, prefix_len)
    present_blocks = cidr_set(present, prefix_len)
    return int(np.intersect1d(past_blocks, present_blocks).size)


def intersection_counts(
    past: Report, present: Report, prefixes: Iterable[int] = PREFIX_RANGE
) -> Dict[int, int]:
    """Intersection counts for each prefix length in ``prefixes``."""
    return {n: intersection_count(past, present, n) for n in prefixes}


def addresses_in_blocks(report: Report, blocks: np.ndarray, prefix_len: int) -> np.ndarray:
    """Addresses of ``report`` that satisfy :math:`i \\sqsubset` ``blocks``.

    ``blocks`` is a sorted masked-network array at ``prefix_len``.
    """
    mask = _cidr.contains(report.addresses, blocks, prefix_len)
    return report.addresses[mask]


def members_of(report: Report, covering: Report, prefix_len: int) -> Report:
    """The sub-report of ``report`` inside :math:`C_n(\\text{covering})`.

    This is the candidate-extraction step of §6.1: all addresses of
    ``report`` sharing an *n*-bit block with any address of ``covering``.
    """
    blocks = cidr_set(covering, prefix_len)
    kept = addresses_in_blocks(report, blocks, prefix_len)
    return Report(
        tag=f"{report.tag}@{covering.tag}/{prefix_len}",
        addresses=kept,
        report_type=report.report_type,
        data_class=report.data_class,
        period=report.period,
    )
