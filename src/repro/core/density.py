"""Spatial uncleanliness: comparative density of reports in CIDR space.

Implements §4 of the paper.  A report :math:`S_1` is *denser* at *n* bits
than an equal-cardinality report :math:`S_2` if
:math:`|C_n(S_1)| < |C_n(S_2)|`.  The spatial uncleanliness hypothesis
(Eq. 3) states that an unclean report is at least as dense as a random
control subset at every prefix length in [16, 32].

The test compares the unclean report's block counts against the Monte-Carlo
distribution of block counts over 1000 random control subsets (the
*empirical* estimate), and optionally against the IANA-uniform *naive*
estimate that Figure 2 shows to be badly over-dispersed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import Report
from repro.core.sampling import monte_carlo, naive_sample
from repro.core.stats import BoxplotSummary, summarize
# Re-exported from their new home (repro.core.trials) for existing
# importers; the statistic itself is predictor-generic and lives with
# the trial-matrix machinery.
from repro.core.trials import BlockCountStatistic, _block_count_vector
from repro.ipspace.kernels import block_counts_2d

__all__ = [
    "DensityResult",
    "BlockCountStatistic",
    "density_curve",
    "control_density_distribution",
    "naive_density_distribution",
    "density_test",
]


@dataclass(frozen=True)
class DensityResult:
    """Outcome of a spatial uncleanliness test for one unclean report.

    Attributes
    ----------
    report_tag:
        Tag of the unclean report tested.
    prefixes:
        The prefix lengths evaluated.
    observed:
        ``{n: |C_n(R_unclean)|}``.
    control:
        ``{n: BoxplotSummary}`` of the empirical control distribution.
    naive:
        ``{n: BoxplotSummary}`` of the naive estimate, when requested.
    """

    report_tag: str
    prefixes: tuple
    observed: Dict[int, int]
    control: Dict[int, BoxplotSummary]
    naive: Optional[Dict[int, BoxplotSummary]] = None

    def denser_than_control(self, prefix_len: int) -> bool:
        """Eq. 3 at one prefix: observed count <= the control median.

        The paper checks Eq. 3 visually: the unclean report's line sits
        at or below the control boxplots (Figs. 2-3).  Comparing against
        the Monte-Carlo median mirrors that; near /32 both counts
        saturate at the report cardinality and the comparison becomes an
        equality, which still satisfies Eq. 3's `<=`.
        """
        return self.observed[prefix_len] <= self.control[prefix_len].median

    def hypothesis_holds(self) -> bool:
        """Eq. 3 across all tested prefixes."""
        return all(self.denser_than_control(n) for n in self.prefixes)

    def density_ratio(self, prefix_len: int) -> float:
        """Control median block count divided by observed block count.

        Values above 1 mean the unclean report is that many times denser
        than random control addresses at this prefix length.
        """
        observed = self.observed[prefix_len]
        if observed == 0:
            return float("inf")
        return self.control[prefix_len].median / observed

    def rows(self) -> List[dict]:
        """Per-prefix rows suitable for tabular output (Figs. 2-3)."""
        out = []
        for n in self.prefixes:
            row = {
                "prefix": n,
                "observed_blocks": self.observed[n],
                "control_median": self.control[n].median,
                "control_min": self.control[n].minimum,
                "control_max": self.control[n].maximum,
                "denser": self.denser_than_control(n),
            }
            if self.naive is not None:
                row["naive_median"] = self.naive[n].median
            out.append(row)
        return out


def density_curve(report: Report, prefixes: Iterable[int] = rcidr.PREFIX_RANGE) -> Dict[int, int]:
    """Block counts :math:`|C_n(R)|` per prefix length for one report."""
    return rcidr.block_counts(report, prefixes)


def control_density_distribution(
    control: Report,
    size: int,
    prefixes: Sequence[int],
    subsets: int,
    rng: np.random.Generator,
    workers: Optional[int] = None,
) -> Dict[int, np.ndarray]:
    """Monte-Carlo block-count distributions over random control subsets.

    Returns ``{n: array of |C_n(subset)| over all subsets}``.  Runs on
    the batched trial-matrix path; values are bit-identical to the
    per-trial reference (:func:`_block_count_vector` under
    :func:`~repro.core.sampling.monte_carlo`).
    """
    prefixes = tuple(prefixes)
    matrix = monte_carlo(
        control,
        size,
        subsets,
        rng,
        statistic=BlockCountStatistic(prefixes),
        workers=workers,
    )
    return {n: matrix[:, column] for column, n in enumerate(prefixes)}


def naive_density_distribution(
    size: int,
    prefixes: Sequence[int],
    subsets: int,
    rng: np.random.Generator,
) -> Dict[int, np.ndarray]:
    """Monte-Carlo block-count distributions for the naive IANA estimate.

    The rejection-sampled draws stay per-trial (they consume a
    data-dependent number of variates), but the samples stack into one
    trial matrix so the block counting is a single batched pass.
    """
    prefixes = tuple(prefixes)
    matrix = np.empty((subsets, size), dtype=np.uint32)
    for index in range(subsets):
        # Report construction already sorted and deduplicated the draw.
        matrix[index] = naive_sample(size, rng).addresses
    counts = block_counts_2d(matrix, prefixes)
    return {
        n: counts[:, column].astype(float)
        for column, n in enumerate(prefixes)
    }


def density_test(
    unclean: Report,
    control: Report,
    rng: np.random.Generator,
    prefixes: Sequence[int] = tuple(rcidr.PREFIX_RANGE),
    subsets: int = 1000,
    include_naive: bool = False,
    naive_subsets: int = 20,
    workers: Optional[int] = None,
) -> DensityResult:
    """Run the spatial uncleanliness test of §4.2 for one report.

    Compares ``|C_n(unclean)|`` against ``subsets`` equal-cardinality
    random subsets of ``control`` at every prefix in ``prefixes``.  When
    ``include_naive`` is set, also computes the naive IANA-uniform
    estimate (Fig. 2); the naive distribution is extremely narrow, so a
    small ``naive_subsets`` suffices.  ``workers`` distributes the
    control subsets over processes (``None`` = ``$REPRO_WORKERS`` or
    serial) with bit-identical results.
    """
    prefixes = tuple(prefixes)
    size = len(unclean)
    if size == 0:
        raise ValueError("cannot run a density test on an empty report")
    if size > len(control):
        raise ValueError(
            f"control report ({len(control)}) smaller than unclean report ({size})"
        )
    observed = density_curve(unclean, prefixes)
    control_dist = control_density_distribution(
        control, size, prefixes, subsets, rng, workers=workers
    )
    control_summaries = {n: summarize(v) for n, v in control_dist.items()}
    naive_summaries = None
    if include_naive:
        naive_dist = naive_density_distribution(size, prefixes, naive_subsets, rng)
        naive_summaries = {n: summarize(v) for n, v in naive_dist.items()}
    return DensityResult(
        report_tag=unclean.tag,
        prefixes=prefixes,
        observed=observed,
        control=control_summaries,
        naive=naive_summaries,
    )
