"""Reusable window-fold steps shared by the batch stages and the stream.

The batch pipeline (:mod:`repro.core.stages`) computes every windowed
quantity over the whole observation window at once; the streaming layer
(:mod:`repro.stream`) folds the same quantities one day-batch at a
time.  Both paths must agree *bit for bit* — that replay-equivalence
invariant is what lets the streaming service reuse the paper's Table 2/3
validation unchanged — so the window logic lives here, once:

* report constructors (tag, type, class, period metadata) for the
  observed detector reports and the unclean union;
* the day-slicing of a window's flow log (every flow lands in exactly
  one day-batch, keyed by ``start_time // DAY_SECONDS``);
* the class mapping and scoring step from Table 1 report tags to the
  §7 multidimensional uncleanliness scores and the derived blocklist.

Decomposability notes, enforced by ``tests/test_stream_replay.py``:
the scan detector buckets by hour and hours never span days, so
unioning per-day detections equals whole-window detection; the spam
detector's statistics are exact mergeable aggregates
(:class:`repro.detect.spam.SpamAggregates`); report sets are unions of
per-day address deltas; and the noisy-OR scores are recomputed from
exact integer per-block counts in a fixed class order.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from repro.core.report import DataClass, Report, ReportType
from repro.core.uncleanliness import BlockScores, UncleanlinessScorer
from repro.flows.log import FlowLog
from repro.sim.timeline import DAY_SECONDS, Window

__all__ = [
    "UNCLEAN_TAGS",
    "CLASS_OF_TAG",
    "CLASS_ORDER",
    "DEFAULT_CLASS_WEIGHTS",
    "day_slices",
    "slice_day",
    "observed_report",
    "unclean_union",
    "class_reports",
    "batch_scores",
    "blocklist_networks",
]

#: The four reports whose union is R_unclean (Table 2), in union order.
UNCLEAN_TAGS: Tuple[str, ...] = ("bot", "phish", "scan", "spam")

#: Report tag -> scorer class, in the fixed class order scoring uses.
#: Dict insertion order is load-bearing: the noisy-OR multiplies class
#: evidence terms in mapping order, and floating multiplication is not
#: associative, so batch and stream must walk the classes identically.
CLASS_OF_TAG: Dict[str, str] = {
    "bot": DataClass.BOTS,
    "scan": DataClass.SCANNING,
    "spam": DataClass.SPAM,
    "phish": DataClass.PHISHING,
}

#: The scoring classes in evaluation order.
CLASS_ORDER: Tuple[str, ...] = tuple(CLASS_OF_TAG.values())

#: Default per-class weights for the streaming scorer (the §7 defaults
#: restricted to the classes the stream actually folds).
DEFAULT_CLASS_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    (DataClass.BOTS, 1.0),
    (DataClass.SCANNING, 0.8),
    (DataClass.SPAM, 0.8),
    (DataClass.PHISHING, 0.5),
)

#: Metadata of the observed (detector-generated) report tags.
_OBSERVED_META = {
    "scan": DataClass.SCANNING,
    "spam": DataClass.SPAM,
}


def slice_day(flows: FlowLog, day: int) -> FlowLog:
    """The flows starting within simulation day ``day``."""
    return flows.in_time_range(day * DAY_SECONDS, (day + 1) * DAY_SECONDS)


def day_slices(flows: FlowLog, window: Window) -> Iterator[Tuple[int, FlowLog]]:
    """``(day, flows-of-day)`` for every day of ``window``, in order.

    Every flow of a window capture starts inside the window, so the
    slices partition the log: concatenating them (in any order) covers
    each flow exactly once — the property that makes day-folding the
    detectors equivalent to running them whole-window.
    """
    for day in window.days():
        yield day, slice_day(flows, day)


def observed_report(tag: str, addresses: np.ndarray, window: Window) -> Report:
    """An observed detector report with the batch pipeline's metadata."""
    try:
        data_class = _OBSERVED_META[tag]
    except KeyError:
        raise ValueError(f"not an observed report tag: {tag!r}") from None
    return Report(
        tag=tag,
        addresses=addresses,
        report_type=ReportType.OBSERVED,
        data_class=data_class,
        period=window.dates(),
    ).without_reserved()


def unclean_union(reports: Mapping[str, Report], window: Window) -> Report:
    """R_unclean: the union of the four unclean reports (Table 2)."""
    union = reports[UNCLEAN_TAGS[0]]
    for tag in UNCLEAN_TAGS[1:]:
        union = union | reports[tag]
    return Report(
        tag="unclean",
        addresses=union.addresses,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.SPECIAL,
        period=window.dates(),
    )


def class_reports(reports: Mapping[str, Report]) -> Dict[str, Report]:
    """The scorer's ``{class: report}`` mapping, in :data:`CLASS_ORDER`."""
    return {cls: reports[tag] for tag, cls in CLASS_OF_TAG.items()}


def batch_scores(
    reports: Mapping[str, Report],
    prefix_len: int = 24,
    weights: Optional[Mapping[str, float]] = None,
) -> BlockScores:
    """The batch-path score table the stream must reproduce exactly.

    Scores the four unclean class reports with the §7 scorer; the
    replay-equivalence tests compare the incremental state's rolling
    counts and scores against this, bit for bit.
    """
    if weights is None:
        weights = dict(DEFAULT_CLASS_WEIGHTS)
    scorer = UncleanlinessScorer(prefix_len=prefix_len, weights=weights)
    return scorer.score(class_reports(reports))


def blocklist_networks(scores: BlockScores, threshold: float) -> np.ndarray:
    """The recommended blocklist as a sorted masked-network array."""
    return scores.blocks[scores.scores >= threshold]
