"""Temporal uncleanliness: predictive capacity of past unclean reports.

Implements §5 of the paper.  Given a past report and a present report, the
predictor quality at prefix length *n* is the block intersection
:math:`|C_n(R_{past}) \\cap C_n(R_{present})|` (Eq. 4).  The temporal
uncleanliness hypothesis (Eq. 5) holds if there is some prefix length at
which the past *unclean* report intersects the present unclean report more
than equal-cardinality random control subsets do.

The paper's criterion: the past report is a *better predictor* at *n* if
its intersection beats the control intersection in at least 95% of 1000
random control draws (§5.2).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import Report
from repro.core.sampling import monte_carlo
from repro.core.stats import BoxplotSummary, exceedance_fraction, summarize
from repro.core.trials import TrialEnsemble
from repro.ipspace.kernels import intersection_counts_2d

__all__ = [
    "BETTER_PREDICTOR_LEVEL",
    "PredictionResult",
    "IntersectionStatistic",
    "prediction_test",
]

#: The paper's 95% better-predictor criterion (§5.2).
BETTER_PREDICTOR_LEVEL = 0.95


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of a temporal uncleanliness test for one (past, present) pair.

    Attributes
    ----------
    past_tag, present_tag:
        Tags of the reports compared.
    prefixes:
        Prefix lengths evaluated.
    observed:
        ``{n: |C_n(past) ∩ C_n(present)|}``.
    control:
        ``{n: BoxplotSummary}`` of control-subset intersections.
    exceedance:
        ``{n: fraction of control draws the observed value beats}``.
    """

    past_tag: str
    present_tag: str
    prefixes: tuple
    observed: Dict[int, int]
    control: Dict[int, BoxplotSummary]
    exceedance: Dict[int, float]

    def better_predictor(self, prefix_len: int, level: float = BETTER_PREDICTOR_LEVEL) -> bool:
        """Whether the past report beats control at this prefix (95% rule)."""
        return self.exceedance[prefix_len] >= level

    def predictive_prefixes(self, level: float = BETTER_PREDICTOR_LEVEL) -> List[int]:
        """All prefix lengths where the past report is a better predictor."""
        return [n for n in self.prefixes if self.better_predictor(n, level)]

    def predictive_range(self, level: float = BETTER_PREDICTOR_LEVEL) -> Optional[Tuple[int, int]]:
        """The (shortest, longest) predictive prefix lengths, if any.

        For bot-test vs bots the paper reports 20-25 bits; vs spam 19-32;
        vs scan 20-24 (§5.2).
        """
        winners = self.predictive_prefixes(level)
        if not winners:
            return None
        return (min(winners), max(winners))

    def hypothesis_holds(self, level: float = BETTER_PREDICTOR_LEVEL) -> bool:
        """Eq. 5: some prefix length exists where past beats control."""
        return bool(self.predictive_prefixes(level))

    def rows(self) -> List[dict]:
        """Per-prefix rows suitable for tabular output (Figs. 4-5)."""
        return [
            {
                "prefix": n,
                "observed_intersection": self.observed[n],
                "control_median": self.control[n].median,
                "control_q95": self.control[n].q95,
                "exceedance": round(self.exceedance[n], 4),
                "better_predictor": self.better_predictor(n),
            }
            for n in self.prefixes
        ]


def _intersection_vector(
    subset: Report,
    present_blocks: Tuple[np.ndarray, ...],
    prefixes: Tuple[int, ...],
) -> List[int]:
    """Per-prefix block intersections with the (precomputed) present
    report — the per-trial reference statistic of Figs. 4-5 (the batched
    path is :class:`IntersectionStatistic`).

    Module-level (not a closure) so the parallel ``monte_carlo`` path can
    pickle it into worker processes.
    """
    values = []
    for blocks, n in zip(present_blocks, prefixes):
        subset_blocks = rcidr.cidr_set(subset, n)
        values.append(int(np.intersect1d(subset_blocks, blocks).size))
    return values


@dataclass(frozen=True, eq=False)
class IntersectionStatistic:
    """The Figure 4/5 Monte-Carlo statistic:
    :math:`|C_n(S) \\cap C_n(R_{present})|` per prefix.

    Implements the :class:`~repro.core.trials.TrialStatistic` protocol
    against precomputed present-report block sets; ``batch`` evaluates a
    whole trial ensemble with one searchsorted pass per prefix.
    """

    prefixes: Tuple[int, ...]
    present_blocks: Tuple[np.ndarray, ...]

    def label(self) -> str:
        # The block sets parametrise the statistic just as much as the
        # prefixes do, so their content keys the checkpoint label.
        digest = hashlib.sha256()
        for blocks in self.present_blocks:
            digest.update(np.ascontiguousarray(blocks).tobytes())
        joined = ",".join(str(n) for n in self.prefixes)
        return f"intersections({joined})-{digest.hexdigest()[:12]}"

    def batch(self, ensemble: TrialEnsemble) -> np.ndarray:
        return intersection_counts_2d(
            ensemble.matrix, self.present_blocks, self.prefixes
        )

    def per_trial(self, subset: Report) -> List[int]:
        return _intersection_vector(subset, self.present_blocks, self.prefixes)

    # -- shared-array protocol (repro.core.sampling shm handoff) ----------
    # The block sets are the statistic's heavy payload; shipping them to
    # Monte-Carlo workers by shared-memory handle instead of per-chunk
    # pickle is what these three hooks enable.

    def shared_arrays(self) -> dict:
        return {
            f"blocks{i}": np.ascontiguousarray(blocks)
            for i, blocks in enumerate(self.present_blocks)
        }

    def without_shared_arrays(self) -> "IntersectionStatistic":
        return IntersectionStatistic(prefixes=self.prefixes, present_blocks=())

    def with_shared_arrays(self, arrays: dict) -> "IntersectionStatistic":
        return IntersectionStatistic(
            prefixes=self.prefixes,
            present_blocks=tuple(
                arrays[f"blocks{i}"] for i in range(len(self.prefixes))
            ),
        )


def prediction_test(
    past: Report,
    present: Report,
    control: Report,
    rng: np.random.Generator,
    prefixes: Sequence[int] = tuple(rcidr.PREFIX_RANGE),
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> PredictionResult:
    """Run the temporal uncleanliness test of §5.2.

    Compares ``|C_n(past) ∩ C_n(present)|`` against the distribution of
    ``|C_n(random control subset) ∩ C_n(present)|`` over ``subsets``
    draws, where each control subset has the cardinality of ``past``
    (the equal-cardinality condition of Eq. 5).  ``workers`` distributes
    the draws over processes (``None`` = ``$REPRO_WORKERS`` or serial)
    with bit-identical results.
    """
    prefixes = tuple(prefixes)
    size = len(past)
    if size == 0:
        raise ValueError("cannot run a prediction test with an empty past report")
    if size > len(control):
        raise ValueError(
            f"control report ({len(control)}) smaller than past report ({size})"
        )
    observed = rcidr.intersection_counts(past, present, prefixes)

    present_blocks = tuple(rcidr.cidr_set(present, n) for n in prefixes)
    matrix = monte_carlo(
        control,
        size,
        subsets,
        rng,
        statistic=IntersectionStatistic(
            prefixes=prefixes, present_blocks=present_blocks
        ),
        workers=workers,
    )
    control_values: Dict[int, np.ndarray] = {
        n: matrix[:, column] for column, n in enumerate(prefixes)
    }

    control_summaries = {
        n: summarize(values) for n, values in control_values.items()
    }
    exceedance = {
        n: exceedance_fraction(observed[n], control_values[n]) for n in prefixes
    }
    return PredictionResult(
        past_tag=past.tag,
        present_tag=present.tag,
        prefixes=prefixes,
        observed=observed,
        control=control_summaries,
        exceedance=exceedance,
    )
