"""Temporal uncleanliness: predictive capacity of past unclean reports.

Implements §5 of the paper.  Given a past report and a present report, the
predictor quality at prefix length *n* is the block intersection
:math:`|C_n(R_{past}) \\cap C_n(R_{present})|` (Eq. 4).  The temporal
uncleanliness hypothesis (Eq. 5) holds if there is some prefix length at
which the past *unclean* report intersects the present unclean report more
than equal-cardinality random control subsets do.

The paper's criterion: the past report is a *better predictor* at *n* if
its intersection beats the control intersection in at least 95% of 1000
random control draws (§5.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import Report
from repro.core.sampling import monte_carlo
from repro.core.stats import BoxplotSummary, exceedance_fraction, summarize
# Re-exported from their new home (repro.core.trials) for existing
# importers; the statistic itself is predictor-generic and lives with
# the trial-matrix machinery.
from repro.core.trials import IntersectionStatistic, _intersection_vector

__all__ = [
    "BETTER_PREDICTOR_LEVEL",
    "PredictionResult",
    "IntersectionStatistic",
    "control_intersection_distribution",
    "prediction_test_blocks",
    "prediction_test",
]

#: The paper's 95% better-predictor criterion (§5.2).
BETTER_PREDICTOR_LEVEL = 0.95


@dataclass(frozen=True)
class PredictionResult:
    """Outcome of a temporal uncleanliness test for one (past, present) pair.

    Attributes
    ----------
    past_tag, present_tag:
        Tags of the reports compared.
    prefixes:
        Prefix lengths evaluated.
    observed:
        ``{n: |C_n(past) ∩ C_n(present)|}``.
    control:
        ``{n: BoxplotSummary}`` of control-subset intersections.
    exceedance:
        ``{n: fraction of control draws the observed value beats}``.
    """

    past_tag: str
    present_tag: str
    prefixes: tuple
    observed: Dict[int, int]
    control: Dict[int, BoxplotSummary]
    exceedance: Dict[int, float]

    def better_predictor(self, prefix_len: int, level: float = BETTER_PREDICTOR_LEVEL) -> bool:
        """Whether the past report beats control at this prefix (95% rule)."""
        return self.exceedance[prefix_len] >= level

    def predictive_prefixes(self, level: float = BETTER_PREDICTOR_LEVEL) -> List[int]:
        """All prefix lengths where the past report is a better predictor."""
        return [n for n in self.prefixes if self.better_predictor(n, level)]

    def predictive_range(self, level: float = BETTER_PREDICTOR_LEVEL) -> Optional[Tuple[int, int]]:
        """The (shortest, longest) predictive prefix lengths, if any.

        For bot-test vs bots the paper reports 20-25 bits; vs spam 19-32;
        vs scan 20-24 (§5.2).
        """
        winners = self.predictive_prefixes(level)
        if not winners:
            return None
        return (min(winners), max(winners))

    def hypothesis_holds(self, level: float = BETTER_PREDICTOR_LEVEL) -> bool:
        """Eq. 5: some prefix length exists where past beats control."""
        return bool(self.predictive_prefixes(level))

    def rows(self) -> List[dict]:
        """Per-prefix rows suitable for tabular output (Figs. 4-5)."""
        return [
            {
                "prefix": n,
                "observed_intersection": self.observed[n],
                "control_median": self.control[n].median,
                "control_q95": self.control[n].q95,
                "exceedance": round(self.exceedance[n], 4),
                "better_predictor": self.better_predictor(n),
            }
            for n in self.prefixes
        ]


def control_intersection_distribution(
    present_blocks: Tuple[np.ndarray, ...],
    control: Report,
    size: int,
    subsets: int,
    rng: np.random.Generator,
    prefixes: Sequence[int],
    workers: Optional[int] = None,
) -> Dict[int, np.ndarray]:
    """Monte-Carlo intersection distributions over random control subsets.

    Draws ``subsets`` control subsets of cardinality ``size`` and
    returns ``{n: array of |C_n(subset) ∩ present_blocks[n]|}``.  This
    is the §5 null model with the predictor factored out: the observed
    side compares *any* predicted block sets against the same
    distribution, which is what lets one Monte-Carlo run serve every
    rival model in a head-to-head comparison (the distribution depends
    only on the present blocks, the control report and the cardinality
    budget — never on the predictor).  Runs on the batched trial-matrix
    path; values are bit-identical to the per-trial reference for any
    ``workers`` setting.
    """
    prefixes = tuple(prefixes)
    if len(present_blocks) != len(prefixes):
        raise ValueError(
            f"{len(present_blocks)} block sets for {len(prefixes)} prefixes"
        )
    if size > len(control):
        raise ValueError(
            f"control report ({len(control)}) smaller than subset size ({size})"
        )
    matrix = monte_carlo(
        control,
        size,
        subsets,
        rng,
        statistic=IntersectionStatistic(
            prefixes=prefixes, present_blocks=tuple(present_blocks)
        ),
        workers=workers,
    )
    return {n: matrix[:, column] for column, n in enumerate(prefixes)}


def prediction_test_blocks(
    predicted_blocks: Sequence[np.ndarray],
    present_blocks: Sequence[np.ndarray],
    control_values: Dict[int, np.ndarray],
    prefixes: Sequence[int],
    past_tag: str,
    present_tag: str,
) -> PredictionResult:
    """Assemble a :class:`PredictionResult` for arbitrary predicted blocks.

    The predictor-generic half of the §5 test: ``predicted_blocks[i]``
    is any model's sorted predicted block set at ``prefixes[i]``,
    ``present_blocks[i]`` the present report's blocks, and
    ``control_values`` the null distribution from
    :func:`control_intersection_distribution` (shareable across
    models).  Pure comparison — no sampling, no RNG.
    """
    prefixes = tuple(prefixes)
    observed = {
        n: int(np.intersect1d(predicted, blocks).size)
        for n, predicted, blocks in zip(
            prefixes, predicted_blocks, present_blocks
        )
    }
    control_summaries = {
        n: summarize(control_values[n]) for n in prefixes
    }
    exceedance = {
        n: exceedance_fraction(observed[n], control_values[n])
        for n in prefixes
    }
    return PredictionResult(
        past_tag=past_tag,
        present_tag=present_tag,
        prefixes=prefixes,
        observed=observed,
        control=control_summaries,
        exceedance=exceedance,
    )


def prediction_test(
    past: Report,
    present: Report,
    control: Report,
    rng: np.random.Generator,
    prefixes: Sequence[int] = tuple(rcidr.PREFIX_RANGE),
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> PredictionResult:
    """Run the temporal uncleanliness test of §5.2.

    Compares ``|C_n(past) ∩ C_n(present)|`` against the distribution of
    ``|C_n(random control subset) ∩ C_n(present)|`` over ``subsets``
    draws, where each control subset has the cardinality of ``past``
    (the equal-cardinality condition of Eq. 5).  ``workers`` distributes
    the draws over processes (``None`` = ``$REPRO_WORKERS`` or serial)
    with bit-identical results.
    """
    prefixes = tuple(prefixes)
    size = len(past)
    if size == 0:
        raise ValueError("cannot run a prediction test with an empty past report")
    past_blocks = tuple(rcidr.cidr_set(past, n) for n in prefixes)
    present_blocks = tuple(rcidr.cidr_set(present, n) for n in prefixes)
    control_values = control_intersection_distribution(
        present_blocks, control, size, subsets, rng, prefixes,
        workers=workers,
    )
    return prediction_test_blocks(
        past_blocks,
        present_blocks,
        control_values,
        prefixes,
        past_tag=past.tag,
        present_tag=present.tag,
    )
