"""Reports: tagged, dated sets of IPv4 addresses.

The paper's unit of analysis is the *report* (§3.1): "a set of IP addresses
describing a particular phenomenon over some period".  Reports differ by
the class of data reported (bots, phishing, scanning, spamming), the period
covered, and whether they are *provided* (from a third party) or *observed*
(generated from the observed network's traffic logs).

A :class:`Report` wraps a sorted, deduplicated ``uint32`` address array and
is immutable after construction.  Set algebra returns new reports.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.ipspace.addr import AddressLike, as_array, as_int, as_str
from repro.ipspace.reserved import reserved_mask

__all__ = ["ReportType", "DataClass", "Report"]


class ReportType:
    """How a report was collected (§3.1)."""

    PROVIDED = "provided"  # supplied by an external party
    OBSERVED = "observed"  # generated from the observed network's logs

    ALL = (PROVIDED, OBSERVED)


class DataClass:
    """The phenomenon a report describes (§3.1)."""

    BOTS = "bots"
    PHISHING = "phishing"
    SCANNING = "scanning"
    SPAM = "spam"
    SPECIAL = "special"  # e.g. the union report in Table 2
    NONE = "n/a"  # control / candidate style reports

    ALL = (BOTS, PHISHING, SCANNING, SPAM, SPECIAL, NONE)


@dataclass(frozen=True)
class Report:
    """An immutable report :math:`\\mathcal{R}_{tag}`.

    Parameters
    ----------
    tag:
        Short identifier, e.g. ``"bot"`` or ``"scan"`` (Table 1).
    addresses:
        Any iterable of addresses; stored sorted and deduplicated as
        ``uint32``.
    report_type:
        :class:`ReportType` value.
    data_class:
        :class:`DataClass` value.
    period:
        Optional ``(start, end)`` dates the report covers.
    """

    tag: str
    addresses: np.ndarray
    report_type: str = ReportType.OBSERVED
    data_class: str = DataClass.NONE
    period: Optional[Tuple[datetime.date, datetime.date]] = None

    def __post_init__(self) -> None:
        if self.report_type not in ReportType.ALL:
            raise ValueError(f"unknown report type: {self.report_type!r}")
        if self.data_class not in DataClass.ALL:
            raise ValueError(f"unknown data class: {self.data_class!r}")
        if self.period is not None:
            start, end = self.period
            if start > end:
                raise ValueError(f"report period reversed: {start} > {end}")
        arr = np.unique(as_array(self.addresses))
        arr.setflags(write=False)
        object.__setattr__(self, "addresses", arr)

    @classmethod
    def from_addresses(
        cls,
        tag: str,
        addresses: Iterable[AddressLike],
        **kwargs,
    ) -> "Report":
        """Build a report from any iterable of addresses."""
        return cls(tag=tag, addresses=as_array(addresses), **kwargs)

    # -- set protocol ----------------------------------------------------

    def __len__(self) -> int:
        """:math:`|\\mathcal{R}|`, the report's cardinality."""
        return int(self.addresses.size)

    def __contains__(self, address: AddressLike) -> bool:
        value = np.uint32(as_int(address))
        idx = np.searchsorted(self.addresses, value)
        return bool(idx < self.addresses.size and self.addresses[idx] == value)

    def __iter__(self) -> Iterator[int]:
        return (int(a) for a in self.addresses)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Report):
            return NotImplemented
        return (
            self.tag == other.tag
            and self.report_type == other.report_type
            and self.data_class == other.data_class
            and self.period == other.period
            and np.array_equal(self.addresses, other.addresses)
        )

    def __hash__(self) -> int:
        return hash((self.tag, self.report_type, self.data_class, self.period,
                     self.addresses.tobytes()))

    # -- algebra ----------------------------------------------------------

    def union(self, other: "Report", tag: Optional[str] = None) -> "Report":
        """Addresses present in either report."""
        merged = np.union1d(self.addresses, other.addresses)
        return self._derive(merged, tag or f"{self.tag}|{other.tag}")

    def intersection(self, other: "Report", tag: Optional[str] = None) -> "Report":
        """Addresses present in both reports."""
        common = np.intersect1d(self.addresses, other.addresses)
        return self._derive(common, tag or f"{self.tag}&{other.tag}")

    def difference(self, other: "Report", tag: Optional[str] = None) -> "Report":
        """Addresses in this report that are not in ``other``."""
        rest = np.setdiff1d(self.addresses, other.addresses)
        return self._derive(rest, tag or f"{self.tag}-{other.tag}")

    def __or__(self, other: "Report") -> "Report":
        return self.union(other)

    def __and__(self, other: "Report") -> "Report":
        return self.intersection(other)

    def __sub__(self, other: "Report") -> "Report":
        return self.difference(other)

    # -- transformations ---------------------------------------------------

    def sample(self, size: int, rng: np.random.Generator, tag: Optional[str] = None) -> "Report":
        """A uniform random subset of ``size`` addresses, without replacement.

        This is the operation behind the paper's empirical control
        estimate: "1000 randomly generated subsets of R_control" (§4.2).
        """
        if size > len(self):
            raise ValueError(
                f"cannot sample {size} addresses from report of {len(self)}"
            )
        chosen = rng.choice(self.addresses, size=size, replace=False)
        return self._derive(chosen, tag or f"{self.tag}[sample:{size}]")

    def filtered(self, mask: np.ndarray, tag: Optional[str] = None) -> "Report":
        """Keep only addresses where ``mask`` is True."""
        if mask.shape != self.addresses.shape:
            raise ValueError("mask shape does not match address array")
        return self._derive(self.addresses[mask], tag or self.tag)

    def without_reserved(self) -> "Report":
        """Drop RFC 1918 and other reserved addresses (§3.2 sanitisation)."""
        return self.filtered(~reserved_mask(self.addresses))

    def retagged(self, tag: str) -> "Report":
        """The same report under a different tag."""
        return replace(self, tag=tag)

    def _derive(self, addresses: np.ndarray, tag: str) -> "Report":
        return Report(
            tag=tag,
            addresses=addresses,
            report_type=self.report_type,
            data_class=self.data_class,
            period=self.period,
        )

    # -- presentation -------------------------------------------------------

    def summary_row(self) -> dict:
        """A Table 1 style inventory row for this report."""
        if self.period is None:
            dates = "-"
        else:
            dates = f"{self.period[0].isoformat()}-{self.period[1].isoformat()}"
        return {
            "tag": self.tag,
            "type": self.report_type,
            "class": self.data_class,
            "valid_dates": dates,
            "size": len(self),
        }

    def head(self, count: int = 5) -> list:
        """The first ``count`` addresses, dotted-quad, for display."""
        return [as_str(int(a)) for a in self.addresses[:count]]

    def __repr__(self) -> str:
        return (
            f"Report(tag={self.tag!r}, size={len(self)}, "
            f"type={self.report_type!r}, class={self.data_class!r})"
        )
