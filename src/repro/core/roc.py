"""ROC analysis utilities.

§6.2 evaluates the blocking defence with "ROC analysis: we compare true
positive rates and false positive rates against an operating
characteristic of the prefix length".  The prefix sweep gives nine
operating points; this module provides the general machinery — ROC curves
over arbitrary score thresholds and the area under them — so that
score-based defences (e.g. blocking by
:class:`~repro.core.uncleanliness.UncleanlinessScorer` output) can be
compared against the paper's prefix-length characteristic on the same
axes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["ROCCurve", "roc_curve", "auc", "partition_roc"]


@dataclass(frozen=True)
class ROCCurve:
    """A ROC curve: per-threshold operating points, thresholds descending.

    ``thresholds[i]`` classifies positive everything with score >=
    ``thresholds[i]``; ``tpr``/``fpr`` hold the resulting rates.  The
    conventional (0,0) and (1,1) anchor points are included.
    """

    thresholds: np.ndarray
    tpr: np.ndarray
    fpr: np.ndarray

    def auc(self) -> float:
        """Area under the curve (trapezoidal)."""
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        return float(trapezoid(self.tpr, self.fpr))

    def operating_point(self, threshold: float) -> dict:
        """The (fpr, tpr) achieved at a given threshold."""
        # thresholds are descending; find the last threshold >= requested.
        mask = self.thresholds >= threshold
        if not mask.any():
            return {"threshold": threshold, "tpr": 0.0, "fpr": 0.0}
        idx = int(np.nonzero(mask)[0][-1])
        return {
            "threshold": threshold,
            "tpr": float(self.tpr[idx]),
            "fpr": float(self.fpr[idx]),
        }

    def best_youden(self) -> dict:
        """The threshold maximising Youden's J = TPR - FPR."""
        j = self.tpr - self.fpr
        idx = int(np.argmax(j))
        return {
            "threshold": float(self.thresholds[idx]),
            "tpr": float(self.tpr[idx]),
            "fpr": float(self.fpr[idx]),
            "youden_j": float(j[idx]),
        }

    def rows(self) -> list:
        return [
            {
                "threshold": round(float(t), 4),
                "tpr": round(float(tp), 4),
                "fpr": round(float(fp), 4),
            }
            for t, tp, fp in zip(self.thresholds, self.tpr, self.fpr)
        ]


def roc_curve(scores: Sequence[float], labels: Sequence[bool]) -> ROCCurve:
    """Build a ROC curve from per-item scores and boolean labels.

    ``labels`` marks the positives (e.g. hostile addresses); both classes
    must be represented.
    """
    score_arr = np.asarray(scores, dtype=float)
    label_arr = np.asarray(labels, dtype=bool)
    if score_arr.shape != label_arr.shape:
        raise ValueError("scores and labels must have equal length")
    positives = int(label_arr.sum())
    negatives = int((~label_arr).sum())
    if positives == 0 or negatives == 0:
        raise ValueError("ROC needs at least one positive and one negative")

    order = np.argsort(-score_arr, kind="stable")
    sorted_scores = score_arr[order]
    sorted_labels = label_arr[order]

    # One operating point per distinct threshold value.
    distinct = np.nonzero(np.diff(sorted_scores))[0]
    cut_points = np.concatenate([distinct, [score_arr.size - 1]])

    tp_cum = np.cumsum(sorted_labels)
    fp_cum = np.cumsum(~sorted_labels)
    thresholds = np.concatenate([[np.inf], sorted_scores[cut_points]])
    tpr = np.concatenate([[0.0], tp_cum[cut_points] / positives])
    fpr = np.concatenate([[0.0], fp_cum[cut_points] / negatives])
    return ROCCurve(thresholds=thresholds, tpr=tpr, fpr=fpr)


def auc(scores: Sequence[float], labels: Sequence[bool]) -> float:
    """Convenience: area under the ROC curve for scores/labels."""
    return roc_curve(scores, labels).auc()


def partition_roc(
    hostile_scores: Sequence[float], innocent_scores: Sequence[float]
) -> ROCCurve:
    """ROC curve of a score-based defence over a §6 candidate partition.

    ``hostile_scores`` are a predictor's scores for the partition's
    hostile addresses (the positives), ``innocent_scores`` for the
    innocent ones (the negatives); unknowns are excluded, exactly as
    Table 3 excludes them from ``pop(n)``.  This is how rival
    predictors meet the paper's prefix-length operating characteristic
    on the same axes: per-address scores replace the prefix sweep as
    the threshold variable.
    """
    hostile = np.asarray(hostile_scores, dtype=float)
    innocent = np.asarray(innocent_scores, dtype=float)
    scores = np.concatenate([hostile, innocent])
    labels = np.concatenate(
        [np.ones(hostile.size, dtype=bool), np.zeros(innocent.size, dtype=bool)]
    )
    return roc_curve(scores, labels)
