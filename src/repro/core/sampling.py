"""Control-population samplers for the uncleanliness tests.

The paper compares unclean reports against two control models (§4.2):

* the **naive** estimate, which "selects addresses evenly from across all
  /8's which are listed as populated by IANA", and
* the **empirical** estimate, which draws random subsets of the control
  report (addresses actually observed in payload-bearing TCP traffic),
  reflecting Kohler et al.'s observation that real addresses are highly
  non-uniform in IPv4 space.

Figure 2 shows the naive estimate badly over-disperses, so the paper (and
this library) uses the empirical estimate everywhere else.

:func:`monte_carlo` — the 1000-random-subset evaluation behind the
spatial (§4) and temporal (§5) tests — runs either serially or across a
chunked :class:`~concurrent.futures.ProcessPoolExecutor`.  Each trial
draws its subset from its own child of one ``np.random.SeedSequence``
(``root.spawn(count)``), so the result array is **bit-identical for any
worker count**; ``workers=1`` (the default, overridable through
``$REPRO_WORKERS`` or the CLI ``--workers`` flag) simply runs the same
per-trial streams in-process.
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.core.report import DataClass, Report, ReportType
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask

__all__ = [
    "naive_sample",
    "empirical_subsets",
    "monte_carlo",
    "resolve_workers",
    "trial_seed",
]

#: Environment override for the default Monte-Carlo worker count.
WORKERS_ENV = "REPRO_WORKERS"


def naive_sample(size: int, rng: np.random.Generator, tag: str = "naive") -> Report:
    """Draw ``size`` addresses uniformly from IANA-populated /8s.

    Each draw picks an allocated first octet uniformly at random, then the
    remaining 24 bits uniformly.  Reserved sub-ranges inside allocated /8s
    are rejected and redrawn, matching the paper's report sanitisation,
    and the sample is drawn until it holds exactly ``size`` *distinct*
    addresses (reports are sets, so equal-cardinality comparisons need
    equal unique counts).
    """
    if size <= 0:
        raise ValueError(f"sample size must be positive: {size}")
    octets = np.asarray(sorted(allocated_octets()), dtype=np.uint32)
    seen = np.asarray([], dtype=np.uint32)
    while seen.size < size:
        need = size - seen.size
        chosen_octets = rng.choice(octets, size=need + 16)
        hosts = rng.integers(0, 1 << 24, size=need + 16, dtype=np.uint32)
        batch = (chosen_octets << np.uint32(24)) | hosts
        seen = np.union1d(seen, batch[~reserved_mask(batch)])
    if seen.size > size:
        seen = rng.choice(seen, size=size, replace=False)
    return Report(
        tag=tag,
        addresses=seen,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.NONE,
    )


def empirical_subsets(
    control: Report,
    size: int,
    count: int,
    rng: np.random.Generator,
) -> Iterator[Report]:
    """Yield ``count`` random equal-cardinality subsets of ``control``.

    This is the paper's empirical estimator: "we create 1000 randomly
    generated subsets of R_control" (§4.2).
    """
    if count <= 0:
        raise ValueError(f"subset count must be positive: {count}")
    for index in range(count):
        yield control.sample(size, rng, tag=f"{control.tag}[{index}]")


# -- parallel Monte Carlo --------------------------------------------------


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else ``$REPRO_WORKERS``, else 1."""
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            workers = int(env)
        except ValueError:
            raise ValueError(
                f"${WORKERS_ENV} must be a positive integer, got {env!r}"
            ) from None
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    return workers


def trial_seed(
    entropy: int, spawn_key: Tuple[int, ...], index: int
) -> np.random.SeedSequence:
    """Child ``index`` of the root sequence, built without materialising
    every sibling.

    ``SeedSequence(entropy, spawn_key=parent_key + (i,))`` is exactly the
    ``i``-th element of ``parent.spawn(n)`` — this is how workers derive
    their trials' streams independently.
    """
    return np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(spawn_key) + (index,)
    )


def _run_trials(
    control: Report,
    size: int,
    start: int,
    stop: int,
    entropy: int,
    spawn_key: Tuple[int, ...],
    statistic: Callable[[Report], object],
) -> List[object]:
    """Evaluate trials ``start..stop`` (one spawned stream per trial)."""
    values = []
    for index in range(start, stop):
        rng = np.random.default_rng(trial_seed(entropy, spawn_key, index))
        subset = control.sample(size, rng, tag=f"{control.tag}[{index}]")
        values.append(statistic(subset))
    return values


def monte_carlo(
    control: Report,
    size: int,
    count: int,
    rng: np.random.Generator,
    statistic: Callable[[Report], object],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
) -> np.ndarray:
    """Evaluate ``statistic`` over ``count`` random control subsets.

    ``statistic`` may return a scalar (result shape ``(count,)``) or a
    fixed-length sequence (result shape ``(count, k)``); callers
    summarise the array with :func:`repro.core.stats.summarize` or
    compare an observed value via
    :func:`repro.core.stats.exceedance_fraction`.

    ``workers > 1`` distributes contiguous trial chunks over a process
    pool; because every trial owns a spawned seed-sequence child, the
    result is bit-identical to the serial evaluation.  ``statistic``
    must be picklable (a module-level function or ``functools.partial``
    of one) when running in parallel.
    """
    if count <= 0:
        raise ValueError(f"subset count must be positive: {count}")
    workers = resolve_workers(workers)
    # One draw from the caller's rng anchors the whole evaluation: the
    # root sequence (and thus every trial) is deterministic in the rng
    # state, independent of worker count or chunking.
    root = np.random.SeedSequence(int.from_bytes(rng.bytes(16), "little"))
    entropy, spawn_key = root.entropy, root.spawn_key

    if workers == 1 or count == 1:
        values = _run_trials(
            control, size, 0, count, entropy, spawn_key, statistic
        )
    else:
        if chunk_size is None:
            chunk_size = max(1, math.ceil(count / (workers * 4)))
        spans = [
            (lo, min(lo + chunk_size, count))
            for lo in range(0, count, chunk_size)
        ]
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _run_trials,
                    control, size, lo, hi, entropy, spawn_key, statistic,
                )
                for lo, hi in spans
            ]
            values = [value for future in futures for value in future.result()]
    return np.asarray(values, dtype=float)
