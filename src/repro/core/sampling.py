"""Control-population samplers for the uncleanliness tests.

The paper compares unclean reports against two control models (§4.2):

* the **naive** estimate, which "selects addresses evenly from across all
  /8's which are listed as populated by IANA", and
* the **empirical** estimate, which draws random subsets of the control
  report (addresses actually observed in payload-bearing TCP traffic),
  reflecting Kohler et al.'s observation that real addresses are highly
  non-uniform in IPv4 space.

Figure 2 shows the naive estimate badly over-disperses, so the paper (and
this library) uses the empirical estimate everywhere else.

:func:`monte_carlo` — the 1000-random-subset evaluation behind the
spatial (§4) and temporal (§5) tests — runs either serially or across a
chunked :class:`~concurrent.futures.ProcessPoolExecutor`.  Each trial
draws its subset from its own child of one ``np.random.SeedSequence``
(``root.spawn(count)``), so the result array is **bit-identical for any
worker count**; ``workers=1`` (the default, overridable through
``$REPRO_WORKERS`` or the CLI ``--workers`` flag) simply runs the same
per-trial streams in-process.

Statistics come in two shapes.  A plain callable (``Report -> value``)
is the retained per-trial reference path: one ``Report`` per trial, one
call per trial.  A :class:`~repro.core.trials.TrialStatistic` — an
object with ``batch``/``per_trial``/``label`` — takes the trial-matrix
path: each chunk of trials is drawn as one
:class:`~repro.core.trials.TrialEnsemble` and evaluated in a few numpy
passes (:mod:`repro.ipspace.kernels`).  Because ensemble rows are the
sorted per-trial draws from the same spawned streams, both paths return
bit-identical arrays; the batched one is ~20-30x faster at paper scale.

The parallel path is **supervised**: a chunk that raises or times out
is retried on a fresh pool, a dead worker (``BrokenProcessPool``) drops
the run to serial execution of only the missing trial ranges, and
completed chunks checkpoint through the artifact store so an
interrupted evaluation resumes instead of restarting.  Because every
trial owns a spawned seed-sequence child, every recovery path yields
the same bits; when recovery is impossible the run fails with a typed
:class:`MonteCarloFailure`, never partial numbers.
"""

from __future__ import annotations

import functools
import hashlib
import logging
import math
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None  # type: ignore[assignment]

from repro.core.report import DataClass, Report, ReportType
from repro.core.trials import TrialEnsemble, is_batched, trial_seed
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import warn_event

__all__ = [
    "naive_sample",
    "empirical_subsets",
    "monte_carlo",
    "MonteCarloFailure",
    "resolve_workers",
    "trial_seed",
    "TrialEnsemble",
]

log = logging.getLogger("repro.engine.sampling")

#: Environment override for the default Monte-Carlo worker count.
WORKERS_ENV = "REPRO_WORKERS"

#: Set to ``0``/``false``/``off`` to disable the shared-memory worker
#: handoff and always pickle the evaluation into each chunk.
SHM_ENV = "REPRO_SHM"


def _shm_enabled() -> bool:
    return os.environ.get(SHM_ENV, "").strip().lower() not in {"0", "false", "off"}


def _peak_rss_kb() -> int:
    """This process's lifetime peak resident set, in KB (0 if unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)


# -- shared-memory shipment ------------------------------------------------


@dataclass(frozen=True)
class _SharedReport:
    """A control :class:`Report` whose address column travels by handle.

    Pickles as a few hundred bytes; :meth:`resolve` attaches the shared
    segment in the worker and rebuilds the report once per process.
    """

    handle: "object"  # repro.engine.shm.SharedHandle
    key: str
    tag: str
    report_type: object
    data_class: object
    period: object

    @classmethod
    def pack(cls, report: Report, handle, key: str) -> "_SharedReport":
        return cls(
            handle=handle,
            key=key,
            tag=report.tag,
            report_type=report.report_type,
            data_class=report.data_class,
            period=report.period,
        )

    def resolve(self) -> Report:
        cached = _RESOLVED.get((self.handle.name, self.key))
        if cached is not None:
            return cached
        from repro.engine import shm

        addresses = shm.attach(self.handle)[self.key]
        report = Report(
            tag=self.tag,
            addresses=addresses,
            report_type=self.report_type,
            data_class=self.data_class,
            period=self.period,
        )
        _RESOLVED[(self.handle.name, self.key)] = report
        return report


@dataclass(frozen=True)
class _SharedStatistic:
    """A statistic whose hot arrays travel by handle.

    ``stripped`` is the statistic with its shared arrays removed (the
    ``without_shared_arrays`` protocol), so the pickled payload carries
    only scalars; the worker re-attaches the arrays with
    ``with_shared_arrays`` once per process.
    """

    handle: "object"
    prefix: str
    stripped: Callable

    @classmethod
    def pack(cls, statistic: Callable, handle, prefix: str) -> "_SharedStatistic":
        return cls(
            handle=handle,
            prefix=prefix,
            stripped=statistic.without_shared_arrays(),
        )

    def resolve(self) -> Callable:
        cached = _RESOLVED.get((self.handle.name, self.prefix))
        if cached is not None:
            return cached
        from repro.engine import shm

        views = shm.attach(self.handle)
        arrays = {
            key[len(self.prefix):]: view
            for key, view in views.items()
            if key.startswith(self.prefix)
        }
        statistic = self.stripped.with_shared_arrays(arrays)
        _RESOLVED[(self.handle.name, self.prefix)] = statistic
        return statistic


#: Per-worker-process resolution cache: (segment, key) -> rebuilt object.
_RESOLVED: Dict[Tuple[str, str], object] = {}


def _shares_arrays(statistic: Callable) -> bool:
    """Whether ``statistic`` implements the shared-array protocol
    (``shared_arrays`` / ``without_shared_arrays`` / ``with_shared_arrays``)."""
    return all(
        callable(getattr(statistic, name, None))
        for name in ("shared_arrays", "without_shared_arrays", "with_shared_arrays")
    )


def _resolve_shipment(control, statistic) -> Tuple[Report, Callable]:
    """Undo the shared-memory wrapping inside a worker (no-op otherwise)."""
    if isinstance(control, _SharedReport):
        control = control.resolve()
    if isinstance(statistic, _SharedStatistic):
        statistic = statistic.resolve()
    return control, statistic


def _prepare_shipment(control: Report, statistic: Callable):
    """Pack the evaluation's hot arrays into one shared segment.

    Returns ``(control, statistic, pack)`` — the first two possibly
    wrapped for cheap pickling, ``pack`` owned by the caller (unlink
    after the evaluation).  Any failure falls back to plain pickling
    with a warning: the transport must never change the results.
    """
    from repro.engine import shm

    if not (shm.available() and _shm_enabled()):
        return control, statistic, None
    arrays: Dict[str, np.ndarray] = {"control.addresses": control.addresses}
    stat_arrays: Dict[str, np.ndarray] = {}
    if _shares_arrays(statistic):
        stat_arrays = dict(statistic.shared_arrays())
        arrays.update({f"stat.{key}": value for key, value in stat_arrays.items()})
    try:
        pack = shm.SharedPack.create(arrays)
    except Exception as err:  # pragma: no cover - platform specific
        warn_event(
            "mc.shm.failed",
            f"shared-memory handoff unavailable ({err!r}); pickling instead",
            logger=log,
        )
        return control, statistic, None
    shipped_control = _SharedReport.pack(control, pack.handle, "control.addresses")
    shipped_statistic = statistic
    if stat_arrays:
        shipped_statistic = _SharedStatistic.pack(statistic, pack.handle, "stat.")
    obs_metrics.inc("mc.shm.bytes_shared", pack.handle.nbytes)
    return shipped_control, shipped_statistic, pack


class MonteCarloFailure(RuntimeError):
    """A Monte-Carlo evaluation that could not be completed.

    Raised only after every recovery path (chunk retries on fresh
    workers, then serial execution of the missing ranges) has been
    exhausted; the underlying error is chained as ``__cause__``.
    """


def naive_sample(size: int, rng: np.random.Generator, tag: str = "naive") -> Report:
    """Draw ``size`` addresses uniformly from IANA-populated /8s.

    Each draw picks an allocated first octet uniformly at random, then the
    remaining 24 bits uniformly.  Reserved sub-ranges inside allocated /8s
    are rejected and redrawn, matching the paper's report sanitisation,
    and the sample is drawn until it holds exactly ``size`` *distinct*
    addresses (reports are sets, so equal-cardinality comparisons need
    equal unique counts).
    """
    if size <= 0:
        raise ValueError(f"sample size must be positive: {size}")
    octets = np.asarray(sorted(allocated_octets()), dtype=np.uint32)
    seen = np.asarray([], dtype=np.uint32)
    while seen.size < size:
        need = size - seen.size
        chosen_octets = rng.choice(octets, size=need + 16)
        hosts = rng.integers(0, 1 << 24, size=need + 16, dtype=np.uint32)
        batch = (chosen_octets << np.uint32(24)) | hosts
        seen = np.union1d(seen, batch[~reserved_mask(batch)])
    if seen.size > size:
        seen = rng.choice(seen, size=size, replace=False)
    return Report(
        tag=tag,
        addresses=seen,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.NONE,
    )


def empirical_subsets(
    control: Report,
    size: int,
    count: int,
    rng: np.random.Generator,
) -> Iterator[Report]:
    """Yield ``count`` random equal-cardinality subsets of ``control``.

    This is the paper's empirical estimator: "we create 1000 randomly
    generated subsets of R_control" (§4.2).
    """
    if count <= 0:
        raise ValueError(f"subset count must be positive: {count}")
    for index in range(count):
        yield control.sample(size, rng, tag=f"{control.tag}[{index}]")


# -- parallel Monte Carlo --------------------------------------------------


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: explicit arg, else ``$REPRO_WORKERS``, else 1.

    A malformed environment value (non-integer, zero, negative) is
    clamped to serial with a warning rather than raising a
    ``ValueError`` deep inside a run — the environment is configuration,
    not code.  An explicit ``workers`` argument below 1 is still a
    programming error and raises.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV, "").strip()
        if not env:
            return 1
        try:
            value = int(env)
        except ValueError:
            warn_event(
                "workers.malformed",
                f"ignoring malformed ${WORKERS_ENV}={env!r} (not an "
                f"integer); running serial",
                logger=log,
            )
            return 1
        if value < 1:
            warn_event(
                "workers.clamped",
                f"clamping ${WORKERS_ENV}={value} to 1 worker (must be >= 1)",
                logger=log,
            )
            return 1
        return value
    if workers < 1:
        raise ValueError(f"workers must be >= 1: {workers}")
    return workers


def _run_trials(
    control: Report,
    size: int,
    start: int,
    stop: int,
    entropy: int,
    spawn_key: Tuple[int, ...],
    statistic: Callable[[Report], object],
) -> List[object]:
    """Per-trial reference: evaluate trials ``start..stop`` one ``Report``
    at a time (one spawned stream per trial)."""
    values = []
    for index in range(start, stop):
        rng = np.random.default_rng(trial_seed(entropy, spawn_key, index))
        subset = control.sample(size, rng, tag=f"{control.tag}[{index}]")
        values.append(statistic(subset))
    return values


def _run_chunk(
    control: Report,
    size: int,
    start: int,
    stop: int,
    entropy: int,
    spawn_key: Tuple[int, ...],
    statistic: Callable,
) -> np.ndarray:
    """One chunk of trials as a float array, batched when possible.

    A :class:`~repro.core.trials.TrialStatistic` evaluates the whole
    chunk as one :class:`TrialEnsemble`; a plain callable falls back to
    the per-trial reference loop.  Fault-injection sites fire here so
    both paths are supervised identically.
    """
    from repro.engine import faults

    faults.check("worker.crash")
    faults.check("worker.fail")
    faults.check("worker.slow")
    control, statistic = _resolve_shipment(control, statistic)
    if is_batched(statistic):
        ensemble = TrialEnsemble.draw(
            control, size, stop - start, entropy, spawn_key, start=start
        )
        return np.asarray(statistic.batch(ensemble), dtype=float)
    return np.asarray(
        _run_trials(control, size, start, stop, entropy, spawn_key, statistic),
        dtype=float,
    )


def _run_chunk_traced(
    control: Report,
    size: int,
    start: int,
    stop: int,
    entropy: int,
    spawn_key: Tuple[int, ...],
    statistic: Callable,
    traced: bool = False,
) -> Tuple[np.ndarray, Optional[dict], int]:
    """:func:`_run_chunk` plus an optional serialised worker span.

    Worker processes cannot share the supervisor's tracer, so when
    ``traced`` each chunk times itself in a private tracer and ships the
    finished span back as a dict for the supervisor to
    :func:`repro.obs.trace.attach` into the live tree.  The worker's
    peak RSS (KB) rides along either way, feeding the supervisor's
    ``mc.worker.peak_rss_kb`` gauge.
    """
    control, statistic = _resolve_shipment(control, statistic)
    if not traced:
        values = _run_chunk(
            control, size, start, stop, entropy, spawn_key, statistic
        )
        return values, None, _peak_rss_kb()
    worker_tracer = obs_trace.Tracer(enabled=True)
    with worker_tracer.span(
        "mc.chunk",
        start=start,
        stop=stop,
        pid=os.getpid(),
        batched=is_batched(statistic),
    ):
        values = _run_chunk(
            control, size, start, stop, entropy, spawn_key, statistic
        )
    return values, worker_tracer.roots[-1].to_dict(), _peak_rss_kb()


def _sanitized_name(name: str) -> str:
    """``name`` with a short raw-name hash appended (checkpoint key part).

    Sanitising alone is lossy — ``f(x)`` and ``f.x.`` both sanitise to
    ``f.x.`` — so the digest of the *raw* name keeps differently named
    statistics on different checkpoint keys.
    """
    sanitized = "".join(
        ch if ch.isalnum() or ch in "._-" else "." for ch in name
    )
    digest = hashlib.sha256(name.encode("utf-8")).hexdigest()[:8]
    return f"{sanitized}-{digest}"


def _statistic_tag(statistic: Callable) -> str:
    """A deterministic label for ``statistic`` (checkpoint key part).

    Batched statistics provide their own parameter-bearing ``label()``;
    partials hash their bound arguments; either way two parametrisations
    of the same function never share a key, and the raw-name hash in
    :func:`_sanitized_name` keeps sanitisation collisions apart.
    """
    label = getattr(statistic, "label", None)
    if callable(label):
        return _sanitized_name(str(label()))
    if isinstance(statistic, functools.partial):
        inner = _statistic_tag(statistic.func)
        bound = repr(statistic.args) + repr(sorted(statistic.keywords.items()))
        digest = hashlib.sha256(bound.encode("utf-8")).hexdigest()[:12]
        return f"{inner}-{digest}"
    name = getattr(statistic, "__qualname__", None) or type(statistic).__name__
    return _sanitized_name(name)


def _mc_spans(count: int, workers: int, chunk_size: Optional[int]) -> List[Tuple[int, int]]:
    """The contiguous ``(lo, hi)`` trial ranges one evaluation fans out."""
    if chunk_size is None:
        chunk_size = max(1, math.ceil(count / (workers * 4)))
    return [(lo, min(lo + chunk_size, count)) for lo in range(0, count, chunk_size)]


def _mc_checkpoint_prefix(
    entropy: int,
    spawn_key: Tuple[int, ...],
    size: int,
    count: int,
    statistic: Callable,
) -> str:
    """Store-key prefix identifying one evaluation's chunk checkpoints.

    The root entropy is a fresh 128-bit draw from the caller's rng, so
    the same rng state — and only the same rng state — resumes the same
    checkpoints; the statistic tag keeps two different statistics fed
    from one rng state apart.
    """
    key = ".".join(str(part) for part in spawn_key) or "root"
    return f"mc-{entropy:032x}-{key}/{_statistic_tag(statistic)}-{size}x{count}"


def monte_carlo(
    control: Report,
    size: int,
    count: int,
    rng: np.random.Generator,
    statistic: Callable[[Report], object],
    workers: Optional[int] = None,
    chunk_size: Optional[int] = None,
    checkpoint: bool = True,
    max_chunk_retries: int = 2,
    chunk_timeout: Optional[float] = None,
) -> np.ndarray:
    """Evaluate ``statistic`` over ``count`` random control subsets.

    ``statistic`` may return a scalar (result shape ``(count,)``) or a
    fixed-length sequence (result shape ``(count, k)``); callers
    summarise the array with :func:`repro.core.stats.summarize` or
    compare an observed value via
    :func:`repro.core.stats.exceedance_fraction`.

    ``workers > 1`` distributes contiguous trial chunks over a process
    pool; because every trial owns a spawned seed-sequence child, the
    result is bit-identical to the serial evaluation.  ``statistic``
    must be picklable (a module-level function or ``functools.partial``
    of one) when running in parallel.

    The parallel path is supervised: failed or timed-out chunks are
    retried ``max_chunk_retries`` times on fresh pools, a broken pool
    (a worker died) falls back to serial execution of only the missing
    ranges, and — with ``checkpoint=True`` — completed chunks persist
    through the default artifact store, so rerunning an interrupted
    evaluation with the same rng state resumes where it stopped.  When
    no recovery path completes, :class:`MonteCarloFailure` is raised.
    """
    if count <= 0:
        raise ValueError(f"subset count must be positive: {count}")
    workers = resolve_workers(workers)
    # One draw from the caller's rng anchors the whole evaluation: the
    # root sequence (and thus every trial) is deterministic in the rng
    # state, independent of worker count or chunking.
    root = np.random.SeedSequence(int.from_bytes(rng.bytes(16), "little"))
    entropy, spawn_key = root.entropy, root.spawn_key

    batched = is_batched(statistic)
    obs_metrics.inc("mc.trials", count)
    obs_metrics.inc("mc.streams", count)  # one spawned rng stream per trial
    if batched:
        obs_metrics.inc("mc.batched_trials", count)
    with obs_trace.span(
        "monte_carlo",
        trials=count,
        workers=workers,
        batched=batched,
        entropy=f"{entropy:032x}",
    ):
        if workers == 1 or count == 1:
            with obs_trace.span(
                "mc.chunk", start=0, stop=count, batched=batched
            ):
                return _run_chunk(
                    control, size, 0, count, entropy, spawn_key, statistic
                )
        return _supervised_monte_carlo(
            control, size, count, entropy, spawn_key, statistic,
            workers=workers, chunk_size=chunk_size, checkpoint=checkpoint,
            max_chunk_retries=max_chunk_retries, chunk_timeout=chunk_timeout,
        )


def _supervised_monte_carlo(
    control: Report,
    size: int,
    count: int,
    entropy: int,
    spawn_key: Tuple[int, ...],
    statistic: Callable[[Report], object],
    workers: int,
    chunk_size: Optional[int],
    checkpoint: bool,
    max_chunk_retries: int,
    chunk_timeout: Optional[float],
) -> np.ndarray:
    from repro.engine.store import MISS, ArrayCodec, default_store

    spans = _mc_spans(count, workers, chunk_size)
    results: Dict[Tuple[int, int], np.ndarray] = {}

    store = default_store() if checkpoint else None
    codec = ArrayCodec()
    prefix = _mc_checkpoint_prefix(entropy, spawn_key, size, count, statistic)

    def _chunk_key(span: Tuple[int, int]) -> str:
        return f"{prefix}/chunk-{span[0]}-{span[1]}"

    if store is not None:
        for span in spans:
            cached = store.get(_chunk_key(span), codec)
            if cached is not MISS:
                results[span] = np.asarray(cached, dtype=float)
        if results:
            obs_metrics.inc("mc.chunks_resumed", len(results))
            log.info(
                "monte_carlo resumed chunks=%d/%d prefix=%s",
                len(results), len(spans), prefix,
            )

    # Ship the hot arrays (control addresses, statistic block sets) to
    # workers through one shared-memory segment; each chunk submission
    # then pickles a handle instead of megabytes of columns.  Falls back
    # to plain pickling transparently when shm is unavailable.
    ship_control, ship_statistic, pack = _prepare_shipment(control, statistic)
    hot_bytes = int(control.addresses.nbytes)
    if _shares_arrays(statistic):
        hot_bytes += int(
            sum(np.asarray(a).nbytes for a in statistic.shared_arrays().values())
        )

    pending = [span for span in spans if span not in results]
    attempts = 0
    pool_broken = False
    worker_peak_rss = 0
    traced = obs_trace.enabled()
    try:
        while pending and not pool_broken and attempts <= max_chunk_retries:
            if attempts:
                obs_metrics.inc("mc.chunk_retries", len(pending))
                log.warning(
                    "monte_carlo retrying chunks=%d on a fresh pool attempt=%d",
                    len(pending), attempts,
                )
            pool = ProcessPoolExecutor(max_workers=workers)
            wait_for_pool = True
            if pack is not None:
                obs_metrics.inc("mc.shm.bytes_avoided", hot_bytes * len(pending))
            else:
                obs_metrics.inc("mc.pickle.bytes_shipped", hot_bytes * len(pending))
            try:
                futures = {
                    pool.submit(
                        _run_chunk_traced,
                        ship_control, size, lo, hi, entropy, spawn_key,
                        ship_statistic, traced,
                    ): (lo, hi)
                    for lo, hi in pending
                }
                for future, span in futures.items():
                    try:
                        values, span_dict, rss_kb = future.result(
                            timeout=chunk_timeout
                        )
                    except BrokenProcessPool:
                        pool_broken = True
                        break
                    except FuturesTimeoutError:
                        log.warning(
                            "monte_carlo chunk %s timed out after %.1fs",
                            span, chunk_timeout,
                        )
                        # A hung worker would block the pool's exit; abandon
                        # the whole pool and let the retry loop replace it.
                        wait_for_pool = False
                        break
                    except Exception as err:
                        log.warning(
                            "monte_carlo chunk %s failed err=%r", span, err
                        )
                    else:
                        if span_dict is not None:
                            obs_trace.attach(span_dict)
                            obs_metrics.observe(
                                "mc.chunk_seconds", float(span_dict["wall"])
                            )
                        if rss_kb > worker_peak_rss:
                            worker_peak_rss = rss_kb
                            obs_metrics.set_gauge(
                                "mc.worker.peak_rss_kb", worker_peak_rss
                            )
                        arr = np.asarray(values, dtype=float)
                        results[span] = arr
                        if store is not None:
                            store.put(_chunk_key(span), arr, codec)
            except BrokenProcessPool:
                pool_broken = True
            finally:
                pool.shutdown(wait=wait_for_pool, cancel_futures=True)
            pending = [span for span in spans if span not in results]
            attempts += 1
    finally:
        if pack is not None:
            pack.unlink()

    if pending:
        obs_metrics.inc("mc.serial_fallback", len(pending))
        log.warning(
            "monte_carlo falling back to serial for %d missing chunk(s)%s",
            len(pending), " (process pool broke)" if pool_broken else "",
        )
        for lo, hi in pending:
            try:
                values = _run_chunk(
                    control, size, lo, hi, entropy, spawn_key, statistic
                )
            except Exception as err:
                raise MonteCarloFailure(
                    f"trials {lo}..{hi} failed in parallel workers and in "
                    f"the serial fallback"
                ) from err
            results[(lo, hi)] = values

    out = np.concatenate([results[span] for span in spans], axis=0)
    if store is not None:
        for span in spans:
            store.drop(_chunk_key(span))
    obs_metrics.set_gauge("mc.supervisor.peak_rss_kb", _peak_rss_kb())
    return out
