"""Control-population samplers for the uncleanliness tests.

The paper compares unclean reports against two control models (§4.2):

* the **naive** estimate, which "selects addresses evenly from across all
  /8's which are listed as populated by IANA", and
* the **empirical** estimate, which draws random subsets of the control
  report (addresses actually observed in payload-bearing TCP traffic),
  reflecting Kohler et al.'s observation that real addresses are highly
  non-uniform in IPv4 space.

Figure 2 shows the naive estimate badly over-disperses, so the paper (and
this library) uses the empirical estimate everywhere else.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Sequence

import numpy as np

from repro.core.report import DataClass, Report, ReportType
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask

__all__ = [
    "naive_sample",
    "empirical_subsets",
    "monte_carlo",
]


def naive_sample(size: int, rng: np.random.Generator, tag: str = "naive") -> Report:
    """Draw ``size`` addresses uniformly from IANA-populated /8s.

    Each draw picks an allocated first octet uniformly at random, then the
    remaining 24 bits uniformly.  Reserved sub-ranges inside allocated /8s
    are rejected and redrawn, matching the paper's report sanitisation,
    and the sample is drawn until it holds exactly ``size`` *distinct*
    addresses (reports are sets, so equal-cardinality comparisons need
    equal unique counts).
    """
    if size <= 0:
        raise ValueError(f"sample size must be positive: {size}")
    octets = np.asarray(sorted(allocated_octets()), dtype=np.uint32)
    seen = np.asarray([], dtype=np.uint32)
    while seen.size < size:
        need = size - seen.size
        chosen_octets = rng.choice(octets, size=need + 16)
        hosts = rng.integers(0, 1 << 24, size=need + 16, dtype=np.uint32)
        batch = (chosen_octets << np.uint32(24)) | hosts
        seen = np.union1d(seen, batch[~reserved_mask(batch)])
    if seen.size > size:
        seen = rng.choice(seen, size=size, replace=False)
    return Report(
        tag=tag,
        addresses=seen,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.NONE,
    )


def empirical_subsets(
    control: Report,
    size: int,
    count: int,
    rng: np.random.Generator,
) -> Iterator[Report]:
    """Yield ``count`` random equal-cardinality subsets of ``control``.

    This is the paper's empirical estimator: "we create 1000 randomly
    generated subsets of R_control" (§4.2).
    """
    if count <= 0:
        raise ValueError(f"subset count must be positive: {count}")
    for index in range(count):
        yield control.sample(size, rng, tag=f"{control.tag}[{index}]")


def monte_carlo(
    control: Report,
    size: int,
    count: int,
    rng: np.random.Generator,
    statistic: Callable[[Report], float],
) -> np.ndarray:
    """Evaluate ``statistic`` over ``count`` random control subsets.

    Returns the array of statistic values; callers summarise it with
    :func:`repro.core.stats.summarize` or compare an observed value via
    :func:`repro.core.stats.exceedance_fraction`.
    """
    values = [
        statistic(subset)
        for subset in empirical_subsets(control, size, count, rng)
    ]
    return np.asarray(values, dtype=float)
