"""End-to-end construction of the paper's datasets.

:class:`PaperScenario` wires the whole reproduction together: it generates
the synthetic Internet, runs the botnet and phishing ecosystems across the
2006 study year, captures October 1st-14th border traffic, runs the
detectors, and materialises every report of Table 1 (bot, phish, scan,
spam, bot-test, control) plus the Table 2 union report — all
deterministically from one seed.

Scale note: report sizes default to roughly 1/64 of the paper's (e.g.
~10k provided bot addresses instead of 621,861) except the small
hypothesis-testing reports (bot-test at 186 addresses), which are kept at
natural size because their absolute cardinality drives the statistics of
Figures 4-5.  Every analysis in the library is an equal-cardinality
comparison, so scaling preserves shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.blocking import (
    BlockingResult,
    CandidatePartition,
    blocking_test,
    partition_candidates,
)
from repro.core.report import DataClass, Report, ReportType
from repro.detect.botlog import BotLogConfig, BotLogMonitor
from repro.detect.phishlist import PhishListAggregator, PhishListConfig
from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.detect.spam import SpamDetector, SpamDetectorConfig
from repro.flows.generator import BorderTraffic, TrafficConfig, TrafficGenerator
from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.phishing import PhishingConfig, PhishingSimulation
from repro.sim.timeline import PAPER_WINDOWS, Window

__all__ = ["ScenarioConfig", "PaperScenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to rebuild the paper's datasets from a seed."""

    seed: int = 20_061_001

    internet: InternetConfig = field(default_factory=InternetConfig)
    botnet: BotnetConfig = field(default_factory=BotnetConfig)
    phishing: PhishingConfig = field(default_factory=PhishingConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    monitor: BotLogConfig = field(default_factory=BotLogConfig)
    phishlist: PhishListConfig = field(default_factory=PhishListConfig)
    scan_detector: ScanDetectorConfig = field(default_factory=ScanDetectorConfig)
    spam_detector: SpamDetectorConfig = field(default_factory=SpamDetectorConfig)

    #: Unique control addresses to draw (the paper saw 46.9M).
    control_size: int = 250_000

    #: C&C channels the provided October bot feed covers.  Real feeds see
    #: only the botnets they have infiltrated; half coverage is generous.
    bot_report_channels: Tuple[int, ...] = tuple(range(5))

    #: The separate small botnet behind R_bot-test ("acquired through
    #: private communication", five months earlier).
    bot_test_channel: int = 8

    #: Cardinality of R_bot-test (the paper's report had 186 addresses).
    bot_test_size: int = 186

    #: Optional cap on R_phish-test (paper: 1386); None keeps all.
    phish_test_size: Optional[int] = None

    def validate(self) -> None:
        if self.control_size <= 0:
            raise ValueError("control_size must be positive")
        if self.bot_test_size <= 0:
            raise ValueError("bot_test_size must be positive")
        channels = set(self.bot_report_channels) | {self.bot_test_channel}
        if any(not 0 <= c < self.botnet.num_channels for c in channels):
            raise ValueError("channel index outside botnet.num_channels")
        if self.bot_test_channel in self.bot_report_channels:
            raise ValueError(
                "bot_test_channel must be disjoint from bot_report_channels: "
                "the paper's R_bot-test is an unrelated botnet"
            )

    @classmethod
    def small(cls, seed: int = 7) -> "ScenarioConfig":
        """A fast configuration for tests: ~100x smaller than default."""
        return cls(
            seed=seed,
            internet=InternetConfig(num_slash16=80, mean_hosts=25.0),
            botnet=BotnetConfig(daily_compromises=30.0, num_channels=12),
            phishing=PhishingConfig(daily_sites=6.0),
            traffic=TrafficConfig(
                benign_clients_per_day=150, suspicious_hosts=700
            ),
            control_size=20_000,
            bot_test_size=120,
        )


class PaperScenario:
    """The built datasets: simulations, traffic, and all reports."""

    def __init__(self, config: Optional[ScenarioConfig] = None) -> None:
        self.config = config or ScenarioConfig()
        self.config.validate()
        self._build()

    # -- construction -----------------------------------------------------

    def _build(self) -> None:
        cfg = self.config
        seeds = np.random.SeedSequence(cfg.seed).spawn(8)
        rngs = [np.random.default_rng(s) for s in seeds]

        self.internet = SyntheticInternet(cfg.internet, rngs[0])
        self.botnet = BotnetSimulation(self.internet, cfg.botnet, rngs[1])
        self.phishing = PhishingSimulation(self.internet, cfg.phishing, rngs[2])

        generator = TrafficGenerator(self.internet, self.botnet, cfg.traffic)
        self.october_traffic: BorderTraffic = generator.generate(
            PAPER_WINDOWS.OCTOBER, rngs[3]
        )

        self.reports: Dict[str, Report] = {}
        self._build_observed_reports(rngs[4])
        self._build_provided_reports(rngs[5])
        self._build_test_reports(rngs[6])
        self._build_control(rngs[7])
        self.reports["unclean"] = self._union_report()

    def _build_observed_reports(self, rng: np.random.Generator) -> None:
        """Run the detectors over the October border capture."""
        cfg = self.config
        window = PAPER_WINDOWS.OCTOBER
        flows = self.october_traffic.flows

        scanners = ScanDetector(cfg.scan_detector).detect(flows)
        self.reports["scan"] = Report(
            tag="scan",
            addresses=scanners,
            report_type=ReportType.OBSERVED,
            data_class=DataClass.SCANNING,
            period=window.dates(),
        ).without_reserved()

        spammers = SpamDetector(cfg.spam_detector).detect(flows)
        self.reports["spam"] = Report(
            tag="spam",
            addresses=spammers,
            report_type=ReportType.OBSERVED,
            data_class=DataClass.SPAM,
            period=window.dates(),
        ).without_reserved()

    def _build_provided_reports(self, rng: np.random.Generator) -> None:
        """The third-party feeds: October bots, six-month phishing."""
        cfg = self.config
        monitor = BotLogMonitor(cfg.monitor)
        bots = monitor.observe(
            self.botnet,
            PAPER_WINDOWS.OCTOBER,
            rng,
            channels=cfg.bot_report_channels,
        )
        self.reports["bot"] = Report(
            tag="bot",
            addresses=bots,
            report_type=ReportType.PROVIDED,
            data_class=DataClass.BOTS,
            period=PAPER_WINDOWS.OCTOBER.dates(),
        ).without_reserved()

        phishlist = PhishListAggregator(cfg.phishlist)
        phish = phishlist.observe(self.phishing, PAPER_WINDOWS.PHISH, rng)
        self.reports["phish"] = Report(
            tag="phish",
            addresses=phish,
            report_type=ReportType.PROVIDED,
            data_class=DataClass.PHISHING,
            period=PAPER_WINDOWS.PHISH.dates(),
        ).without_reserved()

        # R_phish-present: the October sub-report of R_phish used as the
        # prediction target in Figures 4(ii) and 5.
        phish_present = phishlist.observe(self.phishing, PAPER_WINDOWS.OCTOBER, rng)
        self.reports["phish-present"] = Report(
            tag="phish-present",
            addresses=phish_present,
            report_type=ReportType.PROVIDED,
            data_class=DataClass.PHISHING,
            period=PAPER_WINDOWS.OCTOBER.dates(),
        ).without_reserved()

    def _build_test_reports(self, rng: np.random.Generator) -> None:
        """R_bot-test (May 10) and R_phish-test (May listings)."""
        cfg = self.config
        members = self.botnet.channel_members(
            cfg.bot_test_channel, PAPER_WINDOWS.BOT_TEST
        )
        if members.size > cfg.bot_test_size:
            members = rng.choice(members, size=cfg.bot_test_size, replace=False)
        self.reports["bot-test"] = Report(
            tag="bot-test",
            addresses=members,
            report_type=ReportType.PROVIDED,
            data_class=DataClass.BOTS,
            period=PAPER_WINDOWS.BOT_TEST.dates(),
        ).without_reserved()

        phishlist = PhishListAggregator(cfg.phishlist)
        phish_test = phishlist.observe(self.phishing, PAPER_WINDOWS.PHISH_TEST, rng)
        if cfg.phish_test_size is not None and phish_test.size > cfg.phish_test_size:
            phish_test = rng.choice(phish_test, size=cfg.phish_test_size, replace=False)
        self.reports["phish-test"] = Report(
            tag="phish-test",
            addresses=phish_test,
            report_type=ReportType.PROVIDED,
            data_class=DataClass.PHISHING,
            period=PAPER_WINDOWS.PHISH_TEST.dates(),
        ).without_reserved()

    def _build_control(self, rng: np.random.Generator) -> None:
        """R_control: active addresses at the vantage, population-weighted.

        The paper's control is every address seen in payload-bearing TCP
        during the week of September 25th (46.9M of them).  At
        reproduction scale we draw the configured number of distinct live
        hosts weighted by network population — the same "active address
        at a busy vantage" distribution — rather than generating a week
        of full-Internet traffic.
        """
        addresses = self.internet.sample_unique_hosts(
            self.config.control_size, rng
        )
        self.reports["control"] = Report(
            tag="control",
            addresses=addresses,
            report_type=ReportType.OBSERVED,
            data_class=DataClass.NONE,
            period=PAPER_WINDOWS.CONTROL.dates(),
        ).without_reserved()

    def _union_report(self) -> Report:
        """R_unclean: the union of the four unclean reports (Table 2)."""
        union = (
            self.reports["bot"]
            | self.reports["phish"]
            | self.reports["scan"]
            | self.reports["spam"]
        )
        return Report(
            tag="unclean",
            addresses=union.addresses,
            report_type=ReportType.PROVIDED,
            data_class=DataClass.SPECIAL,
            period=PAPER_WINDOWS.OCTOBER.dates(),
        )

    # -- access ------------------------------------------------------------

    def report(self, tag: str) -> Report:
        """Look up a report by its Table 1/2 tag."""
        try:
            return self.reports[tag]
        except KeyError:
            raise KeyError(
                f"no report tagged {tag!r}; have {sorted(self.reports)}"
            ) from None

    @property
    def bot(self) -> Report:
        return self.reports["bot"]

    @property
    def phish(self) -> Report:
        return self.reports["phish"]

    @property
    def scan(self) -> Report:
        return self.reports["scan"]

    @property
    def spam(self) -> Report:
        return self.reports["spam"]

    @property
    def bot_test(self) -> Report:
        return self.reports["bot-test"]

    @property
    def phish_test(self) -> Report:
        return self.reports["phish-test"]

    @property
    def phish_present(self) -> Report:
        return self.reports["phish-present"]

    @property
    def control(self) -> Report:
        return self.reports["control"]

    @property
    def unclean(self) -> Report:
        return self.reports["unclean"]

    def table1_rows(self) -> List[dict]:
        """The report inventory in the shape of the paper's Table 1."""
        order = ["bot", "phish", "scan", "spam", "bot-test", "control"]
        return [self.reports[tag].summary_row() for tag in order]

    # -- §6 blocking --------------------------------------------------------

    @cached_property
    def partition(self) -> CandidatePartition:
        """The Table 2 candidate partition over October traffic."""
        return partition_candidates(
            self.october_traffic.flows, self.bot_test, self.unclean
        )

    def blocking(self) -> BlockingResult:
        """Table 3: the virtual blocking scores."""
        return blocking_test(self.partition, self.bot_test)

    def __repr__(self) -> str:
        sizes = {tag: len(r) for tag, r in self.reports.items()}
        return f"PaperScenario(seed={self.config.seed}, reports={sizes})"
