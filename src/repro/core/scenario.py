"""End-to-end construction of the paper's datasets.

:class:`PaperScenario` wires the whole reproduction together: it generates
the synthetic Internet, runs the botnet and phishing ecosystems across the
2006 study year, captures October 1st-14th border traffic, runs the
detectors, and materialises every report of Table 1 (bot, phish, scan,
spam, bot-test, control) plus the Table 2 union report — all
deterministically from one seed.

Since the staged-artifact refactor, :class:`PaperScenario` is a thin
facade over the engine pipeline of :mod:`repro.core.stages`: nothing is
simulated until an attribute is first touched, and every stage value is
cached in the fingerprint-keyed artifact store
(:mod:`repro.engine.store`), so scenarios sharing a configuration —
across experiments, benchmarks and even across processes for the
disk-persisted report stages — are built exactly once.

Scale note: report sizes default to roughly 1/64 of the paper's (e.g.
~10k provided bot addresses instead of 621,861) except the small
hypothesis-testing reports (bot-test at 186 addresses), which are kept at
natural size because their absolute cardinality drives the statistics of
Figures 4-5.  Every analysis in the library is an equal-cardinality
comparison, so scaling preserves shape.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.blocking import BlockingResult, CandidatePartition, blocking_test
from repro.core.report import Report
from repro.detect.botlog import BotLogConfig
from repro.detect.phishlist import PhishListConfig
from repro.detect.scan import ScanDetectorConfig
from repro.detect.spam import SpamDetectorConfig
from repro.engine.fingerprint import addendum_field
from repro.engine.fingerprint import fingerprint as _fingerprint
from repro.flows.generator import BorderTraffic, TrafficConfig
from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.phishing import PhishingConfig, PhishingSimulation

__all__ = ["ScenarioConfig", "PaperScenario"]


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to rebuild the paper's datasets from a seed."""

    seed: int = 20_061_001

    internet: InternetConfig = field(default_factory=InternetConfig)
    botnet: BotnetConfig = field(default_factory=BotnetConfig)
    phishing: PhishingConfig = field(default_factory=PhishingConfig)
    traffic: TrafficConfig = field(default_factory=TrafficConfig)
    monitor: BotLogConfig = field(default_factory=BotLogConfig)
    phishlist: PhishListConfig = field(default_factory=PhishListConfig)
    scan_detector: ScanDetectorConfig = field(default_factory=ScanDetectorConfig)
    spam_detector: SpamDetectorConfig = field(default_factory=SpamDetectorConfig)

    #: Unique control addresses to draw (the paper saw 46.9M).
    control_size: int = 250_000

    #: C&C channels the provided October bot feed covers.  Real feeds see
    #: only the botnets they have infiltrated; half coverage is generous.
    bot_report_channels: Tuple[int, ...] = tuple(range(5))

    #: The separate small botnet behind R_bot-test ("acquired through
    #: private communication", five months earlier).
    bot_test_channel: int = 8

    #: Cardinality of R_bot-test (the paper's report had 186 addresses).
    bot_test_size: int = 186

    #: Optional cap on R_phish-test (paper: 1386); None keeps all.
    phish_test_size: Optional[int] = None

    #: Sinkhole-takedown feed dynamics (fingerprint addenda, omitted at
    #: default).  From ``bot_feed_dark_from_day`` the provided bot feed
    #: loses live visibility (its infiltrated channels were seized); if
    #: ``bot_feed_stale_days`` > 0 the feed then floods the addresses it
    #: sighted over the preceding that-many days — long-cleaned machines
    #: republished as if current.  -1 / 0 keep the paper's feed.
    bot_feed_dark_from_day: int = addendum_field(default=-1)
    bot_feed_stale_days: int = addendum_field(default=0)

    def validate(self) -> None:
        # Surface bad sub-config values here, with their own clear
        # ValueErrors, instead of as numpy broadcast errors deep in
        # generation.
        for sub in (
            self.internet,
            self.botnet,
            self.phishing,
            self.traffic,
            self.monitor,
            self.phishlist,
            self.scan_detector,
            self.spam_detector,
        ):
            sub_validate = getattr(sub, "validate", None)
            if sub_validate is not None:
                sub_validate()
        if self.control_size <= 0:
            raise ValueError("control_size must be positive")
        if self.bot_test_size <= 0:
            raise ValueError("bot_test_size must be positive")
        if self.bot_feed_stale_days < 0:
            raise ValueError("bot_feed_stale_days must be non-negative")
        if self.bot_feed_stale_days > 0 and self.bot_feed_dark_from_day < 1:
            raise ValueError(
                "a stale flood needs bot_feed_dark_from_day >= 1 (the feed "
                "replays the days before it went dark)"
            )
        if self.bot_feed_dark_from_day >= self.botnet.horizon_days:
            raise ValueError(
                "bot_feed_dark_from_day is past the botnet horizon"
            )
        channels = set(self.bot_report_channels) | {self.bot_test_channel}
        if any(not 0 <= c < self.botnet.num_channels for c in channels):
            raise ValueError("channel index outside botnet.num_channels")
        if self.bot_test_channel in self.bot_report_channels:
            raise ValueError(
                "bot_test_channel must be disjoint from bot_report_channels: "
                "the paper's R_bot-test is an unrelated botnet"
            )

    def fingerprint(self) -> str:
        """A stable hash of *every* field (not just the seed).

        Two configs sharing a seed but differing anywhere — even deep in
        a sub-config — fingerprint differently; the artifact store and
        :func:`repro.experiments.common.default_scenario` key on this.
        """
        return _fingerprint(self)

    @classmethod
    def small(cls, seed: int = 7) -> "ScenarioConfig":
        """A fast configuration for tests: ~100x smaller than default."""
        return cls(
            seed=seed,
            internet=InternetConfig(num_slash16=80, mean_hosts=25.0),
            botnet=BotnetConfig(daily_compromises=30.0, num_channels=12),
            phishing=PhishingConfig(daily_sites=6.0),
            traffic=TrafficConfig(
                benign_clients_per_day=150, suspicious_hosts=700
            ),
            control_size=20_000,
            bot_test_size=120,
        )


_DIRECT_INIT_WARNED = False


def _warn_direct_construction() -> None:
    global _DIRECT_INIT_WARNED
    if _DIRECT_INIT_WARNED:
        return
    _DIRECT_INIT_WARNED = True
    warnings.warn(
        "constructing PaperScenario directly is deprecated; use "
        "repro.api.run_scenario(), which shares scenarios per config "
        "fingerprint and returns a frozen ScenarioRun handle",
        DeprecationWarning,
        stacklevel=3,
    )


class PaperScenario:
    """Lazy facade over the staged pipeline; same attribute API as ever.

    Touching :attr:`internet`, :attr:`botnet`, :attr:`phishing`,
    :attr:`october_traffic`, :attr:`reports` or :attr:`partition`
    resolves the corresponding stage through the artifact store —
    nothing is simulated at construction time.
    """

    def __init__(self, config: Optional[ScenarioConfig] = None, *, engine=None) -> None:
        _warn_direct_construction()
        self._init(config, engine=engine)

    @classmethod
    def _create(
        cls, config: Optional[ScenarioConfig] = None, *, engine=None
    ) -> "PaperScenario":
        """Internal constructor: no deprecation warning.

        Library code (``repro.api``, the CLI, benchmarks) goes through
        here; the public path is :func:`repro.api.run_scenario`.
        """
        scenario = object.__new__(cls)
        scenario._init(config, engine=engine)
        return scenario

    def _init(self, config: Optional[ScenarioConfig], *, engine=None) -> None:
        self.config = config or ScenarioConfig()
        self.config.validate()
        if engine is None:
            from repro.core.stages import scenario_engine

            engine = scenario_engine()
        self._engine = engine

    # -- stage access ------------------------------------------------------

    @property
    def engine(self):
        """The stage engine resolving this scenario's artifacts."""
        return self._engine

    @property
    def internet(self) -> SyntheticInternet:
        return self._engine.resolve(self.config, "internet")

    @property
    def asys(self):
        """The AS topology announcing the occupied space
        (:class:`repro.sim.asys.ASTopology`; flat in the default world)."""
        return self._engine.resolve(self.config, "asys")

    @property
    def botnet(self) -> BotnetSimulation:
        return self._engine.resolve(self.config, "botnet")

    @property
    def phishing(self) -> PhishingSimulation:
        return self._engine.resolve(self.config, "phishing")

    @property
    def october_traffic(self) -> BorderTraffic:
        return self._engine.resolve(self.config, "traffic")

    @property
    def reports(self) -> Dict[str, Report]:
        return self._engine.resolve(self.config, "reports")

    # -- access ------------------------------------------------------------

    def report(self, tag: str) -> Report:
        """Look up a report by its Table 1/2 tag."""
        try:
            return self.reports[tag]
        except KeyError:
            raise KeyError(
                f"no report tagged {tag!r}; have {sorted(self.reports)}"
            ) from None

    @property
    def bot(self) -> Report:
        return self.reports["bot"]

    @property
    def phish(self) -> Report:
        return self.reports["phish"]

    @property
    def scan(self) -> Report:
        return self.reports["scan"]

    @property
    def spam(self) -> Report:
        return self.reports["spam"]

    @property
    def bot_test(self) -> Report:
        return self.reports["bot-test"]

    @property
    def phish_test(self) -> Report:
        return self.reports["phish-test"]

    @property
    def phish_present(self) -> Report:
        return self.reports["phish-present"]

    @property
    def control(self) -> Report:
        return self.reports["control"]

    @property
    def unclean(self) -> Report:
        return self.reports["unclean"]

    def table1_rows(self) -> List[dict]:
        """The report inventory in the shape of the paper's Table 1."""
        order = ["bot", "phish", "scan", "spam", "bot-test", "control"]
        return [self.reports[tag].summary_row() for tag in order]

    # -- §6 blocking --------------------------------------------------------

    @property
    def partition(self) -> CandidatePartition:
        """The Table 2 candidate partition over October traffic."""
        return self._engine.resolve(self.config, "partition")

    def blocking(self) -> BlockingResult:
        """Table 3: the virtual blocking scores."""
        return blocking_test(self.partition, self.bot_test)

    def __repr__(self) -> str:
        sizes = {tag: len(r) for tag, r in self.reports.items()}
        return f"PaperScenario(seed={self.config.seed}, reports={sizes})"
