"""The scenario pipeline as engine stages.

This is the old monolithic :meth:`PaperScenario._build` split into lazy,
independently-cacheable stages:

========== ============================== =====================
stage      value                          persistence
========== ============================== =====================
internet   :class:`SyntheticInternet`     memory only
asys       :class:`ASTopology` (view)     memory only
botnet     :class:`BotnetSimulation`      memory only
phishing   :class:`PhishingSimulation`    memory only
traffic    :class:`BorderTraffic`         memory only
reports    ``{tag: Report}`` (Table 1/2)  memory + disk (npz)
partition  :class:`CandidatePartition`    memory + disk (npz)
========== ============================== =====================

``asys`` is a *derived view* of the internet stage (the topology is
drawn inside :meth:`SyntheticInternet._generate` so that direct
construction and the staged path realise identical worlds); it exists as
a stage so fleet shards and the cluster statistics can resolve the AS
layer through the same cache, and it never builds on warm runs because
nothing on the warm path depends on it.

Each stage draws from its own dedicated RNG stream — stream *i* of
``SeedSequence(config.seed).spawn(8)``, exactly the streams the eager
constructor used — so the staged pipeline is bit-identical to the
original build no matter which stages happen to be cached.

Reports and the §6 partition are plain address data, so they persist to
disk: a warm run of Table 2/3 or Figures 2-5 performs **no** internet or
botnet simulation at all (the stage-hit counters of the engine prove
this in the tests).
"""

from __future__ import annotations

import logging
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.core import folds
from repro.core.blocking import CandidatePartition, partition_candidates
from repro.core.report import DataClass, Report, ReportType
from repro.detect.botlog import BotLogMonitor
from repro.detect.phishlist import PhishListAggregator
from repro.detect.scan import ScanDetector
from repro.detect.spam import SpamDetector
from repro.engine.stage import Stage, StageContext, StageEngine
from repro.engine.store import (
    ArtifactStore,
    PartitionCodec,
    ReportMappingCodec,
    default_store,
)
from repro.flows.generator import BorderTraffic, TrafficGenerator
from repro.sim.botnet import BotnetSimulation
from repro.sim.internet import SyntheticInternet
from repro.sim.phishing import PhishingSimulation
from repro.sim.timeline import PAPER_WINDOWS, Window

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.core.scenario import ScenarioConfig

__all__ = ["SCENARIO_STAGES", "scenario_engine", "reset_scenario_engine"]

log = logging.getLogger("repro.engine.scenario")


def _rng(config: "ScenarioConfig", stream: int) -> np.random.Generator:
    """Stream ``stream`` of the scenario's eight seed streams."""
    seeds = np.random.SeedSequence(config.seed).spawn(8)
    return np.random.default_rng(seeds[stream])


# -- builders (one per stage) ---------------------------------------------


def _build_internet(ctx: StageContext) -> SyntheticInternet:
    return SyntheticInternet(ctx.config.internet, _rng(ctx.config, 0))


def _build_asys(ctx: StageContext):
    # A derived view, not an independent draw: the topology is realised
    # inside the internet stage so both access paths agree bit-for-bit.
    return ctx.dep("internet").topology


def _build_botnet(ctx: StageContext) -> BotnetSimulation:
    return BotnetSimulation(
        ctx.dep("internet"), ctx.config.botnet, _rng(ctx.config, 1)
    )


def _build_phishing(ctx: StageContext) -> PhishingSimulation:
    return PhishingSimulation(
        ctx.dep("internet"), ctx.config.phishing, _rng(ctx.config, 2)
    )


def _build_traffic(ctx: StageContext) -> BorderTraffic:
    generator = TrafficGenerator(
        ctx.dep("internet"), ctx.dep("botnet"), ctx.config.traffic
    )
    return generator.generate(PAPER_WINDOWS.OCTOBER, _rng(ctx.config, 3))


def _build_reports(ctx: StageContext) -> Dict[str, Report]:
    cfg = ctx.config
    reports: Dict[str, Report] = {}
    _observed_reports(cfg, ctx.dep("traffic"), reports)
    _provided_reports(cfg, ctx.dep("botnet"), ctx.dep("phishing"),
                      _rng(cfg, 5), reports)
    _test_reports(cfg, ctx.dep("botnet"), ctx.dep("phishing"),
                  _rng(cfg, 6), reports)
    _control_report(cfg, ctx.dep("internet"), _rng(cfg, 7), reports)
    reports["unclean"] = _union_report(reports)
    return reports


def _build_partition(ctx: StageContext) -> CandidatePartition:
    reports = ctx.dep("reports")
    return partition_candidates(
        ctx.dep("traffic").flows, reports["bot-test"], reports["unclean"]
    )


# -- report construction (window logic shared with repro.stream via
# repro.core.folds; metadata construction lives there so the batch stage
# and the day-fold build identical reports) --------------------------------


def _observed_reports(cfg, traffic, reports) -> None:
    """Run the detectors over the October border capture."""
    window = PAPER_WINDOWS.OCTOBER
    flows = traffic.flows

    scanners = ScanDetector(cfg.scan_detector).detect(flows)
    reports["scan"] = folds.observed_report("scan", scanners, window)

    spammers = SpamDetector(cfg.spam_detector).detect(flows)
    reports["spam"] = folds.observed_report("spam", spammers, window)


def _bot_feed_addresses(cfg, botnet, monitor, rng) -> np.ndarray:
    """The provided October bot feed, honouring sinkhole-takedown
    dynamics: past ``bot_feed_dark_from_day`` the feed has no live
    visibility (its channels were seized) and, when configured, floods
    the stale addresses it sighted in the days before the takedown."""
    window = PAPER_WINDOWS.OCTOBER
    dark = cfg.bot_feed_dark_from_day
    if dark < 0 or dark > window.end_day:
        return monitor.observe(
            botnet, window, rng, channels=cfg.bot_report_channels
        )
    parts = []
    live_end = min(window.end_day, dark - 1)
    if live_end >= window.start_day:
        parts.append(monitor.observe(
            botnet, Window(window.start_day, live_end), rng,
            channels=cfg.bot_report_channels,
        ))
    if cfg.bot_feed_stale_days > 0:
        stale = Window(max(0, dark - cfg.bot_feed_stale_days), dark - 1)
        parts.append(monitor.observe(
            botnet, stale, rng, channels=cfg.bot_report_channels
        ))
    if not parts:
        return np.asarray([], dtype=np.uint32)
    return np.unique(np.concatenate(parts))


def _provided_reports(cfg, botnet, phishing, rng, reports) -> None:
    """The third-party feeds: October bots, six-month phishing."""
    monitor = BotLogMonitor(cfg.monitor)
    bots = _bot_feed_addresses(cfg, botnet, monitor, rng)
    reports["bot"] = Report(
        tag="bot",
        addresses=bots,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.BOTS,
        period=PAPER_WINDOWS.OCTOBER.dates(),
    ).without_reserved()

    phishlist = PhishListAggregator(cfg.phishlist)
    phish = phishlist.observe(phishing, PAPER_WINDOWS.PHISH, rng)
    reports["phish"] = Report(
        tag="phish",
        addresses=phish,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.PHISHING,
        period=PAPER_WINDOWS.PHISH.dates(),
    ).without_reserved()

    # R_phish-present: the October sub-report of R_phish used as the
    # prediction target in Figures 4(ii) and 5.
    phish_present = phishlist.observe(phishing, PAPER_WINDOWS.OCTOBER, rng)
    reports["phish-present"] = Report(
        tag="phish-present",
        addresses=phish_present,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.PHISHING,
        period=PAPER_WINDOWS.OCTOBER.dates(),
    ).without_reserved()


def _test_reports(cfg, botnet, phishing, rng, reports) -> None:
    """R_bot-test (May 10) and R_phish-test (May listings)."""
    members = botnet.channel_members(
        cfg.bot_test_channel, PAPER_WINDOWS.BOT_TEST
    )
    if members.size > cfg.bot_test_size:
        members = rng.choice(members, size=cfg.bot_test_size, replace=False)
    reports["bot-test"] = Report(
        tag="bot-test",
        addresses=members,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.BOTS,
        period=PAPER_WINDOWS.BOT_TEST.dates(),
    ).without_reserved()

    phishlist = PhishListAggregator(cfg.phishlist)
    phish_test = phishlist.observe(phishing, PAPER_WINDOWS.PHISH_TEST, rng)
    if cfg.phish_test_size is not None and phish_test.size > cfg.phish_test_size:
        phish_test = rng.choice(phish_test, size=cfg.phish_test_size, replace=False)
    reports["phish-test"] = Report(
        tag="phish-test",
        addresses=phish_test,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.PHISHING,
        period=PAPER_WINDOWS.PHISH_TEST.dates(),
    ).without_reserved()


def _control_report(cfg, internet, rng, reports) -> None:
    """R_control: active addresses at the vantage, population-weighted.

    The paper's control is every address seen in payload-bearing TCP
    during the week of September 25th (46.9M of them).  At reproduction
    scale we draw the configured number of distinct live hosts weighted
    by network population — the same "active address at a busy vantage"
    distribution — rather than generating a week of full-Internet
    traffic.
    """
    addresses = internet.sample_unique_hosts(cfg.control_size, rng)
    reports["control"] = Report(
        tag="control",
        addresses=addresses,
        report_type=ReportType.OBSERVED,
        data_class=DataClass.NONE,
        period=PAPER_WINDOWS.CONTROL.dates(),
    ).without_reserved()


def _union_report(reports: Dict[str, Report]) -> Report:
    """R_unclean: the union of the four unclean reports (Table 2)."""
    return folds.unclean_union(reports, PAPER_WINDOWS.OCTOBER)


SCENARIO_STAGES = (
    Stage("internet", _build_internet),
    Stage("asys", _build_asys, deps=("internet",)),
    Stage("botnet", _build_botnet, deps=("internet",)),
    Stage("phishing", _build_phishing, deps=("internet",)),
    Stage("traffic", _build_traffic, deps=("internet", "botnet")),
    Stage(
        "reports",
        _build_reports,
        deps=("internet", "botnet", "phishing", "traffic"),
        codec=ReportMappingCodec(),
    ),
    Stage(
        "partition",
        _build_partition,
        deps=("traffic", "reports"),
        codec=PartitionCodec(),
    ),
)


_ENGINE: Optional[StageEngine] = None


def scenario_engine(store: Optional[ArtifactStore] = None) -> StageEngine:
    """The process-wide scenario engine.

    With no argument, returns a singleton bound to the current default
    store (rebuilt automatically whenever the default store changes, so
    tests that reset the store get fresh counters).  Passing a store
    builds a dedicated engine over it.
    """
    global _ENGINE
    if store is not None:
        return StageEngine(SCENARIO_STAGES, store)
    current = default_store()
    if _ENGINE is None or _ENGINE.store is not current:
        _ENGINE = StageEngine(SCENARIO_STAGES, current)
        log.debug(
            "scenario engine rebuilt disk_dir=%s degraded=%s",
            current.disk_dir, current.degraded,
        )
    return _ENGINE


def reset_scenario_engine() -> None:
    """Drop the singleton engine (counters included)."""
    global _ENGINE
    _ENGINE = None
