"""Small statistical helpers shared by the density and prediction tests.

The paper summarises its 1000-subset Monte-Carlo control distributions as
boxplots (Figs. 2-5) and judges predictors at the 95% level (§5.2).  This
module provides the corresponding summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

__all__ = ["BoxplotSummary", "summarize", "exceedance_fraction"]


@dataclass(frozen=True)
class BoxplotSummary:
    """Five-number summary (plus mean and 5th/95th percentiles) of a sample."""

    minimum: float
    q05: float
    q25: float
    median: float
    q75: float
    q95: float
    maximum: float
    mean: float
    count: int

    def as_dict(self) -> Dict[str, float]:
        return {
            "min": self.minimum,
            "q05": self.q05,
            "q25": self.q25,
            "median": self.median,
            "q75": self.q75,
            "q95": self.q95,
            "max": self.maximum,
            "mean": self.mean,
            "count": self.count,
        }


def summarize(values: Sequence[float]) -> BoxplotSummary:
    """Boxplot-style summary of ``values``.

    >>> summarize([1, 2, 3, 4, 5]).median
    3.0
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    q05, q25, q50, q75, q95 = np.percentile(arr, [5, 25, 50, 75, 95])
    return BoxplotSummary(
        minimum=float(arr.min()),
        q05=float(q05),
        q25=float(q25),
        median=float(q50),
        q75=float(q75),
        q95=float(q95),
        maximum=float(arr.max()),
        mean=float(arr.mean()),
        count=int(arr.size),
    )


def exceedance_fraction(observed: float, control_values: Sequence[float]) -> float:
    """Fraction of control draws that the observed value strictly exceeds.

    The paper's criterion: a report "is a better predictor than R_control
    if the cardinality of its intersection ... is higher than the
    intersection with randomly selected addresses in 95% of the observed
    cases" (§5.2).  A return value >= 0.95 meets that bar.
    """
    arr = np.asarray(control_values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot compare against an empty control sample")
    return float(np.mean(observed > arr))
