"""Rolling uncleanliness tracking.

The paper evaluates one static snapshot (an October fortnight scored
against a May report).  Operating the idea means running it as a loop:
every reporting period, fold the new unclean reports into per-block
scores, refresh the blocklist, age out stale entries, and measure how
well the current list covers the *next* period's hostile population.
:class:`UncleanlinessTracker` is that loop, built from the library's
scorer (§7 metric) and TTL blocklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core.blocklist import Blocklist
from repro.core.report import Report
from repro.core.uncleanliness import UncleanlinessScorer

__all__ = ["TrackerConfig", "UncleanlinessTracker"]


@dataclass(frozen=True)
class TrackerConfig:
    """Tracker policy."""

    #: Blocklist granularity (the paper's operative /24).
    prefix_len: int = 24

    #: Score a block must reach in one update to be (re)listed.
    listing_threshold: float = 0.5

    #: Entry lifetime per (re)listing.
    ttl_days: int = 45

    #: Evidence decay half-life (long, per temporal uncleanliness).
    score_half_life_days: float = 60.0

    #: Per-class evidence weights (None = scorer defaults).
    weights: Optional[Dict[str, float]] = None

    def validate(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError("prefix_len out of range")
        if not 0 <= self.listing_threshold <= 1:
            raise ValueError("listing_threshold must be in [0, 1]")
        if self.ttl_days <= 0:
            raise ValueError("ttl_days must be positive")


class UncleanlinessTracker:
    """Maintains a scored blocklist across reporting periods."""

    def __init__(self, config: TrackerConfig = TrackerConfig()) -> None:
        config.validate()
        self.config = config
        self.blocklist = Blocklist(
            prefix_len=config.prefix_len,
            default_ttl_days=config.ttl_days,
            score_half_life_days=config.score_half_life_days,
        )
        self.history: List[dict] = []

    def update(self, day: int, reports: Mapping[str, Report]) -> dict:
        """Fold one period's reports into the list; returns a snapshot.

        ``reports`` maps class names (must be known to the scorer's
        weights) to that period's reports.
        """
        if not reports:
            raise ValueError("update needs at least one report")
        weights = self.config.weights
        if weights is None:
            scorer = UncleanlinessScorer(prefix_len=self.config.prefix_len)
            # Restrict default weights to the classes supplied.
            scorer.weights = {
                cls: w for cls, w in scorer.weights.items() if cls in reports
            }
            missing = set(reports) - set(scorer.weights)
            for cls in missing:
                scorer.weights[cls] = 1.0
        else:
            scorer = UncleanlinessScorer(
                prefix_len=self.config.prefix_len, weights=weights
            )
        scores = scorer.score(reports)
        listed = self.blocklist.add_scores(
            scores, day, threshold=self.config.listing_threshold
        )
        pruned = self.blocklist.prune(day)
        snapshot = {
            "day": day,
            "scored_blocks": len(scores),
            "listed_or_refreshed": listed,
            "pruned": pruned,
            "active_entries": len(self.blocklist.entries(day)),
        }
        self.history.append(snapshot)
        return snapshot

    def evaluate(self, day: int, hostile: Report, benign: Optional[Report] = None) -> dict:
        """Score the current list against ground truth on ``day``.

        Returns the hostile coverage (recall) and, when a benign
        population is supplied, the collateral rate (fraction of benign
        addresses the list would drop).
        """
        result = {
            "day": day,
            "active_entries": len(self.blocklist.entries(day)),
            "hostile_coverage": round(self.blocklist.coverage(hostile, day), 4),
        }
        if benign is not None:
            result["benign_collateral"] = round(
                self.blocklist.coverage(benign, day), 4
            )
        return result

    def series(self) -> List[dict]:
        """All update snapshots, oldest first."""
        return list(self.history)

    def __repr__(self) -> str:
        return (
            f"UncleanlinessTracker(updates={len(self.history)}, "
            f"blocklist={self.blocklist!r})"
        )
