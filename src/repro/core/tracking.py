"""Rolling uncleanliness tracking.

The paper evaluates one static snapshot (an October fortnight scored
against a May report).  Operating the idea means running it as a loop:
every reporting period, fold the new unclean reports into per-block
scores, refresh the blocklist, age out stale entries, and measure how
well the current list covers the *next* period's hostile population.
:class:`UncleanlinessTracker` is that loop, built from the library's
scorer (§7 metric) and TTL blocklist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.blocklist import Blocklist
from repro.core.report import Report
from repro.core.stats import exceedance_fraction, summarize
from repro.core.trials import TrialEnsemble
from repro.core.uncleanliness import UncleanlinessScorer
from repro.ipspace.kernels import member_counts_2d

__all__ = ["TrackerConfig", "UncleanlinessTracker", "ListCoverageStatistic"]


@dataclass(frozen=True, eq=False)
class ListCoverageStatistic:
    """How many of a trial subset's addresses an active blocklist covers.

    A :class:`~repro.core.trials.TrialStatistic` over the tracker's
    active networks: the Monte-Carlo null for
    :meth:`UncleanlinessTracker.evaluate` — the coverage the list would
    achieve against *random* equal-cardinality addresses rather than the
    period's hostile population.
    """

    prefix_len: int
    networks: np.ndarray  # sorted active /n networks on the evaluation day

    def label(self) -> str:
        return (
            f"list-coverage(/{self.prefix_len})-"
            f"{self.networks.size}nets"
        )

    def batch(self, ensemble: TrialEnsemble) -> np.ndarray:
        return member_counts_2d(
            ensemble.matrix, (self.networks,), (self.prefix_len,)
        )

    def per_trial(self, subset: Report) -> Tuple[int]:
        from repro.ipspace import cidr as _lowcidr

        covered = _lowcidr.contains(
            subset.addresses, self.networks, self.prefix_len
        )
        return (int(covered.sum()),)


@dataclass(frozen=True)
class TrackerConfig:
    """Tracker policy."""

    #: Blocklist granularity (the paper's operative /24).
    prefix_len: int = 24

    #: Score a block must reach in one update to be (re)listed.
    listing_threshold: float = 0.5

    #: Entry lifetime per (re)listing.
    ttl_days: int = 45

    #: Evidence decay half-life (long, per temporal uncleanliness).
    score_half_life_days: float = 60.0

    #: Per-class evidence weights (None = scorer defaults).
    weights: Optional[Dict[str, float]] = None

    def validate(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError("prefix_len out of range")
        if not 0 <= self.listing_threshold <= 1:
            raise ValueError("listing_threshold must be in [0, 1]")
        if self.ttl_days <= 0:
            raise ValueError("ttl_days must be positive")


class UncleanlinessTracker:
    """Maintains a scored blocklist across reporting periods."""

    def __init__(self, config: TrackerConfig = TrackerConfig()) -> None:
        config.validate()
        self.config = config
        self.blocklist = Blocklist(
            prefix_len=config.prefix_len,
            default_ttl_days=config.ttl_days,
            score_half_life_days=config.score_half_life_days,
        )
        self.history: List[dict] = []

    def update(self, day: int, reports: Mapping[str, Report]) -> dict:
        """Fold one period's reports into the list; returns a snapshot.

        ``reports`` maps class names (must be known to the scorer's
        weights) to that period's reports.
        """
        if not reports:
            raise ValueError("update needs at least one report")
        weights = self.config.weights
        if weights is None:
            scorer = UncleanlinessScorer(prefix_len=self.config.prefix_len)
            # Restrict default weights to the classes supplied.
            scorer.weights = {
                cls: w for cls, w in scorer.weights.items() if cls in reports
            }
            missing = set(reports) - set(scorer.weights)
            for cls in missing:
                scorer.weights[cls] = 1.0
        else:
            scorer = UncleanlinessScorer(
                prefix_len=self.config.prefix_len, weights=weights
            )
        scores = scorer.score(reports)
        listed = self.blocklist.add_scores(
            scores, day, threshold=self.config.listing_threshold
        )
        pruned = self.blocklist.prune(day)
        snapshot = {
            "day": day,
            "scored_blocks": len(scores),
            "listed_or_refreshed": listed,
            "pruned": pruned,
            "active_entries": len(self.blocklist.entries(day)),
        }
        self.history.append(snapshot)
        return snapshot

    def evaluate(
        self,
        day: int,
        hostile: Report,
        benign: Optional[Report] = None,
        control: Optional[Report] = None,
        rng: Optional[np.random.Generator] = None,
        subsets: int = 1000,
        workers: Optional[int] = None,
    ) -> dict:
        """Score the current list against ground truth on ``day``.

        Returns the hostile coverage (recall) and, when a benign
        population is supplied, the collateral rate (fraction of benign
        addresses the list would drop).

        When ``control`` is supplied (``rng`` then required), also runs
        the Monte-Carlo null of §4/§5 against the *current list*: the
        coverage the active blocks achieve over ``subsets`` random
        control subsets of hostile cardinality.  Adds
        ``control_coverage`` (a :class:`~repro.core.stats.
        BoxplotSummary` of per-subset coverage fractions) and
        ``coverage_exceedance`` (the fraction of control subsets the
        hostile coverage beats — the tracker is doing real work when
        this is near 1).
        """
        result = {
            "day": day,
            "active_entries": len(self.blocklist.entries(day)),
            "hostile_coverage": round(self.blocklist.coverage(hostile, day), 4),
        }
        if benign is not None:
            result["benign_collateral"] = round(
                self.blocklist.coverage(benign, day), 4
            )
        if control is not None:
            if rng is None:
                raise ValueError("control evaluation requires an explicit rng")
            matrix = self.control_coverage_matrix(
                day, len(hostile), control, rng, subsets=subsets, workers=workers
            )
            fractions = matrix[:, 0] / max(len(hostile), 1)
            result["control_coverage"] = summarize(fractions)
            result["coverage_exceedance"] = round(
                exceedance_fraction(result["hostile_coverage"], fractions), 4
            )
        return result

    def control_coverage_matrix(
        self,
        day: int,
        size: int,
        control: Report,
        rng: np.random.Generator,
        subsets: int = 1000,
        workers: Optional[int] = None,
    ) -> np.ndarray:
        """Monte-Carlo matrix of covered-address counts for the active list.

        One column (the list's single prefix length); ``subsets`` rows.
        Runs on the batched trial-matrix path via
        :class:`ListCoverageStatistic`.
        """
        from repro.core.sampling import monte_carlo

        statistic = ListCoverageStatistic(
            prefix_len=self.config.prefix_len,
            networks=self.blocklist.active_networks(day),
        )
        return monte_carlo(
            control, size, subsets, rng, statistic=statistic, workers=workers
        )

    def series(self) -> List[dict]:
        """All update snapshots, oldest first."""
        return list(self.history)

    def __repr__(self) -> str:
        return (
            f"UncleanlinessTracker(updates={len(self.history)}, "
            f"blocklist={self.blocklist!r})"
        )
