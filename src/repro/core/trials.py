"""Trial matrices: the batched representation of Monte-Carlo ensembles.

Every hypothesis test in the paper reduces to the same procedure: draw
1000 equal-cardinality random subsets of the control report and evaluate
a block-level statistic on each (§4.2, §5.2).  A
:class:`TrialEnsemble` holds such an ensemble as one
``(trials, cardinality)`` ``uint32`` matrix with sorted rows, so the
statistic can run as a few full-matrix numpy passes
(:mod:`repro.ipspace.kernels`) instead of 1000 ``Report`` objects and a
Python callback per trial.

Determinism contract: trial ``i`` of an ensemble rooted at
``(entropy, spawn_key)`` is drawn from its own spawned
:class:`numpy.random.SeedSequence` child — exactly the stream the
per-trial path uses — and each trial's draw is a single
``Generator.choice(addresses, size, replace=False)`` call on that
stream.  Row ``i`` is therefore the *sorted* form of the identical
per-trial sample: batched statistics are bit-identical to the per-trial
reference, any contiguous slice of trials can be drawn independently by
any worker, and the draws themselves (numpy's O(size) Floyd sampling
per stream) are the only per-trial work left.

:class:`TrialStatistic` is the protocol the statistical layers
implement to plug into :func:`repro.core.sampling.monte_carlo`: a
batched ``batch`` evaluation, a per-trial ``per_trial`` reference (kept
for equivalence tests), and a deterministic ``label`` for checkpoint
keys.  The concrete statistics the paper's tests run on — block counts
(Figs. 2-3), block intersections (Figs. 4-5) and covered-address counts
(§6's null model) — live here too, next to the protocol they implement:
they are parametrised by *precomputed block sets*, never by a model, so
any :class:`~repro.predict.protocol.Predictor` (or the raw reports the
paper uses) can feed them.  The old homes
(:mod:`repro.core.density`, :mod:`repro.core.prediction`,
:mod:`repro.core.blocking`) keep re-exports.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import DataClass, Report, ReportType
from repro.ipspace import cidr as _lowcidr
from repro.ipspace.kernels import (
    block_counts_2d,
    intersection_counts_2d,
    merge_sorted_rows,
)

try:  # Protocol is typing-only; runtime dispatch uses hasattr("batch").
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "TrialEnsemble",
    "TrialStatistic",
    "trial_seed",
    "is_batched",
    "BlockCountStatistic",
    "IntersectionStatistic",
    "CoveredCountStatistic",
]


def trial_seed(
    entropy: int, spawn_key: Tuple[int, ...], index: int
) -> np.random.SeedSequence:
    """Child ``index`` of the root sequence, built without materialising
    every sibling.

    ``SeedSequence(entropy, spawn_key=parent_key + (i,))`` is exactly the
    ``i``-th element of ``parent.spawn(n)`` — this is how workers derive
    their trials' streams independently.
    """
    return np.random.SeedSequence(
        entropy=entropy, spawn_key=tuple(spawn_key) + (index,)
    )


@runtime_checkable
class TrialStatistic(Protocol):
    """A statistic evaluable over a whole :class:`TrialEnsemble` at once.

    ``batch`` returns a ``(trials, k)`` array (one row per trial, one
    column per output component); ``per_trial`` is the retained scalar
    reference — it must return the same ``k`` values ``batch`` produces
    for that trial's row, and is what the hypothesis equivalence tests
    compare against; ``label`` is a deterministic string identifying the
    statistic *and its parameters* (it keys Monte-Carlo checkpoints).
    """

    def label(self) -> str:  # pragma: no cover - protocol
        ...

    def batch(self, ensemble: "TrialEnsemble") -> np.ndarray:  # pragma: no cover
        ...

    def per_trial(self, subset: Report) -> Sequence[float]:  # pragma: no cover
        ...


def is_batched(statistic: object) -> bool:
    """Whether ``monte_carlo`` should take the trial-matrix path."""
    return callable(getattr(statistic, "batch", None))


@dataclass(frozen=True)
class TrialEnsemble:
    """A contiguous span of Monte-Carlo trials as one sorted matrix.

    Attributes
    ----------
    matrix:
        ``(trials, cardinality)`` ``uint32``, each row sorted ascending —
        trial ``start + i``'s control subset as row ``i``.
    start:
        Global index of the first trial (ensembles are drawn in chunks).
    source_tag:
        Tag of the control report the trials were drawn from.
    """

    matrix: np.ndarray
    start: int = 0
    source_tag: str = "control"

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix)
        if matrix.ndim != 2:
            raise ValueError(
                f"trial matrix must be 2-D, got shape {matrix.shape}"
            )
        if matrix.dtype != np.uint32:
            matrix = matrix.astype(np.uint32)
        matrix = np.ascontiguousarray(matrix)
        matrix.setflags(write=False)
        object.__setattr__(self, "matrix", matrix)

    @classmethod
    def draw(
        cls,
        control: Report,
        size: int,
        count: int,
        entropy: int,
        spawn_key: Tuple[int, ...],
        start: int = 0,
    ) -> "TrialEnsemble":
        """Draw trials ``start .. start+count`` as one matrix.

        Trial ``start + i`` consumes exactly the draw the per-trial path
        makes — one ``choice(addresses, size, replace=False)`` on its
        spawned stream — so the rows are the sorted per-trial samples,
        bit for bit, for any chunking of the ensemble.
        """
        if size > len(control):
            raise ValueError(
                f"cannot sample {size} addresses from report of {len(control)}"
            )
        matrix = np.empty((count, size), dtype=np.uint32)
        addresses = control.addresses
        for offset in range(count):
            rng = np.random.default_rng(
                trial_seed(entropy, spawn_key, start + offset)
            )
            matrix[offset] = rng.choice(addresses, size=size, replace=False)
        matrix.sort(axis=1)
        return cls(matrix=matrix, start=start, source_tag=control.tag)

    @property
    def trials(self) -> int:
        """Number of trials in this span."""
        return int(self.matrix.shape[0])

    @property
    def cardinality(self) -> int:
        """Addresses per trial (the paper's equal-cardinality condition)."""
        return int(self.matrix.shape[1])

    def __len__(self) -> int:
        return self.trials

    def merged_with(self, columns: np.ndarray) -> "TrialEnsemble":
        """A new ensemble with extra addresses merged into every trial.

        ``columns`` is a ``(trials, new)`` matrix of additional
        addresses (one batch of new columns per trial — the streaming
        shape: each day contributes a few fresh addresses per trial).
        Rows of ``columns`` need not be sorted; rows of the result are,
        via the sorted-merge kernel rather than a full re-sort, which is
        what keeps per-day ensemble growth proportional to the batch
        width instead of the accumulated cardinality.
        """
        batch = np.array(columns, dtype=np.uint32, copy=True, ndmin=2)
        if batch.shape[0] != self.trials:
            raise ValueError(
                f"batch has {batch.shape[0]} rows for {self.trials} trials"
            )
        batch.sort(axis=1)
        return TrialEnsemble(
            matrix=merge_sorted_rows(self.matrix, batch),
            start=self.start,
            source_tag=self.source_tag,
        )

    def trial(self, index: int) -> Report:
        """Trial ``start + index`` as a :class:`Report` — the object the
        per-trial path would have built (same addresses, same tag)."""
        if not 0 <= index < self.trials:
            raise IndexError(f"trial index out of range: {index}")
        return Report(
            tag=f"{self.source_tag}[{self.start + index}]",
            addresses=self.matrix[index],
            report_type=ReportType.OBSERVED,
            data_class=DataClass.NONE,
        )

    def __repr__(self) -> str:
        return (
            f"TrialEnsemble(trials={self.trials}, "
            f"cardinality={self.cardinality}, start={self.start}, "
            f"source={self.source_tag!r})"
        )


# ---------------------------------------------------------------------------
# The concrete trial-matrix statistics.  Each is parametrised by plain
# block-set data (no model objects), which is what keeps the Monte-Carlo
# layer predictor-generic: the §5/§6 evaluators hand any predictor's
# block sets to the same statistics the paper's raw reports feed.
# ---------------------------------------------------------------------------


def _block_count_vector(report: Report, prefixes: Sequence[int]) -> List[int]:
    """Per-prefix block counts — the per-trial reference statistic of
    Figs. 2-3 (the batched path is :class:`BlockCountStatistic`).

    Module-level (not a closure) so the parallel ``monte_carlo`` path can
    pickle it into worker processes.
    """
    return [_lowcidr.block_count(report, n) for n in prefixes]


@dataclass(frozen=True)
class BlockCountStatistic:
    """The Figure 2/3 Monte-Carlo statistic: :math:`|C_n(S)|` per prefix.

    Implements the :class:`TrialStatistic` protocol; ``batch`` evaluates
    a whole trial ensemble in ``len(prefixes)`` masked passes over one
    matrix.
    """

    prefixes: Tuple[int, ...]

    def label(self) -> str:
        return "block-counts(" + ",".join(str(n) for n in self.prefixes) + ")"

    def batch(self, ensemble: TrialEnsemble) -> np.ndarray:
        return block_counts_2d(ensemble.matrix, self.prefixes)

    def per_trial(self, subset: Report) -> List[int]:
        return _block_count_vector(subset, self.prefixes)


def _intersection_vector(
    subset: Report,
    present_blocks: Tuple[np.ndarray, ...],
    prefixes: Tuple[int, ...],
) -> List[int]:
    """Per-prefix block intersections with the (precomputed) present
    report — the per-trial reference statistic of Figs. 4-5 (the batched
    path is :class:`IntersectionStatistic`).

    Module-level (not a closure) so the parallel ``monte_carlo`` path can
    pickle it into worker processes.
    """
    values = []
    for blocks, n in zip(present_blocks, prefixes):
        subset_blocks = rcidr.cidr_set(subset, n)
        values.append(int(np.intersect1d(subset_blocks, blocks).size))
    return values


@dataclass(frozen=True, eq=False)
class IntersectionStatistic:
    """The Figure 4/5 Monte-Carlo statistic:
    :math:`|C_n(S) \\cap C_n(R_{present})|` per prefix.

    Implements the :class:`TrialStatistic` protocol against precomputed
    present-report block sets; ``batch`` evaluates a whole trial
    ensemble with one searchsorted pass per prefix.
    """

    prefixes: Tuple[int, ...]
    present_blocks: Tuple[np.ndarray, ...]

    def label(self) -> str:
        # The block sets parametrise the statistic just as much as the
        # prefixes do, so their content keys the checkpoint label.
        digest = hashlib.sha256()
        for blocks in self.present_blocks:
            digest.update(np.ascontiguousarray(blocks).tobytes())
        joined = ",".join(str(n) for n in self.prefixes)
        return f"intersections({joined})-{digest.hexdigest()[:12]}"

    def batch(self, ensemble: TrialEnsemble) -> np.ndarray:
        return intersection_counts_2d(
            ensemble.matrix, self.present_blocks, self.prefixes
        )

    def per_trial(self, subset: Report) -> List[int]:
        return _intersection_vector(subset, self.present_blocks, self.prefixes)

    # -- shared-array protocol (repro.core.sampling shm handoff) ----------
    # The block sets are the statistic's heavy payload; shipping them to
    # Monte-Carlo workers by shared-memory handle instead of per-chunk
    # pickle is what these three hooks enable.

    def shared_arrays(self) -> dict:
        return {
            f"blocks{i}": np.ascontiguousarray(blocks)
            for i, blocks in enumerate(self.present_blocks)
        }

    def without_shared_arrays(self) -> "IntersectionStatistic":
        return IntersectionStatistic(prefixes=self.prefixes, present_blocks=())

    def with_shared_arrays(self, arrays: dict) -> "IntersectionStatistic":
        return IntersectionStatistic(
            prefixes=self.prefixes,
            present_blocks=tuple(
                arrays[f"blocks{i}"] for i in range(len(self.prefixes))
            ),
        )


@dataclass(frozen=True, eq=False)
class CoveredCountStatistic:
    """Per-prefix count of a fixed report's addresses covered by
    :math:`C_n(\\text{subset})`.

    The §6 null-model statistic (a :class:`TrialStatistic`): each trial
    subset plays the role of a random "blocked report", and the
    statistic asks how many of the target report's addresses its blocks
    would catch.  Target addresses are pre-aggregated into
    ``(blocks, multiplicities)`` per prefix so the batched evaluation is
    one weighted-intersection pass per prefix.
    """

    prefixes: Tuple[int, ...]
    target_blocks: Tuple[np.ndarray, ...]
    target_weights: Tuple[np.ndarray, ...]
    target_tag: str = ""

    @classmethod
    def for_report(
        cls, target: Report, prefixes: Sequence[int]
    ) -> "CoveredCountStatistic":
        prefixes = tuple(prefixes)
        blocks, weights = [], []
        for n in prefixes:
            uniques, counts = np.unique(
                _lowcidr.mask_array(target.addresses, n), return_counts=True
            )
            blocks.append(uniques)
            weights.append(counts.astype(np.int64))
        return cls(
            prefixes=prefixes,
            target_blocks=tuple(blocks),
            target_weights=tuple(weights),
            target_tag=target.tag,
        )

    def label(self) -> str:
        joined = ",".join(str(n) for n in self.prefixes)
        return f"covered-counts({joined})@{self.target_tag}"

    def batch(self, ensemble: TrialEnsemble) -> np.ndarray:
        return intersection_counts_2d(
            ensemble.matrix,
            self.target_blocks,
            self.prefixes,
            weights_by_prefix=self.target_weights,
        )

    def per_trial(self, subset: Report) -> List[int]:
        values = []
        for blocks, weights, n in zip(
            self.target_blocks, self.target_weights, self.prefixes
        ):
            subset_blocks = rcidr.cidr_set(subset, n)
            hit = np.isin(blocks, subset_blocks)
            values.append(int(weights[hit].sum()))
        return values
