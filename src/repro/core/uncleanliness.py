"""A multidimensional uncleanliness metric.

The paper's conclusion (§7) sketches its follow-on goal: "a more rigorous
and precise uncleanliness metric ... a multidimensional uncleanliness
metric to measure the aggregate probability that an address is occupied",
motivated by the finding that the indicators are *not* one-dimensional —
bots, scanning and spamming move together while phishing follows its own
geography (§5.2).

This module provides that forward-looking API: per-CIDR-block scores that
aggregate evidence from multiple report classes, keeping each dimension
visible so that bot-like and phishing-like uncleanliness can be weighted
(or inspected) separately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import Report
from repro.ipspace.addr import AddressLike
from repro.ipspace.cidr import CIDRBlock, mask_address
from repro.ipspace.cidr import mask_array as _mask

__all__ = ["BlockScores", "UncleanlinessScorer", "block_jaccard"]

#: Default per-class weights: bots and their activity classes co-move
#: (Figure 4), phishing is an independent dimension (Figure 5), and
#: observed C&C rendezvous (the §7 extension indicator) is conclusive
#: evidence of occupation.
_DEFAULT_WEIGHTS = {
    "bots": 1.0,
    "scanning": 0.8,
    "spam": 0.8,
    "phishing": 0.5,
    "cnc": 1.0,
}


@dataclass(frozen=True)
class BlockScores:
    """Scored CIDR blocks: one row per block seen in any input report."""

    prefix_len: int
    blocks: np.ndarray  # sorted masked network ints
    class_counts: Dict[str, np.ndarray]  # per-class address counts per block
    scores: np.ndarray  # aggregate score per block, in [0, 1]

    def score_of(self, address: AddressLike) -> float:
        """Aggregate score of the block containing ``address`` (0 if unseen)."""
        net = np.uint32(mask_address(address, self.prefix_len))
        idx = int(np.searchsorted(self.blocks, net))
        if idx < self.blocks.size and self.blocks[idx] == net:
            return float(self.scores[idx])
        return 0.0

    def dimensions_of(self, address: AddressLike) -> Dict[str, int]:
        """Per-class address counts for the block containing ``address``."""
        net = np.uint32(mask_address(address, self.prefix_len))
        idx = int(np.searchsorted(self.blocks, net))
        if idx < self.blocks.size and self.blocks[idx] == net:
            return {cls: int(col[idx]) for cls, col in self.class_counts.items()}
        return {cls: 0 for cls in self.class_counts}

    def top(self, count: int) -> List[dict]:
        """The ``count`` most unclean blocks, with per-class evidence."""
        order = np.argsort(self.scores)[::-1][:count]
        rows = []
        for idx in order:
            row = {
                "block": str(CIDRBlock(int(self.blocks[idx]), self.prefix_len)),
                "score": round(float(self.scores[idx]), 4),
            }
            for cls, col in self.class_counts.items():
                row[cls] = int(col[idx])
            rows.append(row)
        return rows

    def blocklist(self, threshold: float) -> List[CIDRBlock]:
        """Blocks whose score meets ``threshold`` — a deployable blocklist."""
        chosen = self.blocks[self.scores >= threshold]
        return [CIDRBlock(int(net), self.prefix_len) for net in chosen]

    def __len__(self) -> int:
        return int(self.blocks.size)


class UncleanlinessScorer:
    """Aggregates report classes into per-block uncleanliness scores.

    Each class contributes a saturating evidence term
    ``1 - (1 + count)^(-1)``-style via ``log1p`` normalisation, so one
    spammer does not equal thirty, but thirty does not equal three
    thousand either; class terms combine through a weighted
    noisy-OR, reflecting "aggregate probability that an address is
    occupied" (§7).
    """

    def __init__(
        self,
        prefix_len: int = 24,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        self.prefix_len = prefix_len
        self.weights = dict(weights) if weights is not None else dict(_DEFAULT_WEIGHTS)
        for cls, weight in self.weights.items():
            if weight < 0:
                raise ValueError(f"negative weight for class {cls!r}")

    def score(self, reports: Mapping[str, Report]) -> BlockScores:
        """Score every block touched by any of ``reports``.

        ``reports`` maps a class name (must appear in the scorer's
        weights) to the report providing that dimension's evidence.
        """
        unknown = set(reports) - set(self.weights)
        if unknown:
            raise ValueError(f"no weights for report classes: {sorted(unknown)}")
        if not reports:
            raise ValueError("at least one report is required")

        all_blocks = np.unique(
            np.concatenate(
                [rcidr.cidr_set(report, self.prefix_len) for report in reports.values()]
            )
        )
        class_counts: Dict[str, np.ndarray] = {}
        for cls, report in reports.items():
            masked = np.sort(_mask(report.addresses, self.prefix_len))
            # Count addresses per block via searchsorted range boundaries.
            left = np.searchsorted(masked, all_blocks, side="left")
            right = np.searchsorted(masked, all_blocks, side="right")
            class_counts[cls] = (right - left).astype(np.int64)

        # Noisy-OR over per-class saturating evidence.
        miss_probability = np.ones(all_blocks.size, dtype=np.float64)
        for cls, counts in class_counts.items():
            evidence = 1.0 - np.exp(-counts / 4.0)  # saturates around ~12 addrs
            miss_probability *= 1.0 - np.clip(self.weights[cls], 0, 1) * evidence
        scores = 1.0 - miss_probability

        return BlockScores(
            prefix_len=self.prefix_len,
            blocks=all_blocks,
            class_counts=class_counts,
            scores=scores,
        )


def block_jaccard(first: Report, second: Report, prefix_len: int) -> float:
    """Jaccard similarity of two reports' block sets at ``prefix_len``.

    A compact cross-relationship measure: bots/scan/spam pairs score far
    higher than any pairing with phishing (§5.2's multidimensionality
    finding).
    """
    a = rcidr.cidr_set(first, prefix_len)
    b = rcidr.cidr_set(second, prefix_len)
    union = np.union1d(a, b).size
    if union == 0:
        return 0.0
    return float(np.intersect1d(a, b).size / union)
