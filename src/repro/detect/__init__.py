"""Detectors that turn simulated activity into the paper's reports."""

from repro.detect.botlog import BotLogConfig, BotLogMonitor
from repro.detect.cnc import IRC_PORTS, SinkholeConfig, SinkholeMonitor
from repro.detect.dnsbl import DNSBLQuery, DNSBLServer
from repro.detect.logistic import FEATURE_NAMES, LogisticScanModel, extract_features
from repro.detect.phishlist import PhishListAggregator, PhishListConfig
from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.detect.spam import SpamDetector, SpamDetectorConfig
from repro.detect.trw import TRWConfig, TRWDetector, TRWState

__all__ = [
    "ScanDetector",
    "ScanDetectorConfig",
    "TRWDetector",
    "TRWConfig",
    "TRWState",
    "SpamDetector",
    "SpamDetectorConfig",
    "BotLogMonitor",
    "BotLogConfig",
    "PhishListAggregator",
    "PhishListConfig",
    "SinkholeMonitor",
    "SinkholeConfig",
    "IRC_PORTS",
    "DNSBLServer",
    "DNSBLQuery",
    "LogisticScanModel",
    "extract_features",
    "FEATURE_NAMES",
]
