"""Bot reports from C&C channel monitoring.

The paper's provided ``bot`` reports come from "observing IP addresses
communicating on IRC channels" (§1) — i.e. third parties sitting on a
botnet's rendezvous point and logging member addresses.  This module
produces that view from the simulated botnet: the membership of a chosen
set of channels during a window, thinned by an observation probability
(a monitor does not see every member join).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.sim.botnet import BotnetSimulation
from repro.sim.timeline import Window

__all__ = ["BotLogConfig", "BotLogMonitor"]


@dataclass(frozen=True)
class BotLogConfig:
    """Monitor parameters."""

    #: Fraction of channel members the monitor actually observes.
    observation_probability: float = 0.9

    def validate(self) -> None:
        if not 0 < self.observation_probability <= 1:
            raise ValueError("observation_probability must be in (0, 1]")


class BotLogMonitor:
    """Produces provided-style bot address reports from channel logs."""

    def __init__(self, config: BotLogConfig = BotLogConfig()) -> None:
        config.validate()
        self.config = config

    def observe(
        self,
        botnet: BotnetSimulation,
        window: Window,
        rng: np.random.Generator,
        channels: Optional[Sequence[int]] = None,
    ) -> np.ndarray:
        """Unique member addresses the monitor logs during ``window``.

        ``channels`` limits the view to specific C&C channels (a real feed
        covers the botnets its operators have infiltrated, not all of
        them); the default observes every channel.
        """
        with obs.instrument("detect.botlog"):
            members = botnet.active_addresses(window, channels=channels)
            if members.size == 0:
                return members
            seen = rng.random(members.size) < self.config.observation_probability
            logged = members[seen]
        obs.metrics.inc("detect.botlog.addresses", int(logged.size))
        return logged
