"""C&C rendezvous monitoring via sinkholes.

The paper's conclusion (§7) names "communication with botnet C&C nodes"
as the next indicator to fold into an uncleanliness metric.  The standard
way an edge network observes that communication is **sinkholing**: a
botnet's rendezvous point is seized or redirected so that member bots
phone home straight into an address the defender controls, and every
source seen knocking on the sinkhole is a confirmed bot.

:class:`SinkholeMonitor` implements the observer side: given the border
flow log and the sinkhole addresses, it reports the external sources that
completed rendezvous attempts.  The traffic side lives in
:meth:`repro.flows.generator.TrafficGenerator` (see
``TrafficConfig.sinkholed_channels``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro import obs
from repro.flows.log import FlowLog
from repro.flows.record import Protocol

__all__ = ["IRC_PORTS", "SinkholeConfig", "SinkholeMonitor"]

#: Rendezvous ports the 2006-era IRC botnets used.
IRC_PORTS = (6667, 6668, 6669, 7000)


@dataclass(frozen=True)
class SinkholeConfig:
    """Monitor calibration."""

    #: Minimum rendezvous flows before a source is reported (a single
    #: stray connection to a reused address is not proof of infection).
    min_contacts: int = 2

    #: Restrict to the IRC rendezvous ports; disable to catch bots using
    #: non-standard ports.
    require_irc_port: bool = True

    def validate(self) -> None:
        if self.min_contacts <= 0:
            raise ValueError("min_contacts must be positive")


class SinkholeMonitor:
    """Reports external sources contacting sinkholed C&C addresses."""

    def __init__(self, config: SinkholeConfig = SinkholeConfig()) -> None:
        config.validate()
        self.config = config

    def detect(self, flows: FlowLog, sinkholes: Iterable[int]) -> np.ndarray:
        """Sorted unique sources seen rendezvousing with ``sinkholes``."""
        with obs.instrument("detect.cnc", events=len(flows)):
            return self._detect(flows, sinkholes)

    def _detect(self, flows: FlowLog, sinkholes: Iterable[int]) -> np.ndarray:
        sinkhole_arr = np.unique(np.asarray(list(sinkholes), dtype=np.uint32))
        if sinkhole_arr.size == 0 or len(flows) == 0:
            return np.asarray([], dtype=np.uint32)

        mask = (flows.protocol == Protocol.TCP) & np.isin(
            flows.dst_addr, sinkhole_arr
        )
        if self.config.require_irc_port:
            mask &= np.isin(flows.dst_port, np.asarray(IRC_PORTS, dtype=np.uint16))
        hits = flows.select(mask)
        if len(hits) == 0:
            return np.asarray([], dtype=np.uint32)

        sources, counts = np.unique(hits.src_addr, return_counts=True)
        return sources[counts >= self.config.min_contacts].astype(np.uint32)
