"""A DNS blocklist (DNSBL) service view, with counter-intelligence.

The paper's §2 situates uncleanliness among operational blocklists
(Spamhaus ZEN, Bleeding Snort) and two pieces of blocklist research it
builds on:

* **Jung & Sit** measured how much spam was already covered by DNSBLs at
  delivery time ("in 2004, 80% of spammers were identified by
  blacklists") — :meth:`DNSBLServer.coverage_at_detection` reproduces
  that measurement against any report;
* **Ramachandran, Feamster & Dagon** detected botmasters doing DNSBL
  *reconnaissance* — querying the list about their own bots before
  putting them to work — :meth:`DNSBLServer.reconnaissance_queriers`
  implements that counter-intelligence over the server's query log.

The server wraps a :class:`~repro.core.blocklist.Blocklist` (entries,
TTLs, decay) and adds the query interface plus the query log that the
counter-intelligence needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.core.blocklist import Blocklist
from repro.core.report import Report
from repro.ipspace.addr import AddressLike, as_int

__all__ = ["DNSBLQuery", "DNSBLServer"]


@dataclass(frozen=True)
class DNSBLQuery:
    """One logged lookup."""

    querier: int  # address of the asking party
    subject: int  # address being asked about
    day: int
    listed: bool


class DNSBLServer:
    """A queryable blocklist service with a query log."""

    def __init__(self, blocklist: Blocklist) -> None:
        self.blocklist = blocklist
        self.query_log: List[DNSBLQuery] = []

    # -- the DNSBL protocol --------------------------------------------------

    def query(self, querier: AddressLike, subject: AddressLike, day: int) -> bool:
        """Answer one lookup and record it."""
        listed = self.blocklist.is_blocked(subject, day)
        self.query_log.append(
            DNSBLQuery(
                querier=as_int(querier),
                subject=as_int(subject),
                day=day,
                listed=listed,
            )
        )
        return listed

    def query_many(
        self, querier: AddressLike, subjects, day: int
    ) -> np.ndarray:
        """Bulk lookup; returns the per-subject listed flags."""
        return np.asarray(
            [self.query(querier, subject, day) for subject in subjects],
            dtype=bool,
        )

    # -- Jung & Sit style evaluation -----------------------------------------

    def coverage_at_detection(self, report: Report, day: int) -> float:
        """Fraction of the report's addresses listed as of ``day``.

        Jung & Sit's measurement: how much of the observed spam would a
        mail server consulting this DNSBL have rejected outright?
        """
        return self.blocklist.coverage(report, day)

    # -- Ramachandran style counter-intelligence -------------------------------

    def reconnaissance_queriers(
        self,
        later_hostile: Report,
        min_hits: int = 3,
        min_hit_fraction: float = 0.5,
        before_day: Optional[int] = None,
    ) -> List[int]:
        """Queriers whose lookups foreshadow future hostile addresses.

        A legitimate mail server queries the addresses that happen to
        connect to it; a botmaster queries his *own* bots to check which
        are still clean.  A querier is flagged when at least ``min_hits``
        of its queried subjects later appear in ``later_hostile`` and
        those subjects make up at least ``min_hit_fraction`` of its
        queries (optionally restricted to queries before ``before_day``).
        """
        if min_hits <= 0:
            raise ValueError("min_hits must be positive")
        if not 0 < min_hit_fraction <= 1:
            raise ValueError("min_hit_fraction must be in (0, 1]")

        subjects_by_querier: Dict[int, set] = {}
        for entry in self.query_log:
            if before_day is not None and entry.day >= before_day:
                continue
            subjects_by_querier.setdefault(entry.querier, set()).add(entry.subject)

        flagged = []
        for querier, subjects in subjects_by_querier.items():
            hits = sum(1 for subject in subjects if subject in later_hostile)
            if hits >= min_hits and hits >= min_hit_fraction * len(subjects):
                flagged.append(querier)
        return sorted(flagged)

    def query_volume_by_day(self) -> Dict[int, int]:
        """Lookups per day (the server operator's load view)."""
        volume: Dict[int, int] = {}
        for entry in self.query_log:
            volume[entry.day] = volume.get(entry.day, 0) + 1
        return volume

    def __repr__(self) -> str:
        return (
            f"DNSBLServer(entries={len(self.blocklist)}, "
            f"queries={len(self.query_log)})"
        )
