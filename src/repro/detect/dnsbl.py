"""A DNS blocklist (DNSBL) service view, with counter-intelligence.

The paper's §2 situates uncleanliness among operational blocklists
(Spamhaus ZEN, Bleeding Snort) and two pieces of blocklist research it
builds on:

* **Jung & Sit** measured how much spam was already covered by DNSBLs at
  delivery time ("in 2004, 80% of spammers were identified by
  blacklists") — :meth:`DNSBLServer.coverage_at_detection` reproduces
  that measurement against any report;
* **Ramachandran, Feamster & Dagon** detected botmasters doing DNSBL
  *reconnaissance* — querying the list about their own bots before
  putting them to work — :meth:`DNSBLServer.reconnaissance_queriers`
  implements that counter-intelligence over the server's query log.

The server wraps a :class:`~repro.core.blocklist.Blocklist` (entries,
TTLs, decay) and adds the query interface plus the query log that the
counter-intelligence needs.  The log is stored columnarly and every
analysis over it (recon detection, load accounting) is a numpy
aggregation, so feed-scale query volumes never hit a per-entry Python
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.blocklist import Blocklist
from repro.core.report import Report
from repro.ipspace.addr import AddressLike, as_int

__all__ = ["DNSBLQuery", "DNSBLServer"]


@dataclass(frozen=True)
class DNSBLQuery:
    """One logged lookup."""

    querier: int  # address of the asking party
    subject: int  # address being asked about
    day: int
    listed: bool


class _QueryLog:
    """Columnar accumulator of logged lookups.

    Appends are cheap Python-list extends; analyses materialise numpy
    columns once.  Indexing and iteration hand back
    :class:`DNSBLQuery` views so callers keep the record interface.
    """

    def __init__(self) -> None:
        self._queriers: List[int] = []
        self._subjects: List[int] = []
        self._days: List[int] = []
        self._listed: List[bool] = []

    def append(self, querier: int, subject: int, day: int, listed: bool) -> None:
        self._queriers.append(querier)
        self._subjects.append(subject)
        self._days.append(day)
        self._listed.append(listed)

    def extend(
        self, querier: int, subjects: np.ndarray, day: int, listed: np.ndarray
    ) -> None:
        count = int(subjects.size)
        self._queriers.extend([querier] * count)
        self._subjects.extend(subjects.tolist())
        self._days.extend([day] * count)
        self._listed.extend(listed.tolist())

    # -- columnar views ----------------------------------------------------

    def queriers(self) -> np.ndarray:
        return np.asarray(self._queriers, dtype=np.int64)

    def subjects(self) -> np.ndarray:
        return np.asarray(self._subjects, dtype=np.int64)

    def days(self) -> np.ndarray:
        return np.asarray(self._days, dtype=np.int64)

    def listed(self) -> np.ndarray:
        return np.asarray(self._listed, dtype=bool)

    # -- record views ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._days)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self[i] for i in range(*index.indices(len(self)))]
        return DNSBLQuery(
            querier=self._queriers[index],
            subject=self._subjects[index],
            day=self._days[index],
            listed=self._listed[index],
        )

    def __iter__(self):
        return (self[i] for i in range(len(self)))


class DNSBLServer:
    """A queryable blocklist service with a query log."""

    def __init__(self, blocklist: Blocklist) -> None:
        self.blocklist = blocklist
        self.query_log = _QueryLog()

    # -- the DNSBL protocol --------------------------------------------------

    def query(self, querier: AddressLike, subject: AddressLike, day: int) -> bool:
        """Answer one lookup and record it."""
        listed = self.blocklist.is_blocked(subject, day)
        self.query_log.append(
            querier=as_int(querier),
            subject=as_int(subject),
            day=day,
            listed=listed,
        )
        return listed

    def query_many(
        self, querier: AddressLike, subjects, day: int
    ) -> np.ndarray:
        """Bulk lookup; returns the per-subject listed flags.

        The whole batch is answered with one vectorised mask against the
        active blocklist entries and logged with one columnar extend.
        """
        if isinstance(subjects, np.ndarray) and np.issubdtype(
            subjects.dtype, np.integer
        ):
            subject_array = subjects.astype(np.uint32)
        else:
            subject_array = np.asarray(
                [as_int(subject) for subject in subjects], dtype=np.uint32
            )
        listed = self.blocklist.blocked_mask(subject_array, day)
        self.query_log.extend(as_int(querier), subject_array, day, listed)
        return listed

    # -- Jung & Sit style evaluation -----------------------------------------

    def coverage_at_detection(self, report: Report, day: int) -> float:
        """Fraction of the report's addresses listed as of ``day``.

        Jung & Sit's measurement: how much of the observed spam would a
        mail server consulting this DNSBL have rejected outright?
        """
        return self.blocklist.coverage(report, day)

    # -- Ramachandran style counter-intelligence -------------------------------

    def reconnaissance_queriers(
        self,
        later_hostile: Report,
        min_hits: int = 3,
        min_hit_fraction: float = 0.5,
        before_day: Optional[int] = None,
    ) -> List[int]:
        """Queriers whose lookups foreshadow future hostile addresses.

        A legitimate mail server queries the addresses that happen to
        connect to it; a botmaster queries his *own* bots to check which
        are still clean.  A querier is flagged when at least ``min_hits``
        of its queried subjects later appear in ``later_hostile`` and
        those subjects make up at least ``min_hit_fraction`` of its
        queries (optionally restricted to queries before ``before_day``).
        """
        if min_hits <= 0:
            raise ValueError("min_hits must be positive")
        if not 0 < min_hit_fraction <= 1:
            raise ValueError("min_hit_fraction must be in (0, 1]")

        queriers = self.query_log.queriers()
        subjects = self.query_log.subjects()
        if before_day is not None:
            in_scope = self.query_log.days() < before_day
            queriers = queriers[in_scope]
            subjects = subjects[in_scope]
        if queriers.size == 0:
            return []

        # Distinct (querier, subject) pairs, grouped by querier.
        pairs = np.unique((queriers << np.int64(32)) | subjects)
        pair_querier = pairs >> np.int64(32)
        pair_subject = (pairs & np.int64(0xFFFFFFFF)).astype(np.uint32)
        hit = np.isin(pair_subject, later_hostile.addresses)
        unique_queriers, starts, totals = np.unique(
            pair_querier, return_index=True, return_counts=True
        )
        hits = np.add.reduceat(hit.astype(np.int64), starts)
        flagged = unique_queriers[
            (hits >= min_hits) & (hits >= min_hit_fraction * totals)
        ]
        return [int(querier) for querier in flagged]

    def query_volume_by_day(self) -> Dict[int, int]:
        """Lookups per day (the server operator's load view)."""
        days, counts = np.unique(self.query_log.days(), return_counts=True)
        return {int(day): int(count) for day, count in zip(days, counts)}

    def __repr__(self) -> str:
        return (
            f"DNSBLServer(entries={len(self.blocklist)}, "
            f"queries={len(self.query_log)})"
        )
