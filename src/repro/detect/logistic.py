"""Logistic-regression scan classification (Gates et al., ISCC 2006).

The paper's scanning class cites two detection methods: the threshold
technique of the CERT report (implemented in :mod:`repro.detect.scan`)
and "scan detection on very large networks using logistic regression
modeling" — a trained classifier over per-source behavioural features.
This module implements that approach end to end, with no ML dependency:

* :func:`extract_features` reduces a flow log to one feature vector per
  source (log fan-out, failed-connection fraction, destination-port
  concentration, packets per flow, payload fraction, address spread);
* :class:`LogisticScanModel` is a from-scratch logistic regression
  (gradient descent with L2 regularisation and feature standardisation);
* :meth:`LogisticScanModel.fit_from_truth` trains against a labelled
  border capture, and :meth:`detect` applies the fitted model to any
  capture at a chosen decision threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.flows.log import FlowLog
from repro.flows.record import Protocol, TCPFlags

__all__ = ["FEATURE_NAMES", "extract_features", "LogisticScanModel"]

FEATURE_NAMES = (
    "log_fanout",  # log(1 + distinct destinations)
    "failed_fraction",  # flows with no ACK
    "port_concentration",  # max share of one destination port
    "log_packets_per_flow",
    "payload_fraction",  # payload-bearing flow share
    "dst_spread",  # distinct /24s touched / distinct destinations
)


def extract_features(flows: FlowLog) -> Tuple[np.ndarray, np.ndarray]:
    """Per-source feature matrix over the TCP flows of a capture.

    Returns ``(sources, X)`` where ``sources`` is the sorted unique
    source array and ``X`` has one row per source in that order.
    """
    tcp = flows.select(flows.protocol == Protocol.TCP)
    if len(tcp) == 0:
        return np.asarray([], dtype=np.uint32), np.zeros((0, len(FEATURE_NAMES)))

    sources, inverse = np.unique(tcp.src_addr, return_inverse=True)
    count = sources.size
    flow_totals = np.bincount(inverse, minlength=count).astype(np.float64)

    # Distinct destinations / destination-/24s per source.
    pair_dst = np.unique(
        np.stack([inverse, tcp.dst_addr.astype(np.int64)], axis=1), axis=0
    )
    fanout = np.bincount(pair_dst[:, 0], minlength=count).astype(np.float64)
    pair_net = np.unique(
        np.stack([inverse, (tcp.dst_addr >> 8).astype(np.int64)], axis=1), axis=0
    )
    net_fanout = np.bincount(pair_net[:, 0], minlength=count).astype(np.float64)

    failed = np.bincount(
        inverse,
        weights=((tcp.tcp_flags & TCPFlags.ACK) == 0).astype(np.float64),
        minlength=count,
    )
    packets = np.bincount(
        inverse, weights=tcp.packets.astype(np.float64), minlength=count
    )
    payload = np.bincount(
        inverse,
        weights=tcp.payload_bearing_mask().astype(np.float64),
        minlength=count,
    )

    # Port concentration: share of the source's flows on its busiest port.
    port_keys = inverse * 65536 + tcp.dst_port.astype(np.int64)
    unique_keys, key_counts = np.unique(port_keys, return_counts=True)
    key_sources = unique_keys // 65536
    top_port = np.zeros(count, dtype=np.float64)
    np.maximum.at(top_port, key_sources, key_counts.astype(np.float64))

    features = np.column_stack(
        [
            np.log1p(fanout),
            failed / flow_totals,
            top_port / flow_totals,
            np.log1p(packets / flow_totals),
            payload / flow_totals,
            net_fanout / np.maximum(fanout, 1.0),
        ]
    )
    return sources.astype(np.uint32), features


@dataclass
class LogisticScanModel:
    """Binary logistic regression over :data:`FEATURE_NAMES`."""

    learning_rate: float = 0.5
    iterations: int = 400
    l2: float = 1e-3
    threshold: float = 0.5

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ValueError("iterations must be positive")
        if not 0 < self.threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        self.weights: Optional[np.ndarray] = None
        self.bias: float = 0.0
        self._mean: Optional[np.ndarray] = None
        self._std: Optional[np.ndarray] = None

    # -- training ----------------------------------------------------------

    def fit(self, features: np.ndarray, labels: np.ndarray) -> "LogisticScanModel":
        """Gradient-descent fit on a feature matrix and boolean labels."""
        if features.ndim != 2 or features.shape[1] != len(FEATURE_NAMES):
            raise ValueError(
                f"feature matrix must be (n, {len(FEATURE_NAMES)})"
            )
        y = np.asarray(labels, dtype=np.float64)
        if y.shape != (features.shape[0],):
            raise ValueError("labels length must match feature rows")
        if y.min() == y.max():
            raise ValueError("training data needs both classes")

        self._mean = features.mean(axis=0)
        self._std = np.maximum(features.std(axis=0), 1e-9)
        x = (features - self._mean) / self._std

        n = x.shape[0]
        w = np.zeros(x.shape[1])
        b = 0.0
        for _ in range(self.iterations):
            z = x @ w + b
            p = 1.0 / (1.0 + np.exp(-z))
            error = p - y
            grad_w = x.T @ error / n + self.l2 * w
            grad_b = float(error.mean())
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights = w
        self.bias = b
        return self

    def fit_from_truth(
        self, flows: FlowLog, scanner_truth: np.ndarray
    ) -> "LogisticScanModel":
        """Fit against a capture whose scanner sources are known."""
        sources, features = extract_features(flows)
        labels = np.isin(sources, np.asarray(scanner_truth, dtype=np.uint32))
        self.fit(features, labels)
        return self

    # -- inference ------------------------------------------------------------

    def _require_fitted(self) -> None:
        if self.weights is None:
            raise RuntimeError("model is not fitted")

    def predict_probability(self, features: np.ndarray) -> np.ndarray:
        """P(scanner) per feature row."""
        self._require_fitted()
        x = (features - self._mean) / self._std
        return 1.0 / (1.0 + np.exp(-(x @ self.weights + self.bias)))

    def score_sources(self, flows: FlowLog) -> Dict[int, float]:
        """P(scanner) per source address of a capture."""
        sources, features = extract_features(flows)
        if sources.size == 0:
            return {}
        probabilities = self.predict_probability(features)
        return {int(s): float(p) for s, p in zip(sources, probabilities)}

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique sources classified as scanners."""
        with obs.instrument("detect.logistic", events=len(flows)):
            sources, features = extract_features(flows)
            if sources.size == 0:
                return sources
            probabilities = self.predict_probability(features)
            return sources[probabilities >= self.threshold]

    def coefficients(self) -> List[dict]:
        """Fitted weights per feature (standardised scale)."""
        self._require_fitted()
        return [
            {"feature": name, "weight": round(float(w), 4)}
            for name, w in zip(FEATURE_NAMES, self.weights)
        ]
