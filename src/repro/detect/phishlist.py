"""Phishing report lists.

The paper's ``phish`` report is a provided list aggregated from user
submissions and spam traps (§3.1, citing the CastleCops PIRT service).
Such lists are incomplete (not every site gets reported) and lagged (a
site must be noticed before it is listed).  This module models both
effects over the simulated phishing-site history.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.sim.phishing import PhishingSimulation
from repro.sim.timeline import Window

__all__ = ["PhishListConfig", "PhishListAggregator"]


@dataclass(frozen=True)
class PhishListConfig:
    """Aggregation parameters."""

    #: Probability a live site is ever reported to the list.
    report_probability: float = 0.8

    #: Mean days between a site going live and its listing.
    mean_report_lag_days: float = 3.0

    def validate(self) -> None:
        if not 0 < self.report_probability <= 1:
            raise ValueError("report_probability must be in (0, 1]")
        if self.mean_report_lag_days < 0:
            raise ValueError("mean_report_lag_days must be non-negative")


class PhishListAggregator:
    """Produces provided-style phishing reports from the site history."""

    def __init__(self, config: PhishListConfig = PhishListConfig()) -> None:
        config.validate()
        self.config = config

    def observe(
        self,
        phishing: PhishingSimulation,
        window: Window,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Unique site addresses listed during ``window``.

        A site appears on the list if it is reported (with the configured
        probability) and its listing day — go-live day plus an exponential
        lag, capped at its takedown day — falls inside ``window``.
        """
        with obs.instrument("detect.phishlist"):
            reported = rng.random(phishing.num_sites) < self.config.report_probability
            lags = rng.exponential(
                max(self.config.mean_report_lag_days, 1e-9), size=phishing.num_sites
            ).astype(np.int64)
            listing_day = np.minimum(phishing.start_day + lags, phishing.end_day)
            in_window = (listing_day >= window.start_day) & (
                listing_day <= window.end_day
            )
            listed = np.unique(phishing.address[reported & in_window])
        obs.metrics.inc("detect.phishlist.addresses", int(listed.size))
        return listed
