"""Behavioural scan detection over flow logs.

Models the detector behind the paper's observed ``scan`` report: the
threshold/fan-out method of Gates et al. (CMU/SEI-2006-TR-005), which the
paper notes "is calibrated to identify scans that take place over an hour"
(§6.2).  A source is flagged as a scanner if, within any one-hour bucket,
it contacts at least ``min_targets`` distinct destinations and at least
``min_failed_fraction`` of its flows in that bucket show no ACK (i.e. the
connections never completed).

The hourly calibration is load-bearing for the paper: "slow" scanners that
touch fewer than ~30 addresses per day never accumulate enough fan-out in
an hour and land in the unknown class of §6 rather than the scan report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.flows.log import FlowLog
from repro.flows.record import Protocol, TCPFlags

__all__ = ["ScanDetectorConfig", "ScanDetector"]

_HOUR_SECONDS = 3600.0


@dataclass(frozen=True)
class ScanDetectorConfig:
    """Detector calibration."""

    #: Minimum distinct destinations contacted within one hour.
    min_targets: int = 30

    #: Minimum fraction of the source's flows in that hour with no ACK.
    min_failed_fraction: float = 0.5

    def validate(self) -> None:
        if self.min_targets <= 0:
            raise ValueError("min_targets must be positive")
        if not 0 <= self.min_failed_fraction <= 1:
            raise ValueError("min_failed_fraction must be in [0, 1]")


class ScanDetector:
    """Hourly fan-out scan detector."""

    def __init__(self, config: ScanDetectorConfig = ScanDetectorConfig()) -> None:
        config.validate()
        self.config = config

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique source addresses flagged as scanners."""
        with obs.instrument("detect.scan", events=len(flows)):
            return self._detect(flows)

    def _detect(self, flows: FlowLog) -> np.ndarray:
        tcp = flows.select(flows.protocol == Protocol.TCP)
        if len(tcp) == 0:
            return np.asarray([], dtype=np.uint32)

        hours = (tcp.start_time // _HOUR_SECONDS).astype(np.int64)
        no_ack = (tcp.tcp_flags & TCPFlags.ACK) == 0

        # Distinct destinations per (source, hour): dedupe triples first.
        triples = np.stack(
            [tcp.src_addr.astype(np.int64), hours, tcp.dst_addr.astype(np.int64)],
            axis=1,
        )
        unique_triples = np.unique(triples, axis=0)
        pairs, target_counts = np.unique(unique_triples[:, :2], axis=0, return_counts=True)

        # Failed-flow fraction per (source, hour) over raw flows.
        raw_pairs = np.stack([tcp.src_addr.astype(np.int64), hours], axis=1)
        all_pairs, inverse = np.unique(raw_pairs, axis=0, return_inverse=True)
        flow_totals = np.bincount(inverse, minlength=all_pairs.shape[0])
        failed_totals = np.bincount(
            inverse, weights=no_ack.astype(np.float64), minlength=all_pairs.shape[0]
        )
        failed_fraction = failed_totals / np.maximum(flow_totals, 1)

        # Align the two per-pair tables (both are sorted the same way by
        # np.unique, but `pairs` only has pairs with >=1 dedup triple,
        # which is all of them; assert to be safe).
        if pairs.shape != all_pairs.shape or not np.array_equal(pairs, all_pairs):
            raise RuntimeError("scan detector pair tables misaligned")

        flagged = (target_counts >= self.config.min_targets) & (
            failed_fraction >= self.config.min_failed_fraction
        )
        return np.unique(pairs[flagged, 0]).astype(np.uint32)
