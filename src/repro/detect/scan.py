"""Behavioural scan detection over flow logs.

Models the detector behind the paper's observed ``scan`` report: the
threshold/fan-out method of Gates et al. (CMU/SEI-2006-TR-005), which the
paper notes "is calibrated to identify scans that take place over an hour"
(§6.2).  A source is flagged as a scanner if, within any one-hour bucket,
it contacts at least ``min_targets`` distinct destinations and at least
``min_failed_fraction`` of its flows in that bucket show no ACK (i.e. the
connections never completed).

The hourly calibration is load-bearing for the paper: "slow" scanners that
touch fewer than ~30 addresses per day never accumulate enough fan-out in
an hour and land in the unknown class of §6 rather than the scan report.

Evaluation is a columnar kernel: the ``(source, hour)`` group key packs
into one ``uint64`` (:func:`repro.flows.kernels.pack64`), a single
``np.lexsort`` over ``(packed pair, destination)`` orders the whole
window, and fan-out / failed-flow counts fall out of run boundaries and
``np.add.reduceat`` — no row-table ``np.unique(axis=0)`` passes.  Failed
flows are counted in pure integers (a grouped sum of the no-ACK mask), so
there is no float ``weights=`` path and the two per-pair tables are one
table by construction.  :meth:`ScanDetector.detect_reference` retains the
original row-table formulation as the semantic reference the property
tests pin the kernel to.

:class:`ScanAggregates` is the mergeable partial-aggregate form of the
same computation: per-``(source, hour)`` flow/failure totals plus the
distinct ``(source, hour, destination)`` triple set.  Folding aggregates
chunk by chunk over a :class:`~repro.flows.chunked.ChunkedFlowLog`
(:meth:`ScanDetector.detect_chunked`) reproduces the in-memory verdict
bit for bit for *any* chunking, because every column is an exact integer
and triple dedup commutes with set union.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Tuple

import numpy as np

from repro import obs
from repro.flows.kernels import grouped_sum, pack64, segment_bounds
from repro.flows.log import FlowLog
from repro.flows.record import Protocol, TCPFlags

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flows.chunked import ChunkedFlowLog

__all__ = ["ScanDetectorConfig", "ScanDetector", "ScanAggregates"]

_HOUR_SECONDS = 3600.0


@dataclass(frozen=True)
class ScanDetectorConfig:
    """Detector calibration."""

    #: Minimum distinct destinations contacted within one hour.
    min_targets: int = 30

    #: Minimum fraction of the source's flows in that hour with no ACK.
    min_failed_fraction: float = 0.5

    def validate(self) -> None:
        if self.min_targets <= 0:
            raise ValueError("min_targets must be positive")
        if not 0 <= self.min_failed_fraction <= 1:
            raise ValueError("min_failed_fraction must be in [0, 1]")


def _tcp_columns(
    flows: FlowLog,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """The four columns the detector reads, masked to TCP only.

    Column-level masking instead of :meth:`FlowLog.select` avoids copying
    the six columns the detector never touches.
    """
    tcp = flows.protocol == Protocol.TCP
    src = flows.src_addr[tcp]
    dst = flows.dst_addr[tcp]
    hours = (flows.start_time[tcp] // _HOUR_SECONDS).astype(np.int64)
    no_ack = (flows.tcp_flags[tcp] & TCPFlags.ACK) == 0
    return src, dst, hours, no_ack


def _pair_keys(src: np.ndarray, hours: np.ndarray) -> Tuple[np.ndarray, int]:
    """``(source, hour)`` packed into sortable ``uint64`` keys.

    Hours are rebased to the window minimum so any real capture packs
    (the rebased span would only overflow after ~490,000 years of
    traffic, which :func:`pack64` turns into a loud error rather than
    key aliasing).  Returns the keys and the hour base for unpacking.
    """
    base = int(hours.min()) if hours.size else 0
    return pack64(src, hours - base), base


@dataclass(frozen=True)
class ScanAggregates:
    """Mergeable per-``(source, hour)`` sufficient statistics.

    Everything the detector thresholds on reduces to exact integer
    columns over ``(source, hour)`` groups plus the distinct
    ``(source, hour, destination)`` triple set; both merge exactly under
    any partition of the flow window, so flags computed incrementally
    over chunks and flags computed whole-window agree bit for bit.

    All tables are sorted lexicographically by their key columns.
    """

    sources: np.ndarray  # uint32: per (source, hour) group
    hours: np.ndarray  # int64
    flow_totals: np.ndarray  # int64: TCP flows in the group
    failed_totals: np.ndarray  # int64: no-ACK flows in the group
    triple_sources: np.ndarray  # uint32: distinct (source, hour, dst)
    triple_hours: np.ndarray  # int64
    triple_dsts: np.ndarray  # uint32

    @classmethod
    def empty(cls) -> "ScanAggregates":
        u32 = np.asarray([], dtype=np.uint32)
        i64 = np.asarray([], dtype=np.int64)
        return cls(
            sources=u32, hours=i64, flow_totals=i64, failed_totals=i64,
            triple_sources=u32, triple_hours=i64, triple_dsts=u32,
        )

    @classmethod
    def from_flows(cls, flows: FlowLog) -> "ScanAggregates":
        """Aggregate any span of flows (one lexsort, grouped counts)."""
        src, dst, hours, no_ack = _tcp_columns(flows)
        if src.size == 0:
            return cls.empty()
        pair_key, base = _pair_keys(src, hours)

        order = np.lexsort((dst, pair_key))
        pk = pair_key[order]
        dk = dst[order]
        starts, _ = segment_bounds(pk)

        failed = grouped_sum(no_ack[order], starts)
        totals = np.diff(np.append(starts, pk.size))

        # A triple's first occurrence in (pair, dst) order marks one
        # distinct destination of its pair.
        first_triple = np.empty(pk.size, dtype=bool)
        first_triple[0] = True
        first_triple[1:] = (pk[1:] != pk[:-1]) | (dk[1:] != dk[:-1])
        triple_at = np.flatnonzero(first_triple)

        pair_pk = pk[starts]
        triple_pk = pk[triple_at]
        return cls(
            sources=(pair_pk >> np.uint64(32)).astype(np.uint32),
            hours=(pair_pk & np.uint64(0xFFFFFFFF)).astype(np.int64) + base,
            flow_totals=totals.astype(np.int64),
            failed_totals=failed.astype(np.int64),
            triple_sources=(triple_pk >> np.uint64(32)).astype(np.uint32),
            triple_hours=(triple_pk & np.uint64(0xFFFFFFFF)).astype(np.int64)
            + base,
            triple_dsts=dk[triple_at].astype(np.uint32),
        )

    @property
    def group_count(self) -> int:
        return int(self.sources.size)

    def merge(self, other: "ScanAggregates") -> "ScanAggregates":
        """Fold in aggregates of any other span of the same window.

        Integer totals add and triple sets union, so merging is exact
        whatever the split — chunks may straddle hours, days or even
        interleave sources.
        """
        return self.merge_all([self, other])

    @classmethod
    def merge_all(cls, parts: "Iterable[ScanAggregates]") -> "ScanAggregates":
        """Merge any number of partial aggregates in one reduction.

        One concatenation and one sort over the union, instead of a
        chain of pairwise merges re-sorting the running state per chunk.
        Exact for any order and grouping of ``parts`` (integer sums and
        set union are associative and commutative), so the result is
        bit-identical to chained :meth:`merge` calls.
        """
        parts = [p for p in parts if p.sources.size]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]

        base = min(int(p.hours.min()) for p in parts)
        keys = np.concatenate([pack64(p.sources, p.hours - base) for p in parts])
        totals = np.concatenate([p.flow_totals for p in parts])
        failed = np.concatenate([p.failed_totals for p in parts])
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        starts, _ = segment_bounds(keys)
        pair_pk = keys[starts]

        tri_keys = np.concatenate(
            [pack64(p.triple_sources, p.triple_hours - base) for p in parts]
        )
        tri_dsts = np.concatenate([p.triple_dsts for p in parts])
        tri_order = np.lexsort((tri_dsts, tri_keys))
        tk = tri_keys[tri_order]
        td = tri_dsts[tri_order]
        keep = np.empty(tk.size, dtype=bool)
        keep[0] = True
        keep[1:] = (tk[1:] != tk[:-1]) | (td[1:] != td[:-1])

        return cls(
            sources=(pair_pk >> np.uint64(32)).astype(np.uint32),
            hours=(pair_pk & np.uint64(0xFFFFFFFF)).astype(np.int64) + base,
            flow_totals=grouped_sum(totals[order], starts),
            failed_totals=grouped_sum(failed[order], starts),
            triple_sources=(tk[keep] >> np.uint64(32)).astype(np.uint32),
            triple_hours=(tk[keep] & np.uint64(0xFFFFFFFF)).astype(np.int64)
            + base,
            triple_dsts=td[keep].astype(np.uint32),
        )

    def flagged(self, config: ScanDetectorConfig) -> np.ndarray:
        """Sorted unique sources the detector flags at these aggregates."""
        if self.sources.size == 0:
            return np.asarray([], dtype=np.uint32)
        base = int(self.hours.min())
        pair_key = pack64(self.sources, self.hours - base)
        triple_key = pack64(self.triple_sources, self.triple_hours - base)
        # Every triple's pair exists in the pair table, so searchsorted
        # positions are exact group ids.
        target_counts = np.bincount(
            np.searchsorted(pair_key, triple_key), minlength=pair_key.size
        )
        failed_fraction = self.failed_totals / np.maximum(self.flow_totals, 1)
        mask = (target_counts >= config.min_targets) & (
            failed_fraction >= config.min_failed_fraction
        )
        return np.unique(self.sources[mask]).astype(np.uint32)


class ScanDetector:
    """Hourly fan-out scan detector."""

    def __init__(self, config: ScanDetectorConfig = ScanDetectorConfig()) -> None:
        config.validate()
        self.config = config

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique source addresses flagged as scanners."""
        with obs.instrument("detect.scan", events=len(flows)):
            return self._detect(flows)

    def _detect(self, flows: FlowLog) -> np.ndarray:
        """The packed-key kernel: one lexsort, grouped integer counts."""
        src, dst, hours, no_ack = _tcp_columns(flows)
        if src.size == 0:
            return np.asarray([], dtype=np.uint32)
        pair_key, _ = _pair_keys(src, hours)

        order = np.lexsort((dst, pair_key))
        pk = pair_key[order]
        dk = dst[order]
        starts, _ = segment_bounds(pk)

        flow_totals = np.diff(np.append(starts, pk.size))
        failed_totals = grouped_sum(no_ack[order], starts)

        first_triple = np.empty(pk.size, dtype=bool)
        first_triple[0] = True
        first_triple[1:] = (pk[1:] != pk[:-1]) | (dk[1:] != dk[:-1])
        target_counts = grouped_sum(first_triple, starts)

        failed_fraction = failed_totals / np.maximum(flow_totals, 1)
        flagged = (target_counts >= self.config.min_targets) & (
            failed_fraction >= self.config.min_failed_fraction
        )
        flagged_sources = (pk[starts[flagged]] >> np.uint64(32)).astype(np.uint32)
        return np.unique(flagged_sources)

    def detect_chunked(self, chunks: "Iterable[FlowLog]") -> np.ndarray:
        """Fold the detector over flow-log chunks without materialising.

        ``chunks`` is any iterable of :class:`FlowLog` spans covering the
        window — typically ``ChunkedFlowLog.iter_chunks()``.  The result
        is bit-identical to :meth:`detect` on the concatenated log for
        any chunking.
        """
        from repro.flows.chunked import ChunkedFlowLog, fold_partials

        if isinstance(chunks, ChunkedFlowLog):
            chunks = chunks.iter_chunks()
        with obs.instrument("detect.scan_chunked"):
            aggregates = fold_partials(
                (ScanAggregates.from_flows(chunk) for chunk in chunks),
                rows=lambda a: a.sources.size + a.triple_sources.size,
                merge_all=ScanAggregates.merge_all,
            )
            return aggregates.flagged(self.config)

    # -- row-table reference ----------------------------------------------

    def detect_reference(self, flows: FlowLog) -> np.ndarray:
        """The original ``np.unique(axis=0)`` row-table formulation.

        Semantically identical to :meth:`detect` (the property tests pin
        the kernel to it) but interpreter- and sort-bound: three
        row-table unique passes over stacked int64 triples.  Kept as the
        readable specification; not for large logs.

        ``pairs`` and ``all_pairs`` below are the same table by
        construction — every raw pair owns at least one deduped triple
        and ``np.unique`` sorts rows lexicographically both times.
        """
        tcp = flows.select(flows.protocol == Protocol.TCP)
        if len(tcp) == 0:
            return np.asarray([], dtype=np.uint32)

        hours = (tcp.start_time // _HOUR_SECONDS).astype(np.int64)
        no_ack = (tcp.tcp_flags & TCPFlags.ACK) == 0

        triples = np.stack(
            [tcp.src_addr.astype(np.int64), hours, tcp.dst_addr.astype(np.int64)],
            axis=1,
        )
        unique_triples = np.unique(triples, axis=0)
        pairs, target_counts = np.unique(
            unique_triples[:, :2], axis=0, return_counts=True
        )

        raw_pairs = np.stack([tcp.src_addr.astype(np.int64), hours], axis=1)
        all_pairs, inverse = np.unique(raw_pairs, axis=0, return_inverse=True)
        flow_totals = np.bincount(inverse, minlength=all_pairs.shape[0])
        failed_totals = np.bincount(inverse[no_ack], minlength=all_pairs.shape[0])
        failed_fraction = failed_totals / np.maximum(flow_totals, 1)

        flagged = (target_counts >= self.config.min_targets) & (
            failed_fraction >= self.config.min_failed_fraction
        )
        return np.unique(pairs[flagged, 0]).astype(np.uint32)
