"""Behavioural spam detection over flow logs.

The paper's ``spam`` report comes from "a behavioral spam detection
technique" (under review at the time, so unspecified).  What the analyses
consume is only the resulting *report* — a set of source addresses — so
any behavioural detector whose recall is biased toward bulk senders
preserves the paper's results.

This implementation flags sources by mail-delivery behaviour visible in
flow data alone (NetFlow has no payload):

* at least ``min_messages`` payload-bearing flows to port 25 during the
  window (bulk volume),
* a sending rate of at least ``min_daily_rate`` messages per active day
  (burstiness), and
* message size regularity: the coefficient of variation of flow sizes at
  or below ``max_size_cv`` (template mail bodies are near-uniform, human
  mail is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Union

import numpy as np

from repro import obs
from repro.flows.log import FlowLog
from repro.flows.record import Protocol
from repro.ipspace.kernels import merge_unique

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flows.chunked import ChunkedFlowLog

__all__ = ["SpamDetectorConfig", "SpamDetector", "SpamAggregates", "SpamPartial"]

_SMTP_PORT = 25
_DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class SpamDetectorConfig:
    """Detector calibration."""

    #: Minimum SMTP deliveries in the window.
    min_messages: int = 10

    #: Minimum deliveries per active sending day.
    min_daily_rate: float = 4.0

    #: Maximum coefficient of variation of delivery sizes.
    max_size_cv: float = 1.5

    def validate(self) -> None:
        if self.min_messages <= 0:
            raise ValueError("min_messages must be positive")
        if self.min_daily_rate <= 0:
            raise ValueError("min_daily_rate must be positive")
        if self.max_size_cv <= 0:
            raise ValueError("max_size_cv must be positive")


@dataclass(frozen=True)
class SpamAggregates:
    """Mergeable per-source SMTP sufficient statistics.

    Everything the detector thresholds on reduces to five per-source
    columns; all are exact in ``float64`` (integer counts and
    integer-valued sums far below 2**53), so float addition is
    associative here and merging day-partial aggregates reproduces the
    whole-window statistics *bit for bit* — the invariant the streaming
    replay-equivalence tests enforce.

    ``merge`` requires operands covering **disjoint day sets** (the
    stream layer feeds it one day-batch at a time); otherwise
    ``active_days`` would double-count.
    """

    sources: np.ndarray  # sorted unique uint32
    messages: np.ndarray  # int64: SMTP deliveries per source
    active_days: np.ndarray  # int64: distinct sending days per source
    size_sums: np.ndarray  # float64 (exact): sum of delivery sizes
    size_sq_sums: np.ndarray  # float64 (exact): sum of squared sizes

    @classmethod
    def empty(cls) -> "SpamAggregates":
        return cls(
            sources=np.asarray([], dtype=np.uint32),
            messages=np.asarray([], dtype=np.int64),
            active_days=np.asarray([], dtype=np.int64),
            size_sums=np.asarray([], dtype=np.float64),
            size_sq_sums=np.asarray([], dtype=np.float64),
        )

    @classmethod
    def from_flows(cls, flows: FlowLog) -> "SpamAggregates":
        """Aggregate the SMTP deliveries of any span of flows."""
        smtp_mask = (
            (flows.protocol == Protocol.TCP)
            & (flows.dst_port == _SMTP_PORT)
            & flows.payload_bearing_mask()
        )
        smtp = flows.select(smtp_mask)
        if len(smtp) == 0:
            return cls.empty()

        sources, inverse = np.unique(smtp.src_addr, return_inverse=True)
        counts = np.bincount(inverse, minlength=sources.size)

        days = (smtp.start_time // _DAY_SECONDS).astype(np.int64)
        source_days = np.unique(np.stack([inverse, days], axis=1), axis=0)
        day_counts = np.bincount(source_days[:, 0], minlength=sources.size)

        sizes = smtp.octets.astype(np.float64)
        sums = np.bincount(inverse, weights=sizes, minlength=sources.size)
        sq_sums = np.bincount(inverse, weights=sizes**2, minlength=sources.size)
        return cls(
            sources=sources.astype(np.uint32),
            messages=counts.astype(np.int64),
            active_days=day_counts.astype(np.int64),
            size_sums=sums,
            size_sq_sums=sq_sums,
        )

    def merge(self, other: "SpamAggregates") -> "SpamAggregates":
        """Fold in aggregates covering a disjoint set of days."""
        if self.sources.size == 0:
            return other
        if other.sources.size == 0:
            return self
        union, _ = merge_unique(self.sources, other.sources)
        mine = np.searchsorted(union, self.sources)
        theirs = np.searchsorted(union, other.sources)

        def _sum(a: np.ndarray, b: np.ndarray, dtype) -> np.ndarray:
            out = np.zeros(union.size, dtype=dtype)
            out[mine] += a
            out[theirs] += b
            return out

        return SpamAggregates(
            sources=union,
            messages=_sum(self.messages, other.messages, np.int64),
            active_days=_sum(self.active_days, other.active_days, np.int64),
            size_sums=_sum(self.size_sums, other.size_sums, np.float64),
            size_sq_sums=_sum(self.size_sq_sums, other.size_sq_sums, np.float64),
        )

    def flagged(self, config: SpamDetectorConfig) -> np.ndarray:
        """Sorted unique sources the detector flags at these aggregates.

        Exactly the arithmetic of the batch detector, over columns that
        merging reproduces exactly, so flags computed incrementally and
        flags computed whole-window agree bit for bit.
        """
        if self.sources.size == 0:
            return np.asarray([], dtype=np.uint32)
        counts = self.messages
        daily_rate = counts / np.maximum(self.active_days, 1)
        means = self.size_sums / np.maximum(counts, 1)
        variances = np.maximum(
            self.size_sq_sums / np.maximum(counts, 1) - means**2, 0.0
        )
        cv = np.sqrt(variances) / np.maximum(means, 1e-9)
        mask = (
            (counts >= config.min_messages)
            & (daily_rate >= config.min_daily_rate)
            & (cv <= config.max_size_cv)
        )
        return self.sources[mask].astype(np.uint32)


@dataclass(frozen=True)
class SpamPartial:
    """Any-split mergeable accumulator behind :meth:`SpamDetector.detect_chunked`.

    :class:`SpamAggregates.merge` requires operands covering disjoint
    day sets (it adds ``active_days`` blindly), which arbitrary
    positional chunks of a flow log violate — the same day routinely
    straddles a chunk boundary.  This partial instead carries the
    *distinct ``(source, day)`` table itself* (kept sorted and
    deduplicated at every merge), so active-day counts are computed once
    at :meth:`finalize` and any split of the log — by day, by size, or
    mid-day — folds to bit-identical statistics.
    """

    sources: np.ndarray  # sorted unique uint32
    messages: np.ndarray  # int64: SMTP deliveries per source
    size_sums: np.ndarray  # float64 (exact): sum of delivery sizes
    size_sq_sums: np.ndarray  # float64 (exact): sum of squared sizes
    day_sources: np.ndarray  # uint32: distinct (source, day) pairs,
    day_values: np.ndarray  # int64:  lex-sorted parallel columns

    @classmethod
    def empty(cls) -> "SpamPartial":
        return cls(
            sources=np.asarray([], dtype=np.uint32),
            messages=np.asarray([], dtype=np.int64),
            size_sums=np.asarray([], dtype=np.float64),
            size_sq_sums=np.asarray([], dtype=np.float64),
            day_sources=np.asarray([], dtype=np.uint32),
            day_values=np.asarray([], dtype=np.int64),
        )

    @classmethod
    def from_flows(cls, flows: FlowLog) -> "SpamPartial":
        """Accumulate the SMTP deliveries of any span of flows."""
        smtp_mask = (
            (flows.protocol == Protocol.TCP)
            & (flows.dst_port == _SMTP_PORT)
            & flows.payload_bearing_mask()
        )
        smtp = flows.select(smtp_mask)
        if len(smtp) == 0:
            return cls.empty()

        sources, inverse = np.unique(smtp.src_addr, return_inverse=True)
        counts = np.bincount(inverse, minlength=sources.size)
        days = (smtp.start_time // _DAY_SECONDS).astype(np.int64)
        pairs = np.unique(np.stack([inverse, days], axis=1), axis=0)
        sizes = smtp.octets.astype(np.float64)
        return cls(
            sources=sources.astype(np.uint32),
            messages=counts.astype(np.int64),
            size_sums=np.bincount(inverse, weights=sizes, minlength=sources.size),
            size_sq_sums=np.bincount(
                inverse, weights=sizes**2, minlength=sources.size
            ),
            day_sources=sources[pairs[:, 0]].astype(np.uint32),
            day_values=pairs[:, 1],
        )

    def merge(self, other: "SpamPartial") -> "SpamPartial":
        """Fold in a partial covering any other span (overlap allowed)."""
        return self.merge_all([self, other])

    @classmethod
    def merge_all(cls, parts: "Iterable[SpamPartial]") -> "SpamPartial":
        """Merge any number of partials in one grouped reduction.

        Per-source sums are exact (integer-valued float64 well below
        2**53) in any order, and the day table is a set union, so one
        reduction over the concatenated partials is bit-identical to
        chained pairwise :meth:`merge` calls.
        """
        parts = [p for p in parts if p.sources.size]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]

        all_sources = np.concatenate([p.sources for p in parts])
        union = np.unique(all_sources)
        index = np.searchsorted(union, all_sources)

        def _sum(arrays, dtype) -> np.ndarray:
            out = np.zeros(union.size, dtype=dtype)
            np.add.at(out, index, np.concatenate(arrays))
            return out

        day_sources = np.concatenate([p.day_sources for p in parts])
        day_values = np.concatenate([p.day_values for p in parts])
        order = np.lexsort((day_values, day_sources))
        day_sources = day_sources[order]
        day_values = day_values[order]
        if day_sources.size:
            keep = np.empty(day_sources.size, dtype=bool)
            keep[0] = True
            keep[1:] = (day_sources[1:] != day_sources[:-1]) | (
                day_values[1:] != day_values[:-1]
            )
            day_sources = day_sources[keep]
            day_values = day_values[keep]

        return cls(
            sources=union,
            messages=_sum([p.messages for p in parts], np.int64),
            size_sums=_sum([p.size_sums for p in parts], np.float64),
            size_sq_sums=_sum([p.size_sq_sums for p in parts], np.float64),
            day_sources=day_sources,
            day_values=day_values,
        )

    def finalize(self) -> SpamAggregates:
        """Collapse the day table into per-source active-day counts.

        Every ``(source, day)`` pair's source has at least one message,
        so ``day_sources`` is always a subset of ``sources`` and the
        searchsorted indices are exact.  The per-source sums are the
        same exact integers the whole-window ``bincount`` produces, so
        the finalized aggregates — and hence the flags — are
        bit-identical to :meth:`SpamAggregates.from_flows` on the
        concatenated log.
        """
        active = np.bincount(
            np.searchsorted(self.sources, self.day_sources),
            minlength=self.sources.size,
        ).astype(np.int64)
        return SpamAggregates(
            sources=self.sources,
            messages=self.messages,
            active_days=active,
            size_sums=self.size_sums,
            size_sq_sums=self.size_sq_sums,
        )


class SpamDetector:
    """Flags bulk SMTP senders from flow behaviour."""

    def __init__(self, config: SpamDetectorConfig = SpamDetectorConfig()) -> None:
        config.validate()
        self.config = config

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique source addresses flagged as spammers."""
        with obs.instrument("detect.spam", events=len(flows)):
            return self._detect(flows)

    def _detect(self, flows: FlowLog) -> np.ndarray:
        return SpamAggregates.from_flows(flows).flagged(self.config)

    def detect_chunked(
        self, chunks: Union["ChunkedFlowLog", Iterable[FlowLog]]
    ) -> np.ndarray:
        """:meth:`detect` as a fold over flow-log chunks.

        Accepts a :class:`~repro.flows.chunked.ChunkedFlowLog` or any
        iterable of :class:`FlowLog` spans; one chunk plus the running
        :class:`SpamPartial` is resident at a time, and the flagged set
        is bit-identical to :meth:`detect` on the concatenated log for
        any chunking (day-straddling boundaries included).
        """
        from repro.flows.chunked import ChunkedFlowLog, fold_partials

        if isinstance(chunks, ChunkedFlowLog):
            chunks = chunks.iter_chunks()
        with obs.instrument("detect.spam_chunked"):
            partial = fold_partials(
                (SpamPartial.from_flows(chunk) for chunk in chunks),
                rows=lambda p: p.sources.size + p.day_sources.size,
                merge_all=SpamPartial.merge_all,
            )
            return partial.finalize().flagged(self.config)
