"""Behavioural spam detection over flow logs.

The paper's ``spam`` report comes from "a behavioral spam detection
technique" (under review at the time, so unspecified).  What the analyses
consume is only the resulting *report* — a set of source addresses — so
any behavioural detector whose recall is biased toward bulk senders
preserves the paper's results.

This implementation flags sources by mail-delivery behaviour visible in
flow data alone (NetFlow has no payload):

* at least ``min_messages`` payload-bearing flows to port 25 during the
  window (bulk volume),
* a sending rate of at least ``min_daily_rate`` messages per active day
  (burstiness), and
* message size regularity: the coefficient of variation of flow sizes at
  or below ``max_size_cv`` (template mail bodies are near-uniform, human
  mail is not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.flows.log import FlowLog
from repro.flows.record import Protocol

__all__ = ["SpamDetectorConfig", "SpamDetector"]

_SMTP_PORT = 25
_DAY_SECONDS = 86_400.0


@dataclass(frozen=True)
class SpamDetectorConfig:
    """Detector calibration."""

    #: Minimum SMTP deliveries in the window.
    min_messages: int = 10

    #: Minimum deliveries per active sending day.
    min_daily_rate: float = 4.0

    #: Maximum coefficient of variation of delivery sizes.
    max_size_cv: float = 1.5

    def validate(self) -> None:
        if self.min_messages <= 0:
            raise ValueError("min_messages must be positive")
        if self.min_daily_rate <= 0:
            raise ValueError("min_daily_rate must be positive")
        if self.max_size_cv <= 0:
            raise ValueError("max_size_cv must be positive")


class SpamDetector:
    """Flags bulk SMTP senders from flow behaviour."""

    def __init__(self, config: SpamDetectorConfig = SpamDetectorConfig()) -> None:
        config.validate()
        self.config = config

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique source addresses flagged as spammers."""
        with obs.instrument("detect.spam", events=len(flows)):
            return self._detect(flows)

    def _detect(self, flows: FlowLog) -> np.ndarray:
        smtp_mask = (
            (flows.protocol == Protocol.TCP)
            & (flows.dst_port == _SMTP_PORT)
            & flows.payload_bearing_mask()
        )
        smtp = flows.select(smtp_mask)
        if len(smtp) == 0:
            return np.asarray([], dtype=np.uint32)

        sources, inverse = np.unique(smtp.src_addr, return_inverse=True)
        counts = np.bincount(inverse, minlength=sources.size)

        # Active sending days per source.
        days = (smtp.start_time // _DAY_SECONDS).astype(np.int64)
        source_days = np.unique(np.stack([inverse, days], axis=1), axis=0)
        day_counts = np.bincount(source_days[:, 0], minlength=sources.size)
        daily_rate = counts / np.maximum(day_counts, 1)

        # Size regularity per source.
        sizes = smtp.octets.astype(np.float64)
        sums = np.bincount(inverse, weights=sizes, minlength=sources.size)
        sq_sums = np.bincount(inverse, weights=sizes**2, minlength=sources.size)
        means = sums / np.maximum(counts, 1)
        variances = np.maximum(sq_sums / np.maximum(counts, 1) - means**2, 0.0)
        cv = np.sqrt(variances) / np.maximum(means, 1e-9)

        flagged = (
            (counts >= self.config.min_messages)
            & (daily_rate >= self.config.min_daily_rate)
            & (cv <= self.config.max_size_cv)
        )
        return sources[flagged].astype(np.uint32)
