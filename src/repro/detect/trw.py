"""Threshold Random Walk scan detection (Jung et al., Oakland 2004).

The paper cites two scan-detection lineages for its ``scan`` class (§3.1):
the Gates et al. fan-out method (implemented in
:mod:`repro.detect.scan`) and the sequential hypothesis testing of Jung,
Paxson, Berger & Balakrishnan.  This module implements the latter so both
reporting methods the paper names are available.

For each remote source we observe a sequence of first-contact connection
outcomes :math:`Y_i` (success = the flow shows an ACK, failure = it does
not).  Under hypothesis :math:`H_0` (benign) successes have probability
``theta0``; under :math:`H_1` (scanner) they have probability ``theta1 <
theta0``.  The likelihood ratio

.. math::

   \\Lambda(n) = \\prod_{i=1}^{n}
   \\frac{P(Y_i \\mid H_1)}{P(Y_i \\mid H_0)}

is updated per outcome and compared with thresholds
:math:`\\eta_0 = \\beta / (1 - \\alpha)` and
:math:`\\eta_1 = (1 - \\beta) / \\alpha` derived from the target false
positive rate ``alpha`` and false negative rate ``beta``.  Crossing
:math:`\\eta_1` declares the source a scanner; crossing :math:`\\eta_0`
declares it benign (and, as in the paper's usage, stops the walk).

Although the test is *defined* sequentially, it is evaluated here as an
array kernel: first contacts are deduplicated with ``np.unique``,
outcomes are sorted by (source, time), each source's log-likelihood
trajectory is a grouped cumulative sum, and the verdict is read off at
the segment's first threshold crossing — exactly where the sequential
walk would have frozen it.  :meth:`TRWDetector.walk_reference` retains
the straightforward per-outcome loop as the semantic reference; the
property tests assert the two agree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, Tuple, Union

import numpy as np

from repro import obs
from repro.flows.kernels import (
    grouped_cumsum,
    pack64,
    segment_bounds,
    segment_first_true,
    segment_positions,
)
from repro.flows.log import FlowLog
from repro.flows.record import Protocol, TCPFlags

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.flows.chunked import ChunkedFlowLog

__all__ = ["FirstContactAggregates", "TRWConfig", "TRWDetector", "TRWState"]


@dataclass(frozen=True)
class TRWConfig:
    """Sequential hypothesis test parameters (defaults follow the paper)."""

    #: P(success | benign source).
    theta0: float = 0.8

    #: P(success | scanner).
    theta1: float = 0.2

    #: Target false positive rate.
    alpha: float = 0.01

    #: Target false negative rate.
    beta: float = 0.01

    def validate(self) -> None:
        if not 0 < self.theta1 < self.theta0 < 1:
            raise ValueError("need 0 < theta1 < theta0 < 1")
        if not 0 < self.alpha < 1 or not 0 < self.beta < 1:
            raise ValueError("alpha and beta must be in (0, 1)")

    @property
    def upper_threshold(self) -> float:
        """:math:`\\eta_1`: crossing it declares a scanner."""
        return (1 - self.beta) / self.alpha

    @property
    def lower_threshold(self) -> float:
        """:math:`\\eta_0`: crossing it declares the source benign."""
        return self.beta / (1 - self.alpha)

    @property
    def success_step(self) -> float:
        """Log-likelihood increment for a successful connection."""
        return math.log(self.theta1 / self.theta0)

    @property
    def failure_step(self) -> float:
        """Log-likelihood increment for a failed connection."""
        return math.log((1 - self.theta1) / (1 - self.theta0))


@dataclass
class TRWState:
    """Walk state for one source."""

    log_ratio: float = 0.0
    outcomes: int = 0
    verdict: str = "pending"  # "pending" | "scanner" | "benign"


@dataclass(frozen=True)
class FirstContactAggregates:
    """Mergeable per-pair first-contact state for streaming TRW.

    TRW's only cross-flow coupling is "first contact per (src, dst)
    pair", and *earliest* is a min — so the partial state per chunk is
    simply each pair's minimal ``(start_time, global log position)``
    flow, which merges exactly for **any** positional split of the log.
    ``positions`` are global offsets into the unchunked log so that the
    tie-break between equal-time contacts reproduces the in-memory
    stable sort bit for bit (restricted to TCP flows, global order and
    TCP-filtered order coincide).
    """

    #: Sorted unique ``(src << 32) | dst`` pair keys (uint64).
    pair_keys: np.ndarray
    #: Earliest start time seen for each pair (float64).
    times: np.ndarray
    #: Global log position of that earliest flow (int64).
    positions: np.ndarray
    #: Whether that flow carried an ACK (bool).
    acked: np.ndarray

    @classmethod
    def empty(cls) -> "FirstContactAggregates":
        return cls(
            pair_keys=np.asarray([], dtype=np.uint64),
            times=np.asarray([], dtype=np.float64),
            positions=np.asarray([], dtype=np.int64),
            acked=np.asarray([], dtype=bool),
        )

    @classmethod
    def from_flows(cls, flows: FlowLog, offset: int = 0) -> "FirstContactAggregates":
        """Aggregate one chunk whose first flow sits at global ``offset``."""
        tcp = flows.protocol == Protocol.TCP
        positions = offset + np.flatnonzero(tcp)
        if positions.size == 0:
            return cls.empty()
        keys = pack64(flows.src_addr[tcp], flows.dst_addr[tcp])
        times = flows.start_time[tcp]
        acked = (flows.tcp_flags[tcp] & TCPFlags.ACK) != 0
        return cls._first_per_pair(keys, times, positions, acked)

    @staticmethod
    def _first_per_pair(keys, times, positions, acked) -> "FirstContactAggregates":
        # Sort by (pair, time, position); the head of each pair run is
        # that pair's earliest contact under the exact tie-break the
        # in-memory stable time sort uses.
        order = np.lexsort((positions, times, keys))
        sorted_keys = keys[order]
        starts, _ = segment_bounds(sorted_keys)
        head = order[starts]
        return FirstContactAggregates(
            pair_keys=sorted_keys[starts],
            times=times[head],
            positions=positions[head],
            acked=acked[head],
        )

    def merge(self, other: "FirstContactAggregates") -> "FirstContactAggregates":
        """Combine two partials: per-pair min of (time, position)."""
        return self.merge_all([self, other])

    @classmethod
    def merge_all(
        cls, parts: "Iterable[FirstContactAggregates]"
    ) -> "FirstContactAggregates":
        """Merge any number of partials in one sort over their union.

        Per-pair min of ``(time, position)`` is associative and
        commutative, so one reduction is bit-identical to any chain of
        pairwise :meth:`merge` calls while sorting the running state
        only once.
        """
        parts = [p for p in parts if p.pair_keys.size]
        if not parts:
            return cls.empty()
        if len(parts) == 1:
            return parts[0]
        return cls._first_per_pair(
            np.concatenate([p.pair_keys for p in parts]),
            np.concatenate([p.times for p in parts]),
            np.concatenate([p.positions for p in parts]),
            np.concatenate([p.acked for p in parts]),
        )

    def contacts(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(sources, successes)`` in global (time, position) order —
        the exact input sequence of the in-memory walk kernel."""
        order = np.lexsort((self.positions, self.times))
        sources = (self.pair_keys[order] >> np.uint64(32)).astype(np.uint32)
        return sources, self.acked[order]


class TRWDetector:
    """Sequential hypothesis-test scan detector over a flow log."""

    def __init__(self, config: TRWConfig = TRWConfig()) -> None:
        config.validate()
        self.config = config

    def _first_contacts(self, flows: FlowLog) -> Tuple[np.ndarray, np.ndarray]:
        """First-contact outcomes in time order, as columnar arrays.

        Only the first flow to each (source, destination) pair counts —
        TRW is defined over first-contact connection attempts.  Returns
        ``(sources, successes)`` ordered by start time (ties broken by
        log position, matching the sequential reference).
        """
        tcp = flows.protocol == Protocol.TCP
        start_time = flows.start_time[tcp]
        if start_time.size == 0:
            return (
                np.asarray([], dtype=np.uint32),
                np.asarray([], dtype=bool),
            )
        order = np.argsort(start_time, kind="stable")
        src = flows.src_addr[tcp][order]
        dst = flows.dst_addr[tcp][order]
        # np.unique(return_index) keeps the EARLIEST position per pair,
        # which in time-sorted order is exactly the first contact.
        key = (src.astype(np.uint64) << np.uint64(32)) | dst.astype(np.uint64)
        _, first = np.unique(key, return_index=True)
        first.sort()  # back to chronological order
        acked = (flows.tcp_flags[tcp][order][first] & TCPFlags.ACK) != 0
        return src[first], acked

    def _walk_kernel(
        self, flows: FlowLog
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The array form of the sequential test.

        Returns ``(sources, log_ratio, outcomes, verdict_code)``, one row
        per unique source (codes: 0 pending, 1 scanner, 2 benign).  The
        per-outcome log-likelihood trajectory of each source is an exact
        grouped cumulative count of failures (an integer kernel) scaled
        by the two step sizes; the verdict and state are read off at the
        first threshold crossing, so everything after a source's crossing
        is ignored — the walk-freezing semantics of the loop.
        """
        return self._walk_from_contacts(*self._first_contacts(flows))

    def _walk_from_contacts(
        self, contact_src: np.ndarray, contact_success: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Run the walk over a time-ordered first-contact sequence."""
        cfg = self.config
        upper = math.log(cfg.upper_threshold)
        lower = math.log(cfg.lower_threshold)

        if contact_src.size == 0:
            empty = np.asarray([], dtype=np.int64)
            return contact_src, empty.astype(np.float64), empty, empty

        # Group outcomes by source, preserving time order within each.
        by_source = np.argsort(contact_src, kind="stable")
        success = contact_success[by_source]
        sources, starts, counts = np.unique(
            contact_src[by_source], return_index=True, return_counts=True
        )

        # Trajectory after k outcomes = failures*f_step + successes*s_step.
        # The grouped failure count is integer-exact, so each source's
        # trajectory is computed independently of its neighbours.
        failures = grouped_cumsum((~success).astype(np.int64), starts, counts)
        seen = segment_positions(counts) + 1
        trajectory = (
            failures * cfg.failure_step + (seen - failures) * cfg.success_step
        )

        crossed = (trajectory >= upper) | (trajectory <= lower)
        first_cross = segment_first_true(crossed, starts, counts)  # counts if none
        decided = first_cross < counts
        stop = starts + np.where(decided, first_cross, counts - 1)
        log_ratio = trajectory[stop]
        outcomes = np.where(decided, first_cross + 1, counts)
        verdict_code = np.where(
            decided, np.where(log_ratio >= upper, 1, 2), 0
        ).astype(np.int64)
        return sources, log_ratio, outcomes, verdict_code

    _VERDICTS = ("pending", "scanner", "benign")

    def walk(self, flows: FlowLog) -> Dict[int, TRWState]:
        """Run the walk for every source; returns final per-source state."""
        sources, log_ratio, outcomes, verdict_code = self._walk_kernel(flows)
        verdicts = self._VERDICTS
        return {
            source: TRWState(log_ratio=ratio, outcomes=count, verdict=verdicts[code])
            for source, ratio, count, code in zip(
                sources.tolist(), log_ratio.tolist(),
                outcomes.tolist(), verdict_code.tolist(),
            )
        }

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique source addresses declared scanners."""
        with obs.instrument("detect.trw", events=len(flows)):
            sources, _, _, verdict_code = self._walk_kernel(flows)
            return sources[verdict_code == 1].astype(np.uint32)

    def detect_chunked(
        self, chunks: Union["ChunkedFlowLog", Iterable[FlowLog]]
    ) -> np.ndarray:
        """:meth:`detect` as a fold over flow-log chunks.

        Accepts a :class:`~repro.flows.chunked.ChunkedFlowLog` or any
        iterable of positional :class:`FlowLog` slices; only one chunk
        plus the per-pair first-contact table is resident at a time.
        Bit-identical to :meth:`detect` on the concatenated log for any
        chunking, because the fold keeps each pair's earliest contact
        under the same (time, log position) order the in-memory kernel
        sorts by.
        """
        from repro.flows.chunked import ChunkedFlowLog, fold_partials

        if isinstance(chunks, ChunkedFlowLog):
            chunks = chunks.iter_chunks()
        with obs.instrument("detect.trw_chunked"):
            seen = [0]

            def _parts():
                for chunk in chunks:
                    part = FirstContactAggregates.from_flows(
                        chunk, offset=seen[0]
                    )
                    seen[0] += len(chunk)
                    yield part

            aggregate = fold_partials(
                _parts(),
                rows=lambda a: a.pair_keys.size,
                merge_all=FirstContactAggregates.merge_all,
            )
            obs.metrics.inc("detect.trw_chunked.events", seen[0])
            sources, _, _, verdict_code = self._walk_from_contacts(
                *aggregate.contacts()
            )
            return sources[verdict_code == 1].astype(np.uint32)

    # -- sequential reference ---------------------------------------------

    def _outcomes(self, flows: FlowLog) -> Iterable[Tuple[int, bool]]:
        """Yield (source, success) first-contact outcomes in time order
        (the per-flow loop the kernel replaces; kept for verification)."""
        tcp = flows.select(flows.protocol == Protocol.TCP)
        order = np.argsort(tcp.start_time, kind="stable")
        seen: set = set()
        src = tcp.src_addr
        dst = tcp.dst_addr
        acked = (tcp.tcp_flags & TCPFlags.ACK) != 0
        for i in order:
            key = (int(src[i]), int(dst[i]))
            if key in seen:
                continue
            seen.add(key)
            yield int(src[i]), bool(acked[i])

    def walk_reference(self, flows: FlowLog) -> Dict[int, TRWState]:
        """The original per-outcome sequential walk.

        This is the semantic specification the vectorized
        :meth:`walk` must match (the property tests compare them); it is
        interpreter-bound and should not be used on large logs.
        """
        cfg = self.config
        upper = math.log(cfg.upper_threshold)
        lower = math.log(cfg.lower_threshold)
        success_step = cfg.success_step
        failure_step = cfg.failure_step

        states: Dict[int, TRWState] = {}
        for source, success in self._outcomes(flows):
            state = states.setdefault(source, TRWState())
            if state.verdict != "pending":
                continue
            state.log_ratio += success_step if success else failure_step
            state.outcomes += 1
            if state.log_ratio >= upper:
                state.verdict = "scanner"
            elif state.log_ratio <= lower:
                state.verdict = "benign"
        return states
