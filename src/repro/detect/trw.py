"""Threshold Random Walk scan detection (Jung et al., Oakland 2004).

The paper cites two scan-detection lineages for its ``scan`` class (§3.1):
the Gates et al. fan-out method (implemented in
:mod:`repro.detect.scan`) and the sequential hypothesis testing of Jung,
Paxson, Berger & Balakrishnan.  This module implements the latter so both
reporting methods the paper names are available.

For each remote source we observe a sequence of first-contact connection
outcomes :math:`Y_i` (success = the flow shows an ACK, failure = it does
not).  Under hypothesis :math:`H_0` (benign) successes have probability
``theta0``; under :math:`H_1` (scanner) they have probability ``theta1 <
theta0``.  The likelihood ratio

.. math::

   \\Lambda(n) = \\prod_{i=1}^{n}
   \\frac{P(Y_i \\mid H_1)}{P(Y_i \\mid H_0)}

is updated per outcome and compared with thresholds
:math:`\\eta_0 = \\beta / (1 - \\alpha)` and
:math:`\\eta_1 = (1 - \\beta) / \\alpha` derived from the target false
positive rate ``alpha`` and false negative rate ``beta``.  Crossing
:math:`\\eta_1` declares the source a scanner; crossing :math:`\\eta_0`
declares it benign (and, as in the paper's usage, stops the walk).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.flows.log import FlowLog
from repro.flows.record import Protocol, TCPFlags

__all__ = ["TRWConfig", "TRWDetector", "TRWState"]


@dataclass(frozen=True)
class TRWConfig:
    """Sequential hypothesis test parameters (defaults follow the paper)."""

    #: P(success | benign source).
    theta0: float = 0.8

    #: P(success | scanner).
    theta1: float = 0.2

    #: Target false positive rate.
    alpha: float = 0.01

    #: Target false negative rate.
    beta: float = 0.01

    def validate(self) -> None:
        if not 0 < self.theta1 < self.theta0 < 1:
            raise ValueError("need 0 < theta1 < theta0 < 1")
        if not 0 < self.alpha < 1 or not 0 < self.beta < 1:
            raise ValueError("alpha and beta must be in (0, 1)")

    @property
    def upper_threshold(self) -> float:
        """:math:`\\eta_1`: crossing it declares a scanner."""
        return (1 - self.beta) / self.alpha

    @property
    def lower_threshold(self) -> float:
        """:math:`\\eta_0`: crossing it declares the source benign."""
        return self.beta / (1 - self.alpha)

    @property
    def success_step(self) -> float:
        """Log-likelihood increment for a successful connection."""
        return math.log(self.theta1 / self.theta0)

    @property
    def failure_step(self) -> float:
        """Log-likelihood increment for a failed connection."""
        return math.log((1 - self.theta1) / (1 - self.theta0))


@dataclass
class TRWState:
    """Walk state for one source."""

    log_ratio: float = 0.0
    outcomes: int = 0
    verdict: str = "pending"  # "pending" | "scanner" | "benign"


class TRWDetector:
    """Sequential hypothesis-test scan detector over a flow log."""

    def __init__(self, config: TRWConfig = TRWConfig()) -> None:
        config.validate()
        self.config = config

    def _outcomes(self, flows: FlowLog) -> Iterable[Tuple[int, bool]]:
        """Yield (source, success) first-contact outcomes in time order.

        Only the first flow to each (source, destination) pair counts —
        TRW is defined over first-contact connection attempts.
        """
        tcp = flows.select(flows.protocol == Protocol.TCP)
        order = np.argsort(tcp.start_time, kind="stable")
        seen: set = set()
        src = tcp.src_addr
        dst = tcp.dst_addr
        acked = (tcp.tcp_flags & TCPFlags.ACK) != 0
        for i in order:
            key = (int(src[i]), int(dst[i]))
            if key in seen:
                continue
            seen.add(key)
            yield int(src[i]), bool(acked[i])

    def walk(self, flows: FlowLog) -> Dict[int, TRWState]:
        """Run the walk for every source; returns final per-source state."""
        cfg = self.config
        upper = math.log(cfg.upper_threshold)
        lower = math.log(cfg.lower_threshold)
        success_step = cfg.success_step
        failure_step = cfg.failure_step

        states: Dict[int, TRWState] = {}
        for source, success in self._outcomes(flows):
            state = states.setdefault(source, TRWState())
            if state.verdict != "pending":
                continue
            state.log_ratio += success_step if success else failure_step
            state.outcomes += 1
            if state.log_ratio >= upper:
                state.verdict = "scanner"
            elif state.log_ratio <= lower:
                state.verdict = "benign"
        return states

    def detect(self, flows: FlowLog) -> np.ndarray:
        """Sorted unique source addresses declared scanners."""
        states = self.walk(flows)
        scanners = [src for src, st in states.items() if st.verdict == "scanner"]
        return np.unique(np.asarray(scanners, dtype=np.uint32))
