"""The staged artifact engine.

Every expensive intermediate of the reproduction — the synthetic
Internet, the botnet timeline, the October border capture, the Table 1
reports, the §6 candidate partition — is produced by a named
:class:`~repro.engine.stage.Stage` and cached in an
:class:`~repro.engine.store.ArtifactStore` keyed by a deterministic
:func:`~repro.engine.fingerprint.fingerprint` of the full
configuration (not just its seed).  Stages whose values are plain
address data additionally persist to disk (``~/.cache/repro`` or
``$REPRO_CACHE_DIR``) so warm CLI runs, benchmarks and tests skip the
simulation entirely.
"""

from repro.engine import faults, shm
from repro.engine.faults import FaultPlan, FaultRule, FaultSpecError, InjectedFault
from repro.engine.shm import SharedHandle, SharedPack
from repro.engine.fingerprint import canonicalize, fingerprint
from repro.engine.stage import Stage, StageContext, StageEngine
from repro.engine.store import (
    MISS,
    ArrayCodec,
    ArtifactMissing,
    ArtifactStore,
    Codec,
    CorruptArtifact,
    PartitionCodec,
    ReportMappingCodec,
    StoreError,
    VersionSkew,
    default_store,
    reset_default_store,
    resolve_cache_dir,
    set_default_store,
)

__all__ = [
    "canonicalize",
    "fingerprint",
    "Stage",
    "StageContext",
    "StageEngine",
    "MISS",
    "ArtifactStore",
    "Codec",
    "ReportMappingCodec",
    "PartitionCodec",
    "ArrayCodec",
    "StoreError",
    "ArtifactMissing",
    "VersionSkew",
    "CorruptArtifact",
    "faults",
    "shm",
    "SharedHandle",
    "SharedPack",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "default_store",
    "set_default_store",
    "reset_default_store",
    "resolve_cache_dir",
]
