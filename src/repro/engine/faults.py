"""Deterministic fault injection for the artifact engine.

The chaos-test substrate: a :class:`FaultPlan` is a schedule of
:class:`FaultRule` entries, each naming an injection **site** (a
string such as ``"store.read"``) and a fault **kind** (raise an
``OSError``, corrupt a payload, crash the worker process, sleep).
Production code calls :func:`check` at each site; with no active plan
that is a dictionary lookup and nothing more.

Scheduling is purely counter-based — a rule fires on every ``every``-th
eligible call to its site, after skipping the first ``after`` calls and
at most ``times`` times — so a plan's behaviour is a deterministic
function of the sequence of site calls.  ``seed`` shifts every rule's
phase, giving distinct-but-reproducible schedules from one spec.

Activation:

* ``REPRO_FAULTS=<spec>`` in the environment (read lazily, so pool
  worker processes pick the plan up regardless of start method), or
* ``with injected(plan): ...`` in tests (overrides the environment for
  the duration of the block).

Spec grammar (sites joined with ``;``)::

    REPRO_FAULTS="store.write:enospc:every=3;worker.crash:every=5,times=2"
    REPRO_FAULTS="io-flaky"          # named profile, see PROFILES

The kind may be omitted when the site has an obvious default
(``store.read`` -> ``oserror``, ``worker.crash`` -> ``crash``, ...).

``worker.crash`` rules only act inside a multiprocessing worker (the
call still consumes a schedule slot in the main process); everything
else fires wherever it is hit.
"""

from __future__ import annotations

import errno
import logging
import multiprocessing
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

log = logging.getLogger("repro.engine.faults")

__all__ = [
    "ENV_VAR",
    "PROFILES",
    "SITES",
    "FaultSpecError",
    "InjectedFault",
    "FaultRule",
    "FaultPlan",
    "active_plan",
    "activate",
    "injected",
    "reset",
    "check",
]

#: Environment variable holding the fault spec (or a profile name).
ENV_VAR = "REPRO_FAULTS"

#: Every injection site compiled into the engine.
SITES = (
    "store.read",     # reading a sidecar or payload from disk
    "store.write",    # writing a sidecar or payload to disk
    "store.commit",   # between payload and sidecar rename (crash window)
    "store.corrupt",  # after a successful dump: flip payload bytes
    "worker.crash",   # hard-exit a Monte-Carlo worker process
    "worker.fail",    # raise InjectedFault inside a trial chunk
    "worker.slow",    # sleep inside a trial chunk
    "stage.slow",     # sleep inside a stage build
    "shard.crash",    # hard-exit a fleet shard's worker process
    "shard.fail",     # raise InjectedFault inside a shard job
    "shard.slow",     # sleep inside a shard job (deadline pressure)
    "shard.corrupt",  # tamper with a shard's delivered report set
)

#: Kind assumed when a rule omits it.
_DEFAULT_KIND = {
    "store.read": "oserror",
    "store.write": "oserror",
    "store.commit": "slow",
    "store.corrupt": "corrupt",
    "worker.crash": "crash",
    "worker.fail": "fail",
    "worker.slow": "slow",
    "stage.slow": "slow",
    "shard.crash": "crash",
    "shard.fail": "fail",
    "shard.slow": "slow",
    "shard.corrupt": "corrupt",
}

_KINDS = ("oserror", "enospc", "fail", "crash", "slow", "corrupt")

#: Named profiles for the CI chaos matrix.  ``every`` values are chosen
#: so the store's bounded retries always recover (transient, not
#: persistent, failure): a store get/put performs two site calls per
#: attempt, so any odd period guarantees a fault-free attempt within
#: the retry budget.
PROFILES = {
    "io-flaky": "store.read:oserror:every=3;store.write:oserror:every=5",
    "disk-full": "store.write:enospc:every=3",
    "worker-crash": "worker.crash:every=3",
    "corrupt": "store.corrupt:every=3",
    "slow-stage": "stage.slow:every=2,delay=0.01",
    # Shard-boundary profiles for the fleet supervisor: every=3 keeps
    # the default retry budget (max_retries=2, three rounds) ahead of
    # the schedule, so a faulted shard always recovers on a later round.
    "shard-crash": "shard.crash:every=3",
    "shard-slow": "shard.slow:every=2,delay=0.01",
    "shard-corrupt": "shard.corrupt:every=3",
}


class FaultSpecError(ValueError):
    """A ``REPRO_FAULTS`` spec (or FaultRule) that cannot be parsed."""


class InjectedFault(RuntimeError):
    """The typed error raised by ``kind="fail"`` rules."""


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault: fire ``kind`` at ``site`` on a counter."""

    site: str
    kind: str
    every: int = 1
    times: Optional[int] = None
    after: int = 0
    delay: float = 0.05

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise FaultSpecError(
                f"unknown fault site {self.site!r}; valid sites: {', '.join(SITES)}"
            )
        if self.kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r}; valid kinds: {', '.join(_KINDS)}"
            )
        if self.every < 1:
            raise FaultSpecError(f"every must be >= 1: {self.every}")
        if self.after < 0 or (self.times is not None and self.times < 1):
            raise FaultSpecError(f"bad after/times in {self!r}")


class FaultPlan:
    """A deterministic, seedable schedule of fault rules.

    The plan keeps one call counter per site and one fire counter per
    rule; :meth:`poll` advances the site counter and returns the first
    rule whose schedule matches.  State is process-local: a forked
    worker inherits the counters at fork time, a spawned worker starts
    fresh from the environment spec.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules: Tuple[FaultRule, ...] = tuple(rules)
        self.seed = int(seed)
        self._calls: Dict[str, int] = {}
        self._fired: List[int] = [0] * len(self.rules)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``site[:kind][:k=v,...]`` rules joined by ``;``.

        A bare profile name from :data:`PROFILES` expands first.
        """
        spec = spec.strip()
        if spec in PROFILES:
            spec = PROFILES[spec]
        rules = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if chunk:
                rules.append(cls._parse_rule(chunk))
        if not rules:
            raise FaultSpecError(f"empty fault spec: {spec!r}")
        return cls(rules, seed=seed)

    @staticmethod
    def _parse_rule(text: str) -> FaultRule:
        parts = text.split(":")
        site = parts.pop(0).strip()
        kind = None
        params: Dict[str, object] = {}
        for part in parts:
            part = part.strip()
            if "=" not in part:
                if kind is not None:
                    raise FaultSpecError(f"two kinds in fault rule {text!r}")
                kind = part
                continue
            for item in part.split(","):
                key, _, raw = item.partition("=")
                key = key.strip()
                if key in ("every", "times", "after"):
                    try:
                        params[key] = int(raw)
                    except ValueError:
                        raise FaultSpecError(
                            f"non-integer {key}={raw!r} in fault rule {text!r}"
                        ) from None
                elif key == "delay":
                    try:
                        params[key] = float(raw)
                    except ValueError:
                        raise FaultSpecError(
                            f"non-numeric delay={raw!r} in fault rule {text!r}"
                        ) from None
                else:
                    raise FaultSpecError(
                        f"unknown parameter {key!r} in fault rule {text!r}"
                    )
        if kind is None:
            kind = _DEFAULT_KIND.get(site)
            if kind is None:
                raise FaultSpecError(f"fault rule {text!r} needs an explicit kind")
        return FaultRule(site=site, kind=kind, **params)  # type: ignore[arg-type]

    # -- scheduling --------------------------------------------------------

    def poll(self, site: str) -> Optional[FaultRule]:
        """Advance ``site``'s counter; the rule that fires now, if any."""
        calls = self._calls.get(site, 0) + 1
        self._calls[site] = calls
        for index, rule in enumerate(self.rules):
            if rule.site != site:
                continue
            eligible = calls - rule.after
            if eligible < 1:
                continue
            if rule.times is not None and self._fired[index] >= rule.times:
                continue
            # Fire on eligible calls every, 2*every, ... with the phase
            # pulled earlier by (seed mod every).
            delta = eligible - (self.seed % rule.every)
            if delta > 0 and delta % rule.every == 0:
                self._fired[index] += 1
                return rule
        return None

    def reset(self) -> None:
        """Zero every counter (the schedule restarts)."""
        self._calls.clear()
        self._fired = [0] * len(self.rules)

    @property
    def total_fired(self) -> int:
        return sum(self._fired)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({list(self.rules)!r}, seed={self.seed})"


# -- process-wide activation ----------------------------------------------

_ACTIVE: Optional[FaultPlan] = None
_ANNOUNCED = False


def active_plan() -> Optional[FaultPlan]:
    """The active plan: an explicit activation, else ``$REPRO_FAULTS``."""
    global _ACTIVE, _ANNOUNCED
    if _ACTIVE is None:
        spec = os.environ.get(ENV_VAR, "").strip()
        if spec:
            _ACTIVE = FaultPlan.from_spec(spec)
            if not _ANNOUNCED:
                _ANNOUNCED = True
                log.warning("fault injection active spec=%r pid=%d", spec, os.getpid())
    return _ACTIVE


def activate(plan: FaultPlan) -> None:
    """Make ``plan`` the process-wide active plan."""
    global _ACTIVE
    _ACTIVE = plan


def reset() -> None:
    """Deactivate; the next :func:`check` re-reads the environment."""
    global _ACTIVE, _ANNOUNCED
    _ACTIVE = None
    _ANNOUNCED = False


@contextmanager
def injected(plan: FaultPlan):
    """Run a block under ``plan``, restoring the previous plan after."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def check(site: str) -> Optional[FaultRule]:
    """Fire the scheduled fault for ``site``, if any.

    Raises for ``oserror``/``enospc``/``fail`` kinds, sleeps for
    ``slow``, hard-exits the process for ``crash`` (worker processes
    only), and *returns* ``corrupt`` rules for the caller to apply.
    """
    plan = active_plan()
    if plan is None:
        return None
    rule = plan.poll(site)
    if rule is None:
        return None
    if rule.kind == "oserror":
        log.info("injecting OSError site=%s", site)
        raise OSError(errno.EIO, f"injected I/O fault at {site}")
    if rule.kind == "enospc":
        log.info("injecting ENOSPC site=%s", site)
        raise OSError(errno.ENOSPC, f"injected disk-full fault at {site}")
    if rule.kind == "fail":
        log.info("injecting failure site=%s", site)
        raise InjectedFault(f"injected fault at {site}")
    if rule.kind == "slow":
        log.info("injecting delay site=%s delay=%.3fs", site, rule.delay)
        time.sleep(rule.delay)
        return rule
    if rule.kind == "crash":
        if _in_worker_process():
            log.info("injecting crash site=%s pid=%d", site, os.getpid())
            os._exit(3)
        return None  # consumed, but never kill the main process
    return rule  # "corrupt": the site applies it itself
