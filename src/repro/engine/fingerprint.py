"""Deterministic fingerprints of configuration objects.

The artifact store keys every cached stage by the *full* configuration
that produced it, not just its seed: two :class:`ScenarioConfig`\\ s that
share a seed but differ in any field must never collide.  The
fingerprint is the SHA-256 of a canonical JSON rendering of the object:

* dataclass fields are serialised **sorted by field name**, so the
  declaration order of fields never affects the fingerprint;
* values equal to their defaults hash identically whether they were
  spelled out or left implicit (both render the same value);
* containers, numpy scalars/arrays, dates and plain scalars are reduced
  to portable JSON forms, so fingerprints are stable across Python and
  numpy versions and across processes.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["canonicalize", "fingerprint"]

#: Bump when the canonical form changes so stale disk entries miss.
FINGERPRINT_VERSION = 1


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable form.

    Raises ``TypeError`` for values with no stable canonical form
    (functions, open files, RNGs...) — configurations must be plain
    data.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = sorted(dataclasses.fields(obj), key=lambda f: f.name)
        return {
            "__dataclass__": type(obj).__name__,
            "fields": {
                f.name: canonicalize(getattr(obj, f.name)) for f in fields
            },
        }
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        # repr round-trips doubles exactly; json uses it natively.
        return float(obj)
    if isinstance(obj, (datetime.date, datetime.datetime)):
        return {"__date__": obj.isoformat()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(canonicalize(v) for v in obj)}
    if isinstance(obj, dict):
        return {
            "__mapping__": [
                [canonicalize(k), canonicalize(v)]
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
            ]
        }
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}: configurations must "
        "be plain data (dataclasses, scalars, containers, arrays, dates)"
    )


def fingerprint(obj: Any) -> str:
    """A stable hex digest identifying ``obj``'s full contents."""
    payload = json.dumps(
        {"v": FINGERPRINT_VERSION, "value": canonicalize(obj)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
