"""Deterministic fingerprints of configuration objects.

The artifact store keys every cached stage by the *full* configuration
that produced it, not just its seed: two :class:`ScenarioConfig`\\ s that
share a seed but differ in any field must never collide.  The
fingerprint is the SHA-256 of a canonical JSON rendering of the object:

* dataclass fields are serialised **sorted by field name**, so the
  declaration order of fields never affects the fingerprint;
* values equal to their defaults hash identically whether they were
  spelled out or left implicit (both render the same value);
* containers, numpy scalars/arrays, dates and plain scalars are reduced
  to portable JSON forms, so fingerprints are stable across Python and
  numpy versions and across processes;
* fields declared with :func:`addendum_field` are **omitted** from the
  canonical form while they hold their default value, so a config class
  can grow new opt-in knobs without invalidating every fingerprint (and
  therefore every cached artifact) minted before the knob existed.  A
  non-default value still changes the fingerprint, exactly as any other
  field would.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
import json
from typing import Any

import numpy as np

__all__ = ["FP_OMIT_DEFAULT", "addendum_field", "canonicalize", "fingerprint"]

#: Bump when the canonical form changes so stale disk entries miss.
FINGERPRINT_VERSION = 1

#: Field-metadata key marking a dataclass field as fingerprint-omitted
#: while it equals its declared default.
FP_OMIT_DEFAULT = "fingerprint_omit_default"


def addendum_field(*, default=dataclasses.MISSING,
                   default_factory=dataclasses.MISSING, **kwargs):
    """A dataclass field added *after* fingerprints of the class were
    pinned: omitted from the canonical form while at its default.

    Use for every new knob on an already-shipped config class whose
    default means "behave exactly as before" — old cache keys stay
    valid, and only configs that actually opt in re-fingerprint.
    """
    metadata = dict(kwargs.pop("metadata", None) or {})
    metadata[FP_OMIT_DEFAULT] = True
    if default is not dataclasses.MISSING:
        return dataclasses.field(default=default, metadata=metadata, **kwargs)
    if default_factory is not dataclasses.MISSING:
        return dataclasses.field(
            default_factory=default_factory, metadata=metadata, **kwargs
        )
    raise TypeError("addendum_field requires a default: an addendum with "
                    "no default could never be omitted")


def _field_default(f: "dataclasses.Field") -> Any:
    if f.default is not dataclasses.MISSING:
        return f.default
    if f.default_factory is not dataclasses.MISSING:  # type: ignore[misc]
        return f.default_factory()  # type: ignore[misc]
    return dataclasses.MISSING


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a canonical JSON-serialisable form.

    Raises ``TypeError`` for values with no stable canonical form
    (functions, open files, RNGs...) — configurations must be plain
    data.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = sorted(dataclasses.fields(obj), key=lambda f: f.name)
        rendered = {}
        for f in fields:
            value = canonicalize(getattr(obj, f.name))
            if f.metadata.get(FP_OMIT_DEFAULT):
                default = _field_default(f)
                if (default is not dataclasses.MISSING
                        and value == canonicalize(default)):
                    continue
            rendered[f.name] = value
        return {"__dataclass__": type(obj).__name__, "fields": rendered}
    if obj is None or isinstance(obj, (bool, str)):
        return obj
    if isinstance(obj, (int, np.integer)):
        return int(obj)
    if isinstance(obj, (float, np.floating)):
        # repr round-trips doubles exactly; json uses it natively.
        return float(obj)
    if isinstance(obj, (datetime.date, datetime.datetime)):
        return {"__date__": obj.isoformat()}
    if isinstance(obj, np.ndarray):
        return {"__ndarray__": obj.tolist(), "dtype": str(obj.dtype)}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(canonicalize(v) for v in obj)}
    if isinstance(obj, dict):
        return {
            "__mapping__": [
                [canonicalize(k), canonicalize(v)]
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
            ]
        }
    raise TypeError(
        f"cannot fingerprint {type(obj).__name__!r}: configurations must "
        "be plain data (dataclasses, scalars, containers, arrays, dates)"
    )


def fingerprint(obj: Any) -> str:
    """A stable hex digest identifying ``obj``'s full contents."""
    payload = json.dumps(
        {"v": FINGERPRINT_VERSION, "value": canonicalize(obj)},
        sort_keys=True,
        separators=(",", ":"),
        allow_nan=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
