"""Shared-memory handoff for Monte-Carlo worker processes.

``monte_carlo`` re-pickles its control report and statistic into every
chunk submission — at paper scale that is megabytes of address and
block-set columns serialised once per chunk, per retry, through the
process-pool pipe.  This module ships those hot columns once instead:

* :meth:`SharedPack.create` copies a dict of arrays into **one**
  :class:`multiprocessing.shared_memory.SharedMemory` segment and
  returns a picklable :class:`SharedHandle` (segment name + per-array
  dtype/shape/offset table) that costs a few hundred bytes on the wire;
* :func:`attach` maps the segment back into a worker and returns
  read-only zero-copy views, cached per process so repeated chunks of
  one evaluation attach exactly once;
* :func:`share_ensemble` / :func:`attach_ensemble` are the same codec
  specialised to :class:`~repro.core.trials.TrialEnsemble` — the trial
  matrix travels as a handle, reconstructing without copying a row.

The creator owns the segment: :meth:`SharedPack.unlink` frees it after
the evaluation completes (workers merely :meth:`close` their maps).
Attachment deliberately skips Python's ``resource_tracker`` (via
``track=False`` on 3.13+, else the documented ``unregister`` workaround
for bpo-39959): the tracker would otherwise unlink the segment when the
*first* worker exits, yanking it out from under its siblings.

Everything degrades transparently: callers test :func:`available` and
fall back to plain pickling when the platform (or a sandbox) lacks
shared memory, so results never depend on the transport.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.trials import TrialEnsemble

try:  # pragma: no cover - exercised indirectly on every platform
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - no shm on this platform
    _shared_memory = None  # type: ignore[assignment]

__all__ = [
    "available",
    "SharedHandle",
    "SharedPack",
    "attach",
    "detach_all",
    "share_ensemble",
    "attach_ensemble",
]

#: Byte alignment of each array inside the segment (cache-line friendly,
#: and safe for any numpy dtype's natural alignment).
_ALIGN = 64


def available() -> bool:
    """Whether POSIX shared memory is usable on this interpreter."""
    return _shared_memory is not None


@dataclass(frozen=True)
class SharedHandle:
    """A picklable reference to one packed segment.

    ``entries`` rows are ``(key, dtype_str, shape, offset)`` — enough to
    rebuild every array as a view over the mapped buffer.
    """

    name: str
    entries: Tuple[Tuple[str, str, Tuple[int, ...], int], ...]
    nbytes: int


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


class SharedPack:
    """Creator-side owner of one shared segment holding many arrays."""

    def __init__(self, segment, handle: SharedHandle) -> None:
        self._segment = segment
        self.handle = handle

    @classmethod
    def create(cls, arrays: Dict[str, np.ndarray]) -> "SharedPack":
        """Copy ``arrays`` into a fresh segment (one copy, at creation)."""
        if _shared_memory is None:
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        layout = []
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(offset)
            layout.append((key, array, offset))
            offset += array.nbytes
        total = max(offset, 1)  # zero-byte segments are not allowed
        segment = _shared_memory.SharedMemory(create=True, size=total)
        entries = []
        for key, array, start in layout:
            view = np.ndarray(
                array.shape, dtype=array.dtype, buffer=segment.buf, offset=start
            )
            view[...] = array
            entries.append((key, array.dtype.str, tuple(array.shape), start))
        handle = SharedHandle(
            name=segment.name, entries=tuple(entries), nbytes=total
        )
        return cls(segment, handle)

    def close(self) -> None:
        """Unmap the creator's view (the segment itself stays alive)."""
        self._segment.close()

    def unlink(self) -> None:
        """Free the segment for good (close any local map first)."""
        try:
            self._segment.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already unlinked
            pass


def _attach_segment(name: str):
    """Map an existing segment without resource-tracker ownership.

    Before 3.13 (``track=False``), merely *attaching* registers the
    segment with the global resource tracker, which would unlink it —
    and spam warnings — on worker exit (bpo-39959).  The portable
    workaround suppresses that registration for the duration of the
    attach; workers here are single-threaded, so the swap is safe.
    """
    assert _shared_memory is not None
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register

        def _skip_shared_memory(resource_name, rtype):
            if rtype != "shared_memory":
                original(resource_name, rtype)

        resource_tracker.register = _skip_shared_memory
        try:
            return _shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


#: Per-process attachment cache: segment name -> (segment, views).
#: One evaluation's workers attach each segment exactly once no matter
#: how many chunks they process.
_ATTACHED: Dict[str, Tuple[object, Dict[str, np.ndarray]]] = {}


def attach(handle: SharedHandle) -> Dict[str, np.ndarray]:
    """Read-only zero-copy views of every array in ``handle``."""
    cached = _ATTACHED.get(handle.name)
    if cached is not None:
        return cached[1]
    segment = _attach_segment(handle.name)
    views: Dict[str, np.ndarray] = {}
    for key, dtype_str, shape, offset in handle.entries:
        view = np.ndarray(
            shape, dtype=np.dtype(dtype_str), buffer=segment.buf, offset=offset
        )
        view.setflags(write=False)
        views[key] = view
    _ATTACHED[handle.name] = (segment, views)
    return views


def detach_all() -> None:
    """Drop every cached attachment (views become invalid; test hook)."""
    for segment, views in _ATTACHED.values():
        views.clear()
        try:
            segment.close()
        except (OSError, BufferError):  # pragma: no cover - best effort
            pass
    _ATTACHED.clear()


# -- TrialEnsemble codec ---------------------------------------------------


def share_ensemble(ensemble: "TrialEnsemble") -> Tuple[SharedPack, dict]:
    """Pack an ensemble's matrix for shipping; returns ``(pack, meta)``.

    ``meta`` carries the cheap scalar fields; pickle
    ``(pack.handle, meta)`` to a worker and rebuild with
    :func:`attach_ensemble`.
    """
    pack = SharedPack.create({"matrix": ensemble.matrix})
    return pack, {"start": ensemble.start, "source_tag": ensemble.source_tag}


def attach_ensemble(handle: SharedHandle, meta: dict) -> "TrialEnsemble":
    """Rebuild a shared ensemble without copying the matrix."""
    from repro.core.trials import TrialEnsemble

    views = attach(handle)
    return TrialEnsemble(
        matrix=views["matrix"],
        start=int(meta["start"]),
        source_tag=str(meta["source_tag"]),
    )
