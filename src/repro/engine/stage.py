"""Stages: named, dependency-declaring builders of cached artifacts.

A :class:`Stage` couples a name, the names of the stages it consumes, a
builder function and (optionally) a :class:`~repro.engine.store.Codec`
for disk persistence.  A :class:`StageEngine` resolves stage values for
a configuration, consulting the artifact store first and counting every
real build — the counters are how tests prove a warm run performed no
simulation.
"""

from __future__ import annotations

import logging
import time
from collections import Counter
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.engine import faults
from repro.engine.fingerprint import fingerprint
from repro.engine.store import MISS, ArtifactStore, Codec
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["Stage", "StageContext", "StageEngine"]

log = logging.getLogger("repro.engine.stage")


@dataclass(frozen=True)
class Stage:
    """One named step of the pipeline.

    ``builder`` receives a :class:`StageContext` and returns the stage
    value.  Stages without a ``codec`` cache in memory only (their
    values hold live simulation objects); stages with one also persist
    to disk.
    """

    name: str
    builder: Callable[["StageContext"], Any]
    deps: Tuple[str, ...] = ()
    codec: Optional[Codec] = None


class StageContext:
    """What a builder sees: the configuration and its upstream stages."""

    def __init__(self, engine: "StageEngine", config: Any) -> None:
        self.engine = engine
        self.config = config

    def dep(self, name: str) -> Any:
        """Resolve an upstream stage for the same configuration."""
        return self.engine.resolve(self.config, name)


class StageEngine:
    """Resolves stage values through a fingerprint-keyed artifact store."""

    def __init__(self, stages: Sequence[Stage], store: ArtifactStore) -> None:
        self._stages: Dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self._stages:
                raise ValueError(f"duplicate stage name: {stage.name!r}")
            self._stages[stage.name] = stage
        for stage in stages:
            for dep in stage.deps:
                if dep not in self._stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
        self.store = store
        #: ``{stage name: number of real (non-cached) builds}``.
        self.build_counts: Counter = Counter()
        self._fingerprints: Dict[Any, str] = {}

    @property
    def stages(self) -> Tuple[str, ...]:
        return tuple(self._stages)

    def config_fingerprint(self, config: Any) -> str:
        """Fingerprint of ``config`` (memoised by config equality)."""
        try:
            cached = self._fingerprints.get(config)
        except TypeError:  # unhashable config: just recompute
            return fingerprint(config)
        if cached is None:
            cached = fingerprint(config)
            if len(self._fingerprints) > 256:
                self._fingerprints.clear()
            self._fingerprints[config] = cached
        return cached

    def key(self, config: Any, stage_name: str) -> str:
        return f"{self.config_fingerprint(config)}/{stage_name}"

    def resolve(self, config: Any, stage_name: str) -> Any:
        """The stage's value for ``config``, building it only on a miss."""
        try:
            stage = self._stages[stage_name]
        except KeyError:
            raise KeyError(
                f"unknown stage {stage_name!r}; have {sorted(self._stages)}"
            ) from None
        key = self.key(config, stage_name)
        value = self.store.get(key, stage.codec)
        if value is not MISS:
            return value
        faults.check("stage.slow")
        started = time.perf_counter()
        with obs_trace.span(f"stage.{stage_name}", key=key):
            value = stage.builder(StageContext(self, config))
        elapsed = time.perf_counter() - started
        self.build_counts[stage_name] += 1
        obs_metrics.inc(f"stage.builds.{stage_name}")
        obs_metrics.observe(f"stage.seconds.{stage_name}", elapsed)
        log.debug(
            "stage built stage=%s key=%s elapsed=%.3fs",
            stage_name, key, elapsed,
        )
        self.store.put(key, value, stage.codec)
        return value

    def reset_counters(self) -> None:
        self.build_counts.clear()
