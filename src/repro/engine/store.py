"""Content-addressed artifact store: in-memory LRU plus on-disk layer.

Keys are ``"<config-fingerprint>/<stage-name>"`` strings.  Every value
lives in a bounded in-memory LRU; stages that declare a :class:`Codec`
additionally persist to disk so the artifact survives across processes
(warm CLI runs, CI steps, benchmark sessions).

Disk location: ``$REPRO_CACHE_DIR`` when set (an empty value disables
the disk layer entirely), otherwise ``~/.cache/repro``.  Payloads are
``.npz`` arrays plus a ``.json`` metadata sidecar — nothing is pickled.

Fault tolerance (the disk layer is a cache, so no disk failure may ever
fail a run or corrupt a result):

* every sidecar carries a SHA-256 **checksum** of its payload, verified
  on read; a mismatch, unparseable sidecar or missing payload is
  **quarantined** to ``<cache>/quarantine/`` and treated as a miss;
* the payload is renamed into place *before* the sidecar, so a crash
  mid-``put`` leaves an orphan payload (swept to quarantine on the next
  store init), never a readable-but-wrong entry;
* transient ``OSError``\\ s are retried with exponential backoff; a put
  that still fails **degrades the store to memory-only mode** with a
  one-time warning — later runs simply rebuild;
* :meth:`ArtifactStore.doctor` verifies every entry, re-sweeps orphans
  and reports the health counters (the ``uncleanliness cache doctor``
  CLI verb).

Injection points for the chaos suite live in :mod:`repro.engine.faults`
(``store.read``, ``store.write``, ``store.commit``, ``store.corrupt``).
"""

from __future__ import annotations

import datetime
import hashlib
import io
import json
import logging
import os
import tempfile
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from repro.engine import faults
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import warn_event

__all__ = [
    "MISS",
    "StoreError",
    "ArtifactMissing",
    "VersionSkew",
    "CorruptArtifact",
    "Codec",
    "ReportMappingCodec",
    "PartitionCodec",
    "ArrayCodec",
    "ArtifactStore",
    "resolve_cache_dir",
    "default_store",
    "set_default_store",
    "reset_default_store",
]

log = logging.getLogger("repro.engine.store")

#: Sentinel returned by :meth:`ArtifactStore.get` on a miss (``None`` can
#: be a legitimate artifact value).
MISS = object()

#: Bump when the on-disk payload layout changes, or when artifact VALUES
#: change for the same fingerprint.  Version 3 added the payload
#: checksum to the sidecar envelope (entries without one are skewed).
STORE_FORMAT_VERSION = 3

#: Name of the quarantine subdirectory under the cache root.
QUARANTINE_DIR = "quarantine"


class StoreError(Exception):
    """Base class for typed artifact-store errors."""


class ArtifactMissing(StoreError):
    """No entry on disk (a plain miss, not a failure)."""


class VersionSkew(StoreError):
    """An entry written by another store format version (plain miss)."""


class CorruptArtifact(StoreError):
    """An entry that exists but cannot be trusted (quarantined)."""


def _sidecar(base: Path) -> Path:
    """Metadata path for a base name (append, never replace, a suffix —
    the base already contains dots from the cache key)."""
    return base.parent / (base.name + ".json")


def _payload(base: Path) -> Path:
    """Array-payload path for a base name."""
    return base.parent / (base.name + ".npz")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-then-rename so concurrent readers never see a torn file."""
    faults.check("store.write")
    with tempfile.NamedTemporaryFile(
        dir=str(path.parent), suffix=path.suffix + ".tmp", delete=False
    ) as handle:
        handle.write(data)
        tmp = handle.name
    os.replace(tmp, str(path))


def _read_envelope(base: Path) -> Tuple[dict, bytes]:
    """The verified ``(envelope, payload bytes)`` of an entry.

    Raises :class:`ArtifactMissing` when there is no sidecar,
    :class:`VersionSkew` on a format mismatch, and
    :class:`CorruptArtifact` when the sidecar is unparseable, the
    payload is missing, or the checksum does not match.
    """
    sidecar = _sidecar(base)
    if not sidecar.exists():
        raise ArtifactMissing(f"no sidecar for {base.name}")
    faults.check("store.read")
    raw = sidecar.read_bytes()
    try:
        envelope = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise CorruptArtifact(f"unparseable sidecar {sidecar.name}: {err}") from None
    if not isinstance(envelope, dict):
        raise CorruptArtifact(f"sidecar {sidecar.name} is not an object")
    if envelope.get("format") != STORE_FORMAT_VERSION:
        raise VersionSkew(
            f"{sidecar.name}: format {envelope.get('format')!r}, "
            f"want {STORE_FORMAT_VERSION}"
        )
    faults.check("store.read")
    try:
        payload_bytes = _payload(base).read_bytes()
    except FileNotFoundError:
        raise CorruptArtifact(f"sidecar without payload: {base.name}") from None
    digest = hashlib.sha256(payload_bytes).hexdigest()
    if envelope.get("checksum") != digest:
        raise CorruptArtifact(
            f"checksum mismatch for {base.name}: "
            f"sidecar {envelope.get('checksum')!r} != payload {digest[:16]}..."
        )
    return envelope, payload_bytes


def verify_entry(base: Path) -> dict:
    """Checksum-verify one entry; its envelope, or a typed error."""
    envelope, _ = _read_envelope(base)
    return envelope


def _corrupt_payload(base: Path) -> None:
    """Flip one byte of the payload (the ``store.corrupt`` fault)."""
    path = _payload(base)
    try:
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
    except OSError:  # pragma: no cover - nothing to corrupt
        pass


class Codec:
    """Serialises one stage's value to ``<base>.npz`` + ``<base>.json``.

    Subclasses implement :meth:`to_payload` / :meth:`from_payload`
    mapping the value to ``(arrays, meta)`` where ``arrays`` is a
    ``{name: ndarray}`` dict and ``meta`` is JSON-serialisable.
    """

    name = "codec"

    def to_payload(self, value: Any):
        raise NotImplementedError

    def from_payload(self, arrays: Dict[str, np.ndarray], meta: Any) -> Any:
        raise NotImplementedError

    # -- file plumbing ----------------------------------------------------

    def dump(self, value: Any, base: Path) -> int:
        """Persist ``value``: payload first, checksummed sidecar last.

        The sidecar rename is the commit point — a crash before it
        leaves an orphan payload that the next store init quarantines,
        never a readable entry with a missing or stale payload.
        Returns the number of payload+sidecar bytes written (the
        per-stage bytes metric).
        """
        arrays, meta = self.to_payload(value)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload_bytes = buffer.getvalue()
        envelope = {
            "format": STORE_FORMAT_VERSION,
            "codec": self.name,
            "checksum": hashlib.sha256(payload_bytes).hexdigest(),
            "meta": meta,
        }
        sidecar_bytes = json.dumps(envelope, sort_keys=True).encode("utf-8")
        _atomic_write_bytes(_payload(base), payload_bytes)
        faults.check("store.commit")  # the chaos suite's crash window
        _atomic_write_bytes(_sidecar(base), sidecar_bytes)
        if faults.check("store.corrupt") is not None:
            _corrupt_payload(base)
        return len(payload_bytes) + len(sidecar_bytes)

    def load(self, base: Path) -> Any:
        envelope, payload_bytes = _read_envelope(base)
        if envelope.get("codec") != self.name:
            raise CorruptArtifact(
                f"codec mismatch for {base.name}: "
                f"{envelope.get('codec')!r} != {self.name!r}"
            )
        try:
            with np.load(io.BytesIO(payload_bytes)) as payload:
                arrays = {key: payload[key] for key in payload.files}
            return self.from_payload(arrays, envelope["meta"])
        except (KeyError, ValueError) as err:
            raise CorruptArtifact(f"undecodable payload {base.name}: {err}") from None


def _report_meta(report: Report) -> dict:
    period = None
    if report.period is not None:
        period = [report.period[0].isoformat(), report.period[1].isoformat()]
    return {
        "tag": report.tag,
        "report_type": report.report_type,
        "data_class": report.data_class,
        "period": period,
    }


def _report_from(addresses: np.ndarray, meta: dict) -> Report:
    # Lazy: repro.core imports repro.flows, whose chunked layer needs
    # this module — a cycle if the Report types were bound at import.
    from repro.core.report import Report

    period = None
    if meta["period"] is not None:
        period = (
            datetime.date.fromisoformat(meta["period"][0]),
            datetime.date.fromisoformat(meta["period"][1]),
        )
    return Report(
        tag=meta["tag"],
        addresses=addresses.astype(np.uint32),
        report_type=meta["report_type"],
        data_class=meta["data_class"],
        period=period,
    )


class ReportMappingCodec(Codec):
    """``{key: Report}`` dicts — e.g. the scenario's Table 1 reports."""

    name = "report-mapping"

    def to_payload(self, value: Dict[str, Report]):
        arrays = {key: report.addresses for key, report in value.items()}
        meta = {key: _report_meta(report) for key, report in value.items()}
        return arrays, meta

    def from_payload(self, arrays, meta) -> Dict[str, Report]:
        return {key: _report_from(arrays[key], meta[key]) for key in meta}


class PartitionCodec(Codec):
    """The §6 :class:`CandidatePartition` (four reports)."""

    name = "candidate-partition"
    _FIELDS = ("candidate", "hostile", "unknown", "innocent")

    def to_payload(self, value: CandidatePartition):
        reports = {name: getattr(value, name) for name in self._FIELDS}
        arrays = {name: report.addresses for name, report in reports.items()}
        meta = {name: _report_meta(report) for name, report in reports.items()}
        return arrays, meta

    def from_payload(self, arrays, meta) -> CandidatePartition:
        from repro.core.blocking import CandidatePartition

        return CandidatePartition(
            **{name: _report_from(arrays[name], meta[name]) for name in self._FIELDS}
        )


class ArrayCodec(Codec):
    """A bare ndarray — Monte-Carlo chunk checkpoints."""

    name = "ndarray"

    def to_payload(self, value):
        return {"values": np.asarray(value)}, None

    def from_payload(self, arrays, meta):
        return arrays["values"]


def resolve_cache_dir(ensure: bool = False) -> Optional[Path]:
    """The on-disk cache root, or ``None`` when disabled.

    ``$REPRO_CACHE_DIR`` overrides the default ``~/.cache/repro``; an
    empty ``$REPRO_CACHE_DIR`` disables the disk layer.  With
    ``ensure=True`` the directory is created and probe-written, and an
    uncreatable or unwritable directory (read-only ``$HOME`` in a CI
    container, say) falls back to ``None`` — memory-only — with a
    warning instead of crashing the run.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        if not env.strip():
            return None
        path = Path(env)
    else:
        path = Path.home() / ".cache" / "repro"
    if not ensure:
        return path
    try:
        path.mkdir(parents=True, exist_ok=True)
        probe = path / f".write-probe-{os.getpid()}"
        probe.write_bytes(b"")
        probe.unlink()
    except OSError as err:
        warn_event(
            "store.cache_dir_unusable",
            f"cache dir unusable; degrading to memory-only: {err}",
            logger=log,
            dir=str(path),
        )
        return None
    return path


class ArtifactStore:
    """Bounded in-memory LRU over an optional on-disk artifact layer.

    ``io_attempts``/``io_backoff`` bound the retry-with-backoff applied
    to transient disk errors; a put that exhausts its retries degrades
    the store to memory-only mode (``degraded``), because a cache that
    cannot write must never fail the run that is filling it.
    """

    def __init__(
        self,
        max_memory_items: int = 64,
        disk_dir: Optional[Path] = None,
        enable_disk: bool = True,
        io_attempts: int = 3,
        io_backoff: float = 0.02,
        sweep: bool = True,
    ) -> None:
        if max_memory_items < 1:
            raise ValueError("max_memory_items must be >= 1")
        if io_attempts < 1:
            raise ValueError("io_attempts must be >= 1")
        self.max_memory_items = max_memory_items
        self.disk_dir = Path(disk_dir) if (enable_disk and disk_dir) else None
        self.io_attempts = io_attempts
        self.io_backoff = io_backoff
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        # -- health counters (the `cache doctor` vital signs) -------------
        self.read_errors = 0
        self.write_errors = 0
        self.retries = 0
        self.quarantined = 0
        self.orphans_swept = 0
        self.tmp_removed = 0
        self.version_skew = 0
        self.degraded = False
        self.degraded_reason: Optional[str] = None
        if self.disk_dir is not None and sweep:
            try:
                self._sweep_orphans()
            except OSError as err:
                log.warning("orphan sweep failed dir=%s err=%s", self.disk_dir, err)

    # -- keys -------------------------------------------------------------

    @staticmethod
    def _base_name(key: str) -> str:
        return key.replace("/", ".")

    def _disk_base(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / self._base_name(key)

    @property
    def quarantine_dir(self) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / QUARANTINE_DIR

    # -- retry / degradation ----------------------------------------------

    def _with_retries(self, op):
        """Run ``op``, retrying transient OSErrors with backoff.

        Typed store errors (missing, skewed, corrupt) are never
        retried — they are verdicts, not weather.
        """
        last: Optional[OSError] = None
        for attempt in range(self.io_attempts):
            try:
                return op()
            except StoreError:
                raise
            except OSError as err:
                last = err
                if attempt + 1 < self.io_attempts:
                    self.retries += 1
                    obs_metrics.inc("store.retries")
                    time.sleep(self.io_backoff * (2 ** attempt))
        assert last is not None
        raise last

    def _degrade(self, reason: str) -> None:
        """One-way switch to memory-only writes, warned exactly once."""
        if not self.degraded:
            self.degraded = True
            self.degraded_reason = reason
            warn_event(
                "store.degraded",
                f"store degraded to memory-only dir={self.disk_dir} "
                f"reason={reason}",
                logger=log,
            )

    def _quarantine(self, base: Path, reason: str = "") -> int:
        """Move an entry's files out of the hot path; files moved."""
        qdir = self.quarantine_dir
        if qdir is None:
            return 0
        moved = 0
        for path in (_payload(base), _sidecar(base)):
            if not path.exists():
                continue
            try:
                qdir.mkdir(parents=True, exist_ok=True)
                target = qdir / path.name
                serial = 0
                while target.exists():
                    serial += 1
                    target = qdir / f"{path.name}.{serial}"
                os.replace(str(path), str(target))
                moved += 1
            except OSError as err:
                log.warning("quarantine failed file=%s err=%s", path, err)
        if moved:
            self.quarantined += 1
            warn_event(
                "store.quarantined",
                f"store quarantined entry={base.name} files={moved} "
                f"reason={reason or 'unspecified'}",
                logger=log,
            )
        return moved

    def _sweep_orphans(self) -> None:
        """Quarantine half-written entries and drop stale temp files.

        A payload ``.npz`` without its ``.json`` sidecar (a crash
        mid-put) — or the reverse — would otherwise miss on every read
        forever.  Runs at store init and from :meth:`doctor`.
        """
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return
        payloads, sidecars = set(), set()
        for path in self.disk_dir.iterdir():
            if not path.is_file():
                continue
            if path.name.endswith(".tmp"):
                try:
                    path.unlink()
                    self.tmp_removed += 1
                except OSError:
                    pass
            elif path.name.endswith(".npz"):
                payloads.add(path.name[: -len(".npz")])
            elif path.name.endswith(".json"):
                sidecars.add(path.name[: -len(".json")])
        for name in sorted(payloads.symmetric_difference(sidecars)):
            if name.startswith(".write-probe"):
                continue
            side = "payload" if name in payloads else "sidecar"
            if self._quarantine(self.disk_dir / name, reason=f"orphan {side}"):
                self.orphans_swept += 1

    # -- access -----------------------------------------------------------

    def get(self, key: str, codec: Optional[Codec] = None, cache: bool = True) -> Any:
        """The cached value for ``key``, or :data:`MISS`.

        ``cache=False`` streams the value past the in-memory LRU: a disk
        hit is decoded and returned without being remembered.  The
        out-of-core flow-log layer uses this so iterating a hundred
        chunks leaves the LRU — and peak RSS — untouched.
        """
        with obs_trace.span("store.get", key=key) as sp:
            value, outcome = self._lookup(key, codec, cache)
            sp.set(outcome=outcome)
        obs_metrics.inc(f"store.get.{outcome}")
        return value

    def _lookup(
        self, key: str, codec: Optional[Codec], cache: bool = True
    ) -> Tuple[Any, str]:
        if key in self._memory:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return self._memory[key], "memory-hit"
        base = self._disk_base(key)
        if codec is not None and base is not None:
            value = self._disk_read(key, base, codec)
            if value is not MISS:
                self.disk_hits += 1
                if cache:
                    self._remember(key, value)
                return value, "disk-hit"
        self.misses += 1
        return MISS, "miss"

    def _disk_read(self, key: str, base: Path, codec: Codec) -> Any:
        try:
            return self._with_retries(lambda: codec.load(base))
        except ArtifactMissing:
            return MISS
        except VersionSkew as err:
            self.version_skew += 1
            log.info("store version skew key=%s err=%s", key, err)
            return MISS
        except CorruptArtifact as err:
            self._quarantine(base, reason=str(err))
            return MISS
        except OSError as err:
            self.read_errors += 1
            log.warning(
                "store read failed key=%s err=%s; treating as miss", key, err
            )
            return MISS

    def put(
        self,
        key: str,
        value: Any,
        codec: Optional[Codec] = None,
        cache: bool = True,
    ) -> None:
        """Cache ``value``; persist to disk when a codec is given.

        ``cache=False`` writes through to disk without pinning the value
        in the in-memory LRU (the spill path of the out-of-core flow-log
        layer — chunks are written once and re-read streamingly).
        """
        self.puts += 1
        with obs_trace.span("store.put", key=key) as sp:
            outcome, nbytes = self._store(key, value, codec, cache)
            sp.set(outcome=outcome)
        obs_metrics.inc(f"store.put.{outcome}")
        if nbytes:
            stage = key.rsplit("/", 1)[-1]
            obs_metrics.inc(f"store.bytes.{stage}", nbytes)

    def _store(
        self, key: str, value: Any, codec: Optional[Codec], cache: bool = True
    ) -> Tuple[str, int]:
        if cache:
            self._remember(key, value)
        base = self._disk_base(key)
        if codec is None or base is None:
            return "memory", 0
        if self.degraded:
            return "degraded", 0
        try:
            nbytes = self._with_retries(lambda: self._dump(base, codec, value))
            return "disk", int(nbytes or 0)
        except StoreError as err:  # pragma: no cover - dump never raises these
            self.write_errors += 1
            log.warning("store write failed key=%s err=%s", key, err)
            return "error", 0
        except OSError as err:
            self.write_errors += 1
            self._degrade(f"{type(err).__name__}: {err}")
            return "error", 0

    def _dump(self, base: Path, codec: Codec, value: Any) -> int:
        base.parent.mkdir(parents=True, exist_ok=True)
        return codec.dump(value, base)

    def has_disk(self, key: str) -> bool:
        """Whether ``key`` has a complete entry on disk right now.

        The out-of-core flow-log spiller uses this to confirm a
        ``cache=False`` write actually landed; when it did not (no disk
        layer, or the store degraded mid-write) the chunk must stay
        resident with the caller.
        """
        base = self._disk_base(key)
        if base is None or self.degraded:
            return False
        return _sidecar(base).exists() and _payload(base).exists()

    def disk_entry_bytes(self, key: str) -> int:
        """Payload + sidecar bytes of ``key`` on disk (0 when absent)."""
        base = self._disk_base(key)
        if base is None:
            return 0
        total = 0
        for path in (_payload(base), _sidecar(base)):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def drop(self, key: str) -> None:
        """Forget ``key`` everywhere (memory and disk, best effort)."""
        self._memory.pop(key, None)
        base = self._disk_base(key)
        if base is None:
            return
        for path in (_payload(base), _sidecar(base)):
            try:
                path.unlink()
            except OSError:
                pass

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_items:
            self._memory.popitem(last=False)
            self.evictions += 1

    # -- maintenance -------------------------------------------------------

    def _disk_files(self):
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return [
            path
            for path in self.disk_dir.iterdir()
            if path.is_file() and path.suffix in (".npz", ".json")
        ]

    def _quarantine_files(self):
        qdir = self.quarantine_dir
        if qdir is None or not qdir.is_dir():
            return []
        return [path for path in qdir.iterdir() if path.is_file()]

    def clear(self, memory: bool = True, disk: bool = True) -> int:
        """Drop cached artifacts; returns the number of disk files removed.

        Quarantined files are kept for post-mortems; purge them with
        :meth:`purge_quarantine` (``cache doctor --purge-quarantine``).
        """
        if memory:
            self._memory.clear()
        removed = 0
        if disk:
            for path in self._disk_files():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def purge_quarantine(self) -> int:
        """Delete quarantined files; returns how many were removed."""
        removed = 0
        for path in self._quarantine_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def health(self) -> dict:
        """The fault/degradation counters on their own."""
        return {
            "read_errors": self.read_errors,
            "write_errors": self.write_errors,
            "retries": self.retries,
            "quarantined": self.quarantined,
            "orphans_swept": self.orphans_swept,
            "tmp_removed": self.tmp_removed,
            "version_skew": self.version_skew,
            "degraded": self.degraded,
            "degraded_reason": self.degraded_reason,
        }

    def info(self) -> dict:
        """A snapshot of cache contents and hit counters."""
        files = self._disk_files()
        disk_bytes = 0
        for path in files:
            try:
                disk_bytes += path.stat().st_size
            except OSError:
                pass
        snapshot = {
            "memory_entries": len(self._memory),
            "max_memory_items": self.max_memory_items,
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
            "disk_files": len(files),
            "disk_bytes": disk_bytes,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "quarantine_files": len(self._quarantine_files()),
            # Streaming day checkpoints (repro.stream.checkpoint keys
            # look like <fp>/stream.day-<DDDDD>; one sidecar per entry).
            "stream_checkpoints": sum(
                1
                for path in files
                if path.name.endswith(".json") and ".stream.day-" in path.name
            ),
        }
        # Out-of-core flow-log chunks (repro.flows.chunked keys look like
        # <prefix>/flowchunk-<NNNNN>; count entries and payload bytes).
        chunk_files = 0
        chunk_bytes = 0
        for path in files:
            if ".flowchunk-" not in path.name:
                continue
            if path.name.endswith(".json"):
                chunk_files += 1
            try:
                chunk_bytes += path.stat().st_size
            except OSError:
                pass
        snapshot["flow_chunks"] = chunk_files
        snapshot["flow_chunk_bytes"] = chunk_bytes
        # Streaming checkpoint bytes plus fleet shard-delivery
        # checkpoints (repro.fleet keys look like
        # fleet-<fp>/shard-<name>.reports), grouped into per-namespace
        # entry/byte counts so `cache info` can show each fleet's
        # footprint separately.
        stream_bytes = 0
        fleet_entries = 0
        namespaces: Dict[str, Dict[str, int]] = {}
        for path in files:
            name = path.name
            if ".stream." in name:
                try:
                    stream_bytes += path.stat().st_size
                except OSError:
                    pass
            if ".shard-" not in name:
                continue
            entry = namespaces.setdefault(
                name.split(".shard-", 1)[0], {"entries": 0, "bytes": 0}
            )
            if name.endswith(".json"):
                entry["entries"] += 1
                fleet_entries += 1
            try:
                entry["bytes"] += path.stat().st_size
            except OSError:
                pass
        snapshot["stream_checkpoint_bytes"] = stream_bytes
        snapshot["fleet_checkpoints"] = fleet_entries
        snapshot["fleet_namespaces"] = namespaces
        snapshot.update(self.health())
        return snapshot

    def doctor(self, purge_quarantine: bool = False) -> dict:
        """Verify every on-disk entry and report store health.

        Checksums each entry's payload against its sidecar, quarantines
        anything corrupt, re-sweeps orphans and stale temp files, and
        optionally purges the quarantine.  Safe to run on a live cache.
        """
        verified = corrupt = skewed = unreadable = 0
        stream_verified = stream_quarantined = 0
        fleet_verified = fleet_quarantined = 0
        if self.disk_dir is not None and self.disk_dir.is_dir():
            try:
                self._sweep_orphans()
            except OSError as err:
                log.warning("doctor sweep failed err=%s", err)
            for sidecar in sorted(self.disk_dir.glob("*.json")):
                base = self.disk_dir / sidecar.name[: -len(".json")]
                is_stream = ".stream." in sidecar.name
                is_fleet = ".shard-" in sidecar.name
                try:
                    self._with_retries(lambda b=base: verify_entry(b))
                except (ArtifactMissing, CorruptArtifact) as err:
                    self._quarantine(base, reason=str(err))
                    corrupt += 1
                    stream_quarantined += is_stream
                    fleet_quarantined += is_fleet
                except VersionSkew:
                    self.version_skew += 1
                    skewed += 1
                except OSError as err:
                    self.read_errors += 1
                    log.warning("doctor cannot read entry=%s err=%s", base, err)
                    unreadable += 1
                else:
                    verified += 1
                    stream_verified += is_stream
                    fleet_verified += is_fleet
        quarantine = self._quarantine_files()
        quarantine_bytes = 0
        for path in quarantine:
            try:
                quarantine_bytes += path.stat().st_size
            except OSError:
                pass
        purged = self.purge_quarantine() if purge_quarantine else 0
        report = {
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
            "entries_verified": verified,
            "entries_corrupt": corrupt,
            "entries_version_skew": skewed,
            "entries_unreadable": unreadable,
            "quarantine_files": 0 if purge_quarantine else len(quarantine),
            "quarantine_bytes": 0 if purge_quarantine else quarantine_bytes,
            "quarantine_purged": purged,
            # Stream day checkpoints and fleet shard deliveries are part
            # of the sweep above; break them out so resumability damage
            # is visible at a glance.
            "stream_checkpoints_verified": stream_verified,
            "stream_checkpoints_quarantined": stream_quarantined,
            "fleet_entries_verified": fleet_verified,
            "fleet_entries_quarantined": fleet_quarantined,
        }
        report.update(self.health())
        return report


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """The process-wide store (created lazily from the environment)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore(disk_dir=resolve_cache_dir(ensure=True))
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore) -> None:
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def reset_default_store() -> None:
    """Drop the singleton so the next use re-reads the environment."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None
