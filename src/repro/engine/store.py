"""Content-addressed artifact store: in-memory LRU plus on-disk layer.

Keys are ``"<config-fingerprint>/<stage-name>"`` strings.  Every value
lives in a bounded in-memory LRU; stages that declare a :class:`Codec`
additionally persist to disk so the artifact survives across processes
(warm CLI runs, CI steps, benchmark sessions).

Disk location: ``$REPRO_CACHE_DIR`` when set (an empty value disables
the disk layer entirely), otherwise ``~/.cache/repro``.  Payloads are
``.npz`` arrays plus a ``.json`` metadata sidecar — nothing is pickled,
so a corrupt or version-skewed entry simply misses and is rebuilt.
"""

from __future__ import annotations

import datetime
import json
import os
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, Optional

import numpy as np

from repro.core.blocking import CandidatePartition
from repro.core.report import Report

__all__ = [
    "MISS",
    "Codec",
    "ReportMappingCodec",
    "PartitionCodec",
    "ArtifactStore",
    "resolve_cache_dir",
    "default_store",
    "set_default_store",
    "reset_default_store",
]

#: Sentinel returned by :meth:`ArtifactStore.get` on a miss (``None`` can
#: be a legitimate artifact value).
MISS = object()

#: Bump when the on-disk payload layout changes, or when artifact VALUES
#: change for the same fingerprint (e.g. the columnar traffic kernels
#: reordered RNG draws, so traffic-derived stages differ per seed from
#: the loop-based generator's: version 2 makes those stale entries miss).
STORE_FORMAT_VERSION = 2


def _sidecar(base: Path) -> Path:
    """Metadata path for a base name (append, never replace, a suffix —
    the base already contains dots from the cache key)."""
    return base.parent / (base.name + ".json")


def _payload(base: Path) -> Path:
    """Array-payload path for a base name."""
    return base.parent / (base.name + ".npz")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write-then-rename so concurrent readers never see a torn file."""
    with tempfile.NamedTemporaryFile(
        dir=str(path.parent), suffix=path.suffix + ".tmp", delete=False
    ) as handle:
        handle.write(data)
        tmp = handle.name
    os.replace(tmp, str(path))


class Codec:
    """Serialises one stage's value to ``<base>.npz`` + ``<base>.json``.

    Subclasses implement :meth:`to_payload` / :meth:`from_payload`
    mapping the value to ``(arrays, meta)`` where ``arrays`` is a
    ``{name: ndarray}`` dict and ``meta`` is JSON-serialisable.
    """

    name = "codec"

    def to_payload(self, value: Any):
        raise NotImplementedError

    def from_payload(self, arrays: Dict[str, np.ndarray], meta: Any) -> Any:
        raise NotImplementedError

    # -- file plumbing ----------------------------------------------------

    def dump(self, value: Any, base: Path) -> None:
        arrays, meta = self.to_payload(value)
        envelope = {
            "format": STORE_FORMAT_VERSION,
            "codec": self.name,
            "meta": meta,
        }
        _atomic_write_bytes(
            _sidecar(base),
            json.dumps(envelope, sort_keys=True).encode("utf-8"),
        )
        with tempfile.NamedTemporaryFile(
            dir=str(base.parent), suffix=".npz.tmp", delete=False
        ) as handle:
            np.savez(handle, **arrays)
            tmp = handle.name
        os.replace(tmp, str(_payload(base)))

    def load(self, base: Path) -> Any:
        envelope = json.loads(_sidecar(base).read_text())
        if envelope.get("format") != STORE_FORMAT_VERSION:
            raise ValueError("store format version mismatch")
        if envelope.get("codec") != self.name:
            raise ValueError("codec mismatch")
        with np.load(str(_payload(base))) as payload:
            arrays = {key: payload[key] for key in payload.files}
        return self.from_payload(arrays, envelope["meta"])


def _report_meta(report: Report) -> dict:
    period = None
    if report.period is not None:
        period = [report.period[0].isoformat(), report.period[1].isoformat()]
    return {
        "tag": report.tag,
        "report_type": report.report_type,
        "data_class": report.data_class,
        "period": period,
    }


def _report_from(addresses: np.ndarray, meta: dict) -> Report:
    period = None
    if meta["period"] is not None:
        period = (
            datetime.date.fromisoformat(meta["period"][0]),
            datetime.date.fromisoformat(meta["period"][1]),
        )
    return Report(
        tag=meta["tag"],
        addresses=addresses.astype(np.uint32),
        report_type=meta["report_type"],
        data_class=meta["data_class"],
        period=period,
    )


class ReportMappingCodec(Codec):
    """``{key: Report}`` dicts — e.g. the scenario's Table 1 reports."""

    name = "report-mapping"

    def to_payload(self, value: Dict[str, Report]):
        arrays = {key: report.addresses for key, report in value.items()}
        meta = {key: _report_meta(report) for key, report in value.items()}
        return arrays, meta

    def from_payload(self, arrays, meta) -> Dict[str, Report]:
        return {key: _report_from(arrays[key], meta[key]) for key in meta}


class PartitionCodec(Codec):
    """The §6 :class:`CandidatePartition` (four reports)."""

    name = "candidate-partition"
    _FIELDS = ("candidate", "hostile", "unknown", "innocent")

    def to_payload(self, value: CandidatePartition):
        reports = {name: getattr(value, name) for name in self._FIELDS}
        arrays = {name: report.addresses for name, report in reports.items()}
        meta = {name: _report_meta(report) for name, report in reports.items()}
        return arrays, meta

    def from_payload(self, arrays, meta) -> CandidatePartition:
        return CandidatePartition(
            **{name: _report_from(arrays[name], meta[name]) for name in self._FIELDS}
        )


def resolve_cache_dir() -> Optional[Path]:
    """The on-disk cache root, or ``None`` when disabled.

    ``$REPRO_CACHE_DIR`` overrides the default ``~/.cache/repro``; an
    empty ``$REPRO_CACHE_DIR`` disables the disk layer.
    """
    env = os.environ.get("REPRO_CACHE_DIR")
    if env is not None:
        return Path(env) if env.strip() else None
    return Path.home() / ".cache" / "repro"


class ArtifactStore:
    """Bounded in-memory LRU over an optional on-disk artifact layer."""

    def __init__(
        self,
        max_memory_items: int = 64,
        disk_dir: Optional[Path] = None,
        enable_disk: bool = True,
    ) -> None:
        if max_memory_items < 1:
            raise ValueError("max_memory_items must be >= 1")
        self.max_memory_items = max_memory_items
        self.disk_dir = Path(disk_dir) if (enable_disk and disk_dir) else None
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self.memory_hits = 0
        self.disk_hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0

    # -- keys -------------------------------------------------------------

    @staticmethod
    def _base_name(key: str) -> str:
        return key.replace("/", ".")

    def _disk_base(self, key: str) -> Optional[Path]:
        if self.disk_dir is None:
            return None
        return self.disk_dir / self._base_name(key)

    # -- access -----------------------------------------------------------

    def get(self, key: str, codec: Optional[Codec] = None) -> Any:
        """The cached value for ``key``, or :data:`MISS`."""
        if key in self._memory:
            self._memory.move_to_end(key)
            self.memory_hits += 1
            return self._memory[key]
        base = self._disk_base(key)
        if codec is not None and base is not None:
            try:
                value = codec.load(base)
            except (OSError, ValueError, KeyError, json.JSONDecodeError):
                pass  # absent, corrupt, or version-skewed: rebuild
            else:
                self.disk_hits += 1
                self._remember(key, value)
                return value
        self.misses += 1
        return MISS

    def put(self, key: str, value: Any, codec: Optional[Codec] = None) -> None:
        """Cache ``value``; persist to disk when a codec is given."""
        self.puts += 1
        self._remember(key, value)
        base = self._disk_base(key)
        if codec is not None and base is not None:
            try:
                base.parent.mkdir(parents=True, exist_ok=True)
                codec.dump(value, base)
            except OSError:
                pass  # a read-only cache dir degrades to memory-only

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_items:
            self._memory.popitem(last=False)
            self.evictions += 1

    # -- maintenance -------------------------------------------------------

    def _disk_files(self):
        if self.disk_dir is None or not self.disk_dir.is_dir():
            return []
        return [
            path
            for path in self.disk_dir.iterdir()
            if path.suffix in (".npz", ".json")
        ]

    def clear(self, memory: bool = True, disk: bool = True) -> int:
        """Drop cached artifacts; returns the number of disk files removed."""
        if memory:
            self._memory.clear()
        removed = 0
        if disk:
            for path in self._disk_files():
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def info(self) -> dict:
        """A snapshot of cache contents and hit counters."""
        files = self._disk_files()
        disk_bytes = 0
        for path in files:
            try:
                disk_bytes += path.stat().st_size
            except OSError:
                pass
        return {
            "memory_entries": len(self._memory),
            "max_memory_items": self.max_memory_items,
            "disk_dir": str(self.disk_dir) if self.disk_dir else None,
            "disk_files": len(files),
            "disk_bytes": disk_bytes,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


_DEFAULT_STORE: Optional[ArtifactStore] = None


def default_store() -> ArtifactStore:
    """The process-wide store (created lazily from the environment)."""
    global _DEFAULT_STORE
    if _DEFAULT_STORE is None:
        _DEFAULT_STORE = ArtifactStore(disk_dir=resolve_cache_dir())
    return _DEFAULT_STORE


def set_default_store(store: ArtifactStore) -> None:
    global _DEFAULT_STORE
    _DEFAULT_STORE = store


def reset_default_store() -> None:
    """Drop the singleton so the next use re-reads the environment."""
    global _DEFAULT_STORE
    _DEFAULT_STORE = None
