"""Experiment modules: one per table/figure in the paper's evaluation.

Each module exposes ``run(...)`` returning a typed result with
shape-checking predicates, and ``format_result(...)`` rendering the
table/series alongside the paper's reference values.
"""

from repro.experiments import (
    ablation,
    plotting,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    table1,
    table2,
    table3,
)
from repro.experiments.common import default_scenario, render_table

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "table1",
    "table2",
    "table3",
    "ablation",
    "plotting",
    "default_scenario",
    "render_table",
]
