"""Ablations of the design choices DESIGN.md calls out.

Each ablation varies one generative or analytic knob and measures the
effect on the paper's headline quantities, using fast small-scale
scenarios so a sweep stays cheap:

* **uncleanliness tail** — how heavy the per-/16 uncleanliness tail is
  drives spatial clustering.  Flattening the tail (alpha -> 1+) should
  erase the bot report's density advantage.
* **report age** — temporal uncleanliness means *networks* stay unclean
  even as individual bots churn, so a months-old report should predict
  about as well as a fresh one (the paper's five-month "extreme case").
* **estimator** — the naive IANA-uniform control inflates the apparent
  density gap; the empirical estimator is the honest baseline (Fig. 2).
* **prefix band** — the operative band of the predictor: below ~/19 the
  control wins, at very long prefixes both predictors starve (§5.2).
* **blacklist evasion** — attackers who avoid listed /24s (Ramachandran
  et al.) erode fine-grained prediction, but the unclean /16s keep
  leaking information.
* **clustering** — homogeneous blocks vs the network-aware clustering
  the paper rejects in §4.1: the verdict survives, the equal-population
  reading does not.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.density import density_test
from repro.core.prediction import prediction_test
from repro.core.sampling import naive_sample
from repro.core.scenario import PaperScenario, ScenarioConfig
from repro.core import cidr as rcidr
from repro.ipspace import cidr as icidr
from repro.experiments.common import render_table

__all__ = [
    "uncleanliness_tail_ablation",
    "report_age_ablation",
    "estimator_ablation",
    "prefix_band_ablation",
    "evasion_ablation",
    "clustering_ablation",
    "field_stability_ablation",
    "format_rows",
]

_SUBSETS = 100


def _small_config(seed: int) -> ScenarioConfig:
    return ScenarioConfig.small(seed=seed)


def uncleanliness_tail_ablation(
    alphas: Sequence[float] = (0.15, 0.28, 0.6, 1.2),
    seed: int = 11,
) -> List[dict]:
    """Sweep the Beta alpha of per-/16 uncleanliness.

    Small alpha = heavy unclean tail = strong clustering.  Reports the
    bot report's density ratio at /24 (control median blocks / observed
    blocks) and whether Eq. 3 holds.
    """
    rows = []
    for alpha in alphas:
        config = _small_config(seed)
        config = replace(
            config, internet=replace(config.internet, uncleanliness_alpha=alpha)
        )
        scenario = PaperScenario._create(config)
        rng = np.random.default_rng(seed)
        result = density_test(
            scenario.bot, scenario.control, rng, subsets=_SUBSETS
        )
        rows.append(
            {
                "uncleanliness_alpha": alpha,
                "bot_blocks@/24": result.observed[24],
                "control_median@/24": result.control[24].median,
                "density_ratio@/24": round(result.density_ratio(24), 2),
                "spatial_holds": result.hypothesis_holds(),
            }
        )
    return rows


def report_age_ablation(
    gaps_days: Sequence[int] = (150, 90, 30, 7),
    seed: int = 13,
) -> List[dict]:
    """Sweep the age of the past bot report.

    The paper deliberately tests the "extreme case" of a five-month-old
    report (§3.2): if that works, fresher reports should too.  This
    ablation draws the test botnet's channel membership at several gaps
    before the October window and measures the predictive band against
    October bots.  Temporal uncleanliness — networks staying unclean —
    should make prediction robust across all ages (individual bots churn;
    the networks do not).
    """
    from repro.sim.timeline import PAPER_WINDOWS, Window

    config = _small_config(seed)
    scenario = PaperScenario._create(config)
    rng = np.random.default_rng(seed)
    rows = []
    for gap in gaps_days:
        day = PAPER_WINDOWS.OCTOBER.start_day - gap
        members = scenario.botnet.channel_members(
            config.bot_test_channel, Window(day, day)
        )
        if members.size > config.bot_test_size:
            members = rng.choice(members, size=config.bot_test_size, replace=False)
        if members.size == 0:
            rows.append(
                {"report_age_days": gap, "report_size": 0,
                 "predictive_prefixes": 0, "range": "-"}
            )
            continue
        from repro.core.report import Report

        past = Report(tag=f"bot-test-{gap}d", addresses=members)
        result = prediction_test(
            past, scenario.bot, scenario.control, rng, subsets=_SUBSETS
        )
        winners = result.predictive_prefixes()
        rows.append(
            {
                "report_age_days": gap,
                "report_size": len(past),
                "predictive_prefixes": len(winners),
                "range": result.predictive_range() or "-",
            }
        )
    return rows


def estimator_ablation(
    scenario: Optional[PaperScenario] = None,
    seed: int = 17,
    prefixes: Sequence[int] = (16, 20, 24, 28),
) -> List[dict]:
    """Naive vs empirical control estimates at selected prefixes.

    The apparent density advantage of the bot report is inflated several
    fold when measured against the naive estimate — the reason the paper
    (Fig. 2) adopts the empirical estimate.
    """
    scenario = scenario or PaperScenario._create(_small_config(seed))
    rng = np.random.default_rng(seed)
    size = len(scenario.bot)
    empirical = scenario.control.sample(size, rng)
    naive = naive_sample(size, rng)
    rows = []
    for n in prefixes:
        observed = icidr.block_count(scenario.bot, n)
        emp = icidr.block_count(empirical, n)
        nai = icidr.block_count(naive, n)
        rows.append(
            {
                "prefix": n,
                "bot_blocks": observed,
                "empirical_blocks": emp,
                "naive_blocks": nai,
                "gap_vs_empirical": round(emp / max(observed, 1), 2),
                "gap_vs_naive": round(nai / max(observed, 1), 2),
            }
        )
    return rows


def prefix_band_ablation(
    scenario: Optional[PaperScenario] = None,
    seed: int = 19,
    subsets: int = _SUBSETS,
) -> List[dict]:
    """Exceedance per prefix for bot-test vs October bots.

    Shows the three regimes of §5.2: control competitive at short
    prefixes, the unclean report dominant in the mid band, and both
    predictors starving (intersections -> 0) at the long end.
    """
    scenario = scenario or PaperScenario._create(_small_config(seed))
    rng = np.random.default_rng(seed)
    result = prediction_test(
        scenario.bot_test, scenario.bot, scenario.control, rng, subsets=subsets
    )
    return [
        {
            "prefix": n,
            "observed_intersection": result.observed[n],
            "control_median": result.control[n].median,
            "exceedance": round(result.exceedance[n], 3),
            "better_predictor": result.better_predictor(n),
        }
        for n in result.prefixes
    ]


def evasion_ablation(
    strengths: Sequence[float] = (0.0, 0.5, 0.9, 1.0),
    seed: int = 29,
) -> List[dict]:
    """Blacklist-aware attackers (Ramachandran et al., §2 of the paper).

    The paper notes that botnet owners "place a higher premium on
    addresses not present on blacklists" and that uncleanliness-based
    prediction "may impact the costs noted by Ramachandran".  This
    ablation closes the loop: attackers of varying evasion strength avoid
    compromising the /24s of the published bot-test report, and we
    measure how much of the report's predictive power survives.

    Even at full evasion some power remains at coarse prefixes: evading
    a /24 list does not move the attacker out of the unclean /16 it sits
    in — the paper's argument for uncleanliness as a *network* property.
    """
    from repro.core.report import Report
    from repro.sim.botnet import BotnetSimulation
    from repro.sim.timeline import PAPER_WINDOWS

    config = _small_config(seed)
    baseline = PaperScenario._create(config)
    avoided = rcidr.cidr_set(baseline.bot_test, 24)

    rows = []
    for strength in strengths:
        botnet_config = replace(config.botnet, evasion_strength=strength)
        evading = BotnetSimulation(
            baseline.internet,
            botnet_config,
            np.random.default_rng(seed + 1),
            avoided_blocks=avoided,
        )
        future = Report(
            tag=f"bots-evasion-{strength}",
            addresses=evading.active_addresses(PAPER_WINDOWS.OCTOBER),
        )
        rng = np.random.default_rng(seed + 2)
        result = prediction_test(
            baseline.bot_test, future, baseline.control, rng, subsets=_SUBSETS
        )
        rows.append(
            {
                "evasion_strength": strength,
                "intersection@/24": result.observed[24],
                "exceedance@/24": round(result.exceedance[24], 3),
                "intersection@/16": result.observed[16],
                "exceedance@/16": round(result.exceedance[16], 3),
                "predictive_prefixes": len(result.predictive_prefixes()),
            }
        )
    return rows


def clustering_ablation(
    deaggregation_probabilities: Sequence[float] = (0.0, 0.3, 0.7),
    seed: int = 31,
    subsets: int = 50,
) -> List[dict]:
    """Homogeneous blocks vs network-aware clustering (§4.1's rejection).

    The paper models networks as equal-sized CIDR blocks and rejects
    heterogeneous network-aware clustering because cluster populations
    "differ in size by several orders of magnitude".  This ablation
    measures both sides: for each partitioning, the size dispersion of
    the partitions and the clustering verdict (do bots touch fewer
    partitions than equal-cardinality control subsets?).

    The verdict survives either way — bots cluster under any reasonable
    partitioning — but the heterogeneous partitions' size spread makes
    the equal-population ceteris paribus reading of the counts impossible,
    which is exactly the paper's reason for homogeneous blocks.
    """
    from repro.ipspace.clusters import synthesize_table

    scenario = PaperScenario._create(_small_config(seed))
    rng = np.random.default_rng(seed)
    size = len(scenario.bot)

    rows = []
    # Homogeneous /24 baseline (the paper's choice).
    control_counts = [
        icidr.block_count(subset, 24)
        for subset in _control_subsets(scenario, size, subsets, rng)
    ]
    rows.append(
        {
            "partitioning": "/24 blocks",
            "partitions": "-",
            "size_spread": "1x",
            "bot_partitions": icidr.block_count(scenario.bot, 24),
            "control_median": float(np.median(control_counts)),
            "bots_cluster": icidr.block_count(scenario.bot, 24)
            <= float(np.median(control_counts)),
        }
    )
    for p in deaggregation_probabilities:
        table = synthesize_table(
            scenario.internet, np.random.default_rng(seed + 1), p
        )
        sizes = table.cluster_sizes()
        bot_clusters = table.cluster_count(scenario.bot.addresses)
        control_cluster_counts = [
            table.cluster_count(subset.addresses)
            for subset in _control_subsets(scenario, size, subsets, rng)
        ]
        median = float(np.median(control_cluster_counts))
        rows.append(
            {
                "partitioning": f"clusters(p={p})",
                "partitions": len(table),
                "size_spread": f"{sizes.max() // sizes.min()}x",
                "bot_partitions": bot_clusters,
                "control_median": median,
                "bots_cluster": bot_clusters <= median,
            }
        )
    return rows


def field_stability_ablation(
    stabilities=(1.0, 0.9, 0.5, 0.0),
    seed: int = 37,
) -> List[dict]:
    """Sweep the stability of the uncleanliness field itself.

    This probes the paper's core temporal mechanism directly.  The paper
    assumes — and finds — that a network's propensity to harbour bots is
    stable over months.  Here the per-/24 uncleanliness becomes an AR(1)
    process (:mod:`repro.sim.dynamics`); with ``stability=1`` the field
    is frozen (the paper's world), with ``stability=0`` hygiene
    reshuffles monthly.

    The expected — and observed — readings: *spatial* uncleanliness
    (instantaneous clustering) survives at every stability, while
    *temporal* prediction from a five-month-old report degrades as the
    field destabilises.
    """
    from repro.core.report import Report
    from repro.sim.botnet import BotnetSimulation
    from repro.sim.dynamics import DynamicsConfig, UncleanlinessProcess
    from repro.sim.internet import SyntheticInternet
    from repro.sim.timeline import PAPER_WINDOWS

    config = _small_config(seed)
    internet = SyntheticInternet(config.internet, np.random.default_rng(seed))
    control = Report(
        tag="control",
        addresses=internet.sample_unique_hosts(
            config.control_size, np.random.default_rng(seed + 1)
        ),
    )

    rows = []
    for stability in stabilities:
        process = UncleanlinessProcess(
            internet,
            DynamicsConfig(
                stability=stability,
                horizon_days=config.botnet.horizon_days,
            ),
            np.random.default_rng(seed + 2),
        )
        botnet = BotnetSimulation(
            internet, config.botnet, np.random.default_rng(seed + 3),
            dynamics=process,
        )
        past_members = botnet.channel_members(
            config.bot_test_channel, PAPER_WINDOWS.BOT_TEST
        )
        rng = np.random.default_rng(seed + 4)
        if past_members.size > config.bot_test_size:
            past_members = rng.choice(
                past_members, size=config.bot_test_size, replace=False
            )
        october = Report(
            tag="bots-october",
            addresses=botnet.active_addresses(PAPER_WINDOWS.OCTOBER),
        )
        if past_members.size == 0 or len(october) == 0:
            rows.append(
                {"stability": stability, "field_correlation": "-",
                 "spatial_holds": "-", "predictive_prefixes": 0}
            )
            continue
        past = Report(tag="bot-test", addresses=past_members)

        spatial = density_test(october, control, rng, subsets=_SUBSETS)
        temporal = prediction_test(past, october, control, rng, subsets=_SUBSETS)
        rows.append(
            {
                "stability": stability,
                "field_correlation": round(
                    process.field_correlation(
                        PAPER_WINDOWS.BOT_TEST.start_day,
                        PAPER_WINDOWS.OCTOBER.start_day,
                    ),
                    3,
                ),
                "spatial_holds": spatial.hypothesis_holds(),
                "predictive_prefixes": len(temporal.predictive_prefixes()),
            }
        )
    return rows


def _control_subsets(scenario, size, count, rng):
    from repro.core.sampling import empirical_subsets

    return empirical_subsets(scenario.control, size, count, rng)


def format_rows(title: str, rows: List[dict]) -> str:
    return f"{title}\n\n{render_table(rows)}"
