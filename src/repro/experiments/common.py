"""Shared helpers for the experiment modules: table rendering, plus the
deprecated scenario-cache shims.

The scenario cache moved to :mod:`repro.api` (one scenario per config
fingerprint, shared with :func:`repro.api.run_scenario`);
:func:`default_scenario` and :func:`clear_scenario_cache` remain as
thin delegating shims so old imports keep working, with a one-time
``DeprecationWarning`` each.  :func:`render_table` is not deprecated.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from repro.core.scenario import PaperScenario, ScenarioConfig

__all__ = ["render_table", "default_scenario", "clear_scenario_cache"]

_WARNED = set()


def _warn_moved(name: str) -> None:
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"repro.experiments.common.{name} is deprecated; use repro.api "
        f"(run_scenario / clear_scenario_cache) — the cache behind both "
        f"is the same",
        DeprecationWarning,
        stacklevel=3,
    )


def default_scenario(config: Optional[ScenarioConfig] = None) -> PaperScenario:
    """Deprecated: the shared scenario for a config (see :mod:`repro.api`).

    Delegates to the facade's fingerprint-keyed cache, so mixing old and
    new call sites still yields one scenario per configuration.
    """
    from repro import api

    _warn_moved("default_scenario")
    return api._scenario_for(config)


def clear_scenario_cache() -> None:
    """Deprecated: drop the shared scenarios (see :mod:`repro.api`)."""
    from repro import api

    _warn_moved("clear_scenario_cache")
    api.clear_scenario_cache()


def render_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table.

    >>> print(render_table([{"a": 1, "b": "x"}]))
    a  b
    1  x
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = ["  ".join(str(col).ljust(w) for col, w in zip(columns, widths)).rstrip()]
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
