"""Shared helpers for the experiment modules: table rendering and the
default scenario cache.

Every experiment accepts an explicit :class:`~repro.core.scenario.PaperScenario`,
and the heavy artifacts behind one live in the engine's
fingerprint-keyed store (:mod:`repro.engine`), so
:func:`default_scenario` only has to hand out one facade per distinct
configuration.  Unlike the old seed-keyed module cache, two configs
sharing a seed but differing in any field get independent entries — no
eviction, no thrash, no collision.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.core.scenario import PaperScenario, ScenarioConfig

__all__ = ["render_table", "default_scenario", "clear_scenario_cache"]

#: One facade per config fingerprint; stage artifacts live in the store.
_SCENARIOS: Dict[str, PaperScenario] = {}


def default_scenario(config: Optional[ScenarioConfig] = None) -> PaperScenario:
    """The shared scenario for a config, keyed by its full fingerprint."""
    config = config or ScenarioConfig()
    key = config.fingerprint()
    scenario = _SCENARIOS.get(key)
    if scenario is None:
        scenario = PaperScenario(config)
        _SCENARIOS[key] = scenario
    return scenario


def clear_scenario_cache() -> None:
    """Drop the shared facades (used by tests).

    Stage artifacts in the engine store are untouched; reset or clear
    the store itself (:func:`repro.engine.reset_default_store`) to force
    real rebuilds.
    """
    _SCENARIOS.clear()


def render_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table.

    >>> print(render_table([{"a": 1, "b": "x"}]))
    a  b
    1  x
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = ["  ".join(str(col).ljust(w) for col, w in zip(columns, widths)).rstrip()]
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
