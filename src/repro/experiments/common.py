"""Shared helpers for the experiment modules: table rendering and the
default scenario cache.

Every experiment accepts an explicit :class:`~repro.core.scenario.PaperScenario`,
but building one takes tens of seconds, so callers running several
experiments (the benchmark suite, the CLI) share one via
:func:`default_scenario`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.core.scenario import PaperScenario, ScenarioConfig

__all__ = ["render_table", "default_scenario", "clear_scenario_cache"]

_SCENARIO_CACHE: Dict[int, PaperScenario] = {}


def default_scenario(config: Optional[ScenarioConfig] = None) -> PaperScenario:
    """Build (or reuse) the scenario for a config, keyed by its seed."""
    config = config or ScenarioConfig()
    cached = _SCENARIO_CACHE.get(config.seed)
    if cached is not None and cached.config == config:
        return cached
    scenario = PaperScenario(config)
    _SCENARIO_CACHE[config.seed] = scenario
    return scenario


def clear_scenario_cache() -> None:
    """Drop cached scenarios (used by tests)."""
    _SCENARIO_CACHE.clear()


def render_table(rows: Sequence[dict], columns: Optional[Sequence[str]] = None) -> str:
    """Render dict rows as an aligned text table.

    >>> print(render_table([{"a": 1, "b": "x"}]))
    a  b
    1  x
    """
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in cells))
        for i, col in enumerate(columns)
    ]
    lines = ["  ".join(str(col).ljust(w) for col, w in zip(columns, widths)).rstrip()]
    for row in cells:
        lines.append("  ".join(value.ljust(w) for value, w in zip(row, widths)).rstrip())
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
