"""Figure 1: the relationship between scanning and botnet population.

The paper's motivating figure: weekly counts of unique hosts scanning the
observed network from January to April 2006, overlaid with how many
addresses of a botnet reported in the first week of March were (a)
themselves scanning, and (b) sharing a /24 with a scanner.  Three features
matter:

* the botnet's addresses scan the observed network for weeks *before* the
  report exists (at the peak, ~35% of reported addresses are scanning);
* the /24 overlay identifies more scanners than the addresses alone
  (the paper's first hint of spatial uncleanliness); and
* scanning from the botnet drops noticeably after the report circulates
  (owners remediate published addresses).

This experiment runs its own smaller simulation (18 weekly traffic
windows are generated and scanned, which would be slow at the default
October scale) with a cleanup intervention applied at the report date.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.core import cidr as rcidr
from repro.core.report import DataClass, Report, ReportType
from repro.detect.scan import ScanDetector, ScanDetectorConfig
from repro.experiments.common import render_table
from repro.flows.generator import TrafficConfig, TrafficGenerator
from repro.ipspace import cidr as lowcidr
from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.timeline import PAPER_WINDOWS, Window

__all__ = ["Figure1Config", "Figure1Result", "run", "format_result"]


@dataclass(frozen=True)
class Figure1Config:
    """A self-contained, smaller-scale setup for the 18-week sweep."""

    seed: int = 2006_03_01
    internet: InternetConfig = field(
        default_factory=lambda: InternetConfig(num_slash16=250)
    )
    botnet: BotnetConfig = field(
        default_factory=lambda: BotnetConfig(
            daily_compromises=120.0, num_channels=6
        )
    )
    traffic: TrafficConfig = field(
        default_factory=lambda: TrafficConfig(
            benign_clients_per_day=300,
            scan_participation=0.5,  # the reported botnet is scan-heavy
            suspicious_hosts=800,
        )
    )

    #: The C&C channel whose membership is published as the bot report.
    report_channel: int = 0

    #: Mean days to remediation once an address is published.
    mean_cleanup_days: float = 9.0


@dataclass(frozen=True)
class Figure1Result:
    """Weekly series behind the two plots of Figure 1."""

    weeks: tuple  # Window per week
    unique_scanners: tuple  # scanners seen per week
    bot_address_overlap: tuple  # |scanners ∩ bot report| per week
    bot_block_overlap: tuple  # bot addrs sharing a /24 with a scanner
    report_size: int
    report_week: int  # index into weeks where the report lands

    def peak_overlap_fraction(self) -> float:
        """Max weekly fraction of the bot report seen scanning."""
        if not self.report_size:
            return 0.0
        return max(self.bot_address_overlap) / self.report_size

    def pre_report_mean_overlap(self) -> float:
        values = self.bot_address_overlap[: self.report_week + 1]
        return float(np.mean(values)) if values else 0.0

    def post_report_mean_overlap(self, settle_weeks: int = 2) -> float:
        """Mean overlap once cleanup has had ``settle_weeks`` to act."""
        values = self.bot_address_overlap[self.report_week + settle_weeks :]
        return float(np.mean(values)) if values else 0.0

    def activity_drops_after_report(self) -> bool:
        """The paper's 'activity drops noticeably after the report'."""
        return self.post_report_mean_overlap() < 0.5 * self.pre_report_mean_overlap()

    def block_overlay_dominates(self) -> bool:
        """The /24 line sits at or above the address line every week."""
        return all(
            block >= addr
            for block, addr in zip(self.bot_block_overlap, self.bot_address_overlap)
        )

    def rows(self) -> List[dict]:
        out = []
        for i, week in enumerate(self.weeks):
            out.append(
                {
                    "week": str(week.dates()[0]),
                    "unique_scanners": self.unique_scanners[i],
                    "bot_addrs_scanning": self.bot_address_overlap[i],
                    "bot_addrs_in_scanning_/24": self.bot_block_overlap[i],
                    "report": "<-- report" if i == self.report_week else "",
                }
            )
        return out


def _weekly_windows(span: Window) -> List[Window]:
    windows = []
    start = span.start_day
    while start <= span.end_day:
        end = min(start + 6, span.end_day)
        windows.append(Window(start, end))
        start = end + 1
    return windows


def run(config: Figure1Config = Figure1Config()) -> Figure1Result:
    """Regenerate the Figure 1 series."""
    seeds = np.random.SeedSequence(config.seed).spawn(4)
    rngs = [np.random.default_rng(s) for s in seeds]

    internet = SyntheticInternet(config.internet, rngs[0])
    botnet = BotnetSimulation(internet, config.botnet, rngs[1])

    report_window = PAPER_WINDOWS.FIGURE1_BOT
    bot_addresses = botnet.channel_members(config.report_channel, report_window)
    bot_report = Report(
        tag="figure1-bot",
        addresses=bot_addresses,
        report_type=ReportType.PROVIDED,
        data_class=DataClass.BOTS,
        period=report_window.dates(),
    )

    # Publication triggers remediation of the reported botnet.
    botnet = botnet.with_cleanup(
        config.report_channel,
        report_window.end_day,
        config.mean_cleanup_days,
        rngs[2],
    )

    generator = TrafficGenerator(internet, botnet, config.traffic)
    detector = ScanDetector(ScanDetectorConfig())
    traffic_rng = rngs[3]

    weeks = _weekly_windows(PAPER_WINDOWS.FIGURE1)
    unique_scanners, addr_overlap, block_overlap = [], [], []
    report_week = next(
        i for i, w in enumerate(weeks) if w.overlaps(report_window)
    )
    for week in weeks:
        traffic = generator.generate(week, traffic_rng)
        scanners = detector.detect(traffic.flows)
        unique_scanners.append(int(scanners.size))
        addr_overlap.append(int(np.intersect1d(scanners, bot_report.addresses).size))
        scanner_blocks = lowcidr.unique_blocks(scanners, 24)
        in_blocks = lowcidr.contains(bot_report.addresses, scanner_blocks, 24)
        block_overlap.append(int(in_blocks.sum()))

    return Figure1Result(
        weeks=tuple(weeks),
        unique_scanners=tuple(unique_scanners),
        bot_address_overlap=tuple(addr_overlap),
        bot_block_overlap=tuple(block_overlap),
        report_size=len(bot_report),
        report_week=report_week,
    )


def format_result(result: Figure1Result) -> str:
    """Text rendering of Figure 1 plus the paper's three claims."""
    from repro.experiments.plotting import series_panel

    panel = series_panel(
        {
            "unique scanners": result.unique_scanners,
            "bot addrs scanning": result.bot_address_overlap,
            "bot addrs in /24s": result.bot_block_overlap,
        }
    )
    lines = [
        "Figure 1: scanning vs. botnet population (weekly)",
        f"bot report size: {result.report_size} addresses "
        f"(week of {result.weeks[result.report_week].dates()[0]})",
        "",
        panel,
        "",
        render_table(result.rows()),
        "",
        f"peak overlap fraction: {result.peak_overlap_fraction():.2f} "
        "(paper: ~0.35 at peak)",
        f"/24 overlay >= address overlay every week: {result.block_overlay_dominates()}",
        f"activity drops after report: {result.activity_drops_after_report()} "
        f"(pre mean {result.pre_report_mean_overlap():.1f} -> "
        f"post mean {result.post_report_mean_overlap():.1f})",
    ]
    return "\n".join(lines)
