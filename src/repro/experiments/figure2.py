"""Figure 2: naive vs. empirical density estimation against real bots.

Compares :math:`|C_n(R_{bot})|` for n in [16, 32] against two control
models of equal cardinality: the *naive* estimate (uniform over
IANA-populated /8s) and the *empirical* estimate (random subsets of the
control report).  The paper's point — and this experiment's checkable
claims — are that the naive estimate hugely over-disperses (its block
counts double with each added prefix bit, far above the others) while the
empirical estimate tracks the true structure, and the bot report is
denser than both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.density import DensityResult
from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table

__all__ = ["Figure2Result", "run", "format_result"]


@dataclass(frozen=True)
class Figure2Result:
    """The three density curves of Figure 2."""

    density: DensityResult  # observed + empirical + naive curves

    def naive_overdisperses(self) -> bool:
        """Naive estimate far above the empirical one where it matters.

        At very long prefixes both estimates saturate at the report
        cardinality, so the comparison is: never below the empirical
        median anywhere, and substantially above it at the short-prefix
        end (Figure 2's visual gap).
        """
        assert self.density.naive is not None
        never_below = all(
            self.density.naive[n].median >= self.density.control[n].median
            for n in self.density.prefixes
        )
        clearly_above = (
            self.density.naive[16].median > 1.5 * self.density.control[16].median
        )
        return never_below and clearly_above

    def naive_doubles_per_bit(self) -> bool:
        """Naive block counts ~double per added bit while blocks are scarce.

        The paper: "If addresses were evenly distributed, as is the case
        with the naive estimate, then we would expect the number of
        blocks observed to double with each unit increase in prefix
        length."  Doubling is a property of the *saturated* regime, where
        the sample is much larger than the number of available blocks and
        essentially all of them are hit; once block counts approach the
        sample size the curve flattens instead.  Only prefixes still in
        the saturated regime are checked (vacuously true if the sample is
        too small to saturate any prefix).
        """
        assert self.density.naive is not None
        sample_size = self.density.observed[32]
        for n in self.density.prefixes:
            if n + 1 not in self.density.naive:
                continue
            if self.density.naive[n + 1].median > 0.25 * sample_size:
                continue  # leaving the saturated regime
            ratio = self.density.naive[n + 1].median / self.density.naive[n].median
            if not 1.7 <= ratio <= 2.1:
                return False
        return True

    def bot_densest(self) -> bool:
        """The bot curve sits at or below both estimates everywhere."""
        assert self.density.naive is not None
        return self.density.hypothesis_holds() and all(
            self.density.observed[n] <= self.density.naive[n].median
            for n in self.density.prefixes
        )

    def rows(self) -> List[dict]:
        assert self.density.naive is not None
        return [
            {
                "prefix": n,
                "bot_blocks": self.density.observed[n],
                "empirical_median": self.density.control[n].median,
                "naive_median": self.density.naive[n].median,
            }
            for n in self.density.prefixes
        ]


def run(
    scenario: PaperScenario,
    rng: Optional[np.random.Generator] = None,
    subsets: int = 200,
    naive_subsets: int = 20,
    workers: Optional[int] = None,
) -> Figure2Result:
    """Regenerate Figure 2 from a built scenario."""
    # Routed through the facade's predictor-generic evaluate() entry;
    # with an explicit rng the numbers are bit-identical to calling
    # repro.core.density.density_test directly.
    from repro.api import evaluate

    rng = rng if rng is not None else np.random.default_rng(scenario.config.seed)
    density = evaluate(
        scenario,
        metric="density",
        train=scenario.bot,
        control=scenario.control,
        rng=rng,
        subsets=subsets,
        include_naive=True,
        naive_subsets=naive_subsets,
        workers=workers,
    )
    return Figure2Result(density=density)


def format_result(result: Figure2Result) -> str:
    lines = [
        "Figure 2: density estimation techniques vs. actual botnet density",
        "",
        render_table(result.rows()),
        "",
        f"naive estimate over-disperses: {result.naive_overdisperses()}",
        f"naive doubles per added bit (sparse regime): {result.naive_doubles_per_bit()}",
        f"bot report densest everywhere: {result.bot_densest()}",
    ]
    return "\n".join(lines)
