"""Figure 3: comparative density of the four unclean classes.

One spatial uncleanliness test (Eq. 3) per unclean report — bot, phish,
spam, scan — against 1000 equal-cardinality random control subsets.  The
paper's claim, checked per class: the unclean report populates no more
*n*-bit blocks than any control subset, at every prefix length in
[16, 32].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.density import DensityResult
from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table

__all__ = ["REPORT_TAGS", "Figure3Result", "run", "format_result"]

#: The four panels of Figure 3, in paper order.
REPORT_TAGS = ("bot", "phish", "spam", "scan")


@dataclass(frozen=True)
class Figure3Result:
    """One density test per unclean class."""

    panels: Dict[str, DensityResult]

    def all_hold(self) -> bool:
        """Spatial uncleanliness holds for every class."""
        return all(result.hypothesis_holds() for result in self.panels.values())

    def rows(self) -> List[dict]:
        out = []
        for tag, result in self.panels.items():
            for n in result.prefixes:
                out.append(
                    {
                        "report": tag,
                        "prefix": n,
                        "observed_blocks": result.observed[n],
                        "control_median": result.control[n].median,
                        "density_ratio": round(result.density_ratio(n), 2),
                        "denser": result.denser_than_control(n),
                    }
                )
        return out

    def summary_rows(self) -> List[dict]:
        return [
            {
                "report": tag,
                "holds": result.hypothesis_holds(),
                "ratio@/20": round(result.density_ratio(20), 2),
                "ratio@/24": round(result.density_ratio(24), 2),
            }
            for tag, result in self.panels.items()
        ]


def run(
    scenario: PaperScenario,
    rng: Optional[np.random.Generator] = None,
    subsets: int = 200,
    workers: Optional[int] = None,
) -> Figure3Result:
    """Regenerate the four panels of Figure 3."""
    from repro.api import evaluate

    rng = rng if rng is not None else np.random.default_rng(scenario.config.seed)
    panels = {
        tag: evaluate(
            scenario,
            metric="density",
            train=scenario.report(tag),
            control=scenario.control,
            rng=rng,
            subsets=subsets,
            workers=workers,
        )
        for tag in REPORT_TAGS
    }
    return Figure3Result(panels=panels)


def format_result(result: Figure3Result) -> str:
    lines = [
        "Figure 3: comparative density of unclean blocks vs. control",
        "",
        render_table(result.summary_rows()),
        "",
        f"spatial uncleanliness holds for all classes: {result.all_hold()}",
    ]
    return "\n".join(lines)
