"""Figure 4: predictive capacity of the five-month-old bot report.

One temporal uncleanliness test (Eq. 5) per present-day unclean report,
with :math:`R_{bot-test}` (May 10th, 186 addresses) as the past report.
The paper's claims, checked per panel:

* bot-test is a better predictor than control — at the 95% level — for
  future **bots**, **spamming** and **scanning** over a band of mid-length
  prefixes (paper: 20-25, 19-32 and 20-24 bits respectively);
* bot-test is **not** a better predictor of future **phishing** (panel
  ii), the result that makes uncleanliness multidimensional;
* at short prefixes the random control becomes competitive (the spatial
  clustering of the unclean report costs it coarse-block coverage).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.prediction import PredictionResult
from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table
from repro.experiments.paper_values import FIGURE4_PREDICTIVE_RANGES

__all__ = ["TARGET_TAGS", "Figure4Result", "run", "format_result"]

#: The four panels: (i) bots, (ii) phishing, (iii) spam, (iv) scanning.
TARGET_TAGS = ("bot", "phish-present", "spam", "scan")


@dataclass(frozen=True)
class Figure4Result:
    """One prediction test per panel."""

    panels: Dict[str, PredictionResult]

    def bot_spam_scan_predicted(self) -> bool:
        """Temporal uncleanliness holds for the botnet-linked classes."""
        return all(
            self.panels[tag].hypothesis_holds() for tag in ("bot", "spam", "scan")
        )

    def phishing_not_predicted(self, tolerance: int = 1) -> bool:
        """Bot-test fails to predict phishing.

        ``tolerance`` allows a stray single-prefix exceedance (Monte-Carlo
        noise at small cardinalities) without counting as prediction.
        """
        return len(self.panels["phish-present"].predictive_prefixes()) <= tolerance

    def summary_rows(self) -> List[dict]:
        rows = []
        for tag, result in self.panels.items():
            rows.append(
                {
                    "target": tag,
                    "predictive_range": result.predictive_range() or "-",
                    "paper_range": FIGURE4_PREDICTIVE_RANGES[tag] or "-",
                    "holds": result.hypothesis_holds(),
                }
            )
        return rows

    def rows(self) -> List[dict]:
        out = []
        for tag, result in self.panels.items():
            for row in result.rows():
                row = dict(row)
                row["target"] = tag
                out.append(row)
        return out


def run(
    scenario: PaperScenario,
    rng: Optional[np.random.Generator] = None,
    subsets: int = 200,
    workers: Optional[int] = None,
) -> Figure4Result:
    """Regenerate the four panels of Figure 4."""
    # Each panel is the uncleanliness predictor (fit on bot-test) run
    # through the facade's evaluate() entry; with a shared explicit rng
    # the panel numbers are bit-identical to the legacy per-report
    # prediction_test calls.
    from repro.api import evaluate

    rng = rng if rng is not None else np.random.default_rng(scenario.config.seed)
    panels = {
        tag: evaluate(
            scenario,
            metric="prediction",
            train=scenario.bot_test,
            present=scenario.report(tag),
            control=scenario.control,
            rng=rng,
            subsets=subsets,
            workers=workers,
        )
        for tag in TARGET_TAGS
    }
    return Figure4Result(panels=panels)


def format_result(result: Figure4Result) -> str:
    lines = [
        "Figure 4: predictive capacity of R_bot-test vs. control",
        "",
        render_table(result.summary_rows()),
        "",
        f"bots/spam/scan predicted: {result.bot_spam_scan_predicted()}",
        f"phishing NOT predicted: {result.phishing_not_predicted()}",
    ]
    return "\n".join(lines)
