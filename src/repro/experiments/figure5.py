"""Figure 5: phishing predicts phishing.

The counterpart to Figure 4(ii): with :math:`R_{phish-test}` (the May
listings) as the past report, the same prediction test against the
October phishing sub-report succeeds — temporal uncleanliness holds for
phishing too, just along its own dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.prediction import PredictionResult
from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table

__all__ = ["Figure5Result", "run", "format_result"]


@dataclass(frozen=True)
class Figure5Result:
    """The phishing-on-phishing prediction test."""

    prediction: PredictionResult

    def phishing_self_predicts(self) -> bool:
        return self.prediction.hypothesis_holds()

    def rows(self):
        return self.prediction.rows()


def run(
    scenario: PaperScenario,
    rng: Optional[np.random.Generator] = None,
    subsets: int = 200,
    workers: Optional[int] = None,
) -> Figure5Result:
    """Regenerate Figure 5."""
    from repro.api import evaluate

    rng = rng if rng is not None else np.random.default_rng(scenario.config.seed)
    prediction = evaluate(
        scenario,
        metric="prediction",
        train=scenario.phish_test,
        present=scenario.phish_present,
        control=scenario.control,
        rng=rng,
        subsets=subsets,
        workers=workers,
    )
    return Figure5Result(prediction=prediction)


def format_result(result: Figure5Result) -> str:
    lines = [
        "Figure 5: predictive capacity of past phishing reports",
        "",
        render_table(result.rows()),
        "",
        f"phishing self-predicts: {result.phishing_self_predicts()} "
        f"(range {result.prediction.predictive_range()})",
    ]
    return "\n".join(lines)
