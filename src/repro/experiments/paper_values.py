"""Reference values quoted in the paper, for side-by-side comparison.

Only *shape* is expected to transfer to the reproduction (the substrate is
a simulator, not the authors' testbed); these constants let every
experiment print the paper's numbers next to the measured ones.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_SIZES",
    "TABLE2_SIZES",
    "TABLE3_ROWS",
    "FIGURE4_PREDICTIVE_RANGES",
    "FIGURE1_PEAK_OVERLAP",
    "TP_RATE_AT_24",
    "TP_RATE_AT_24_UNKNOWN_HOSTILE",
    "BLOCKED_SPACE_UTILISATION",
]

#: Table 1 report cardinalities.
TABLE1_SIZES = {
    "bot": 621_861,
    "phish": 53_789,
    "scan": 151_908,
    "spam": 397_306,
    "bot-test": 186,
    "control": 46_899_928,
}

#: Table 2 report cardinalities.
TABLE2_SIZES = {
    "unclean": 1_158_103,
    "candidate": 1030,
    "hostile": 287,
    "unknown": 708,
    "innocent": 35,
}

#: Table 3: (n, TP, FP, pop, unknown).
TABLE3_ROWS = (
    (24, 287, 35, 322, 708),
    (25, 172, 22, 194, 344),
    (26, 81, 1, 82, 200),
    (27, 38, 1, 39, 105),
    (28, 18, 0, 18, 60),
    (29, 7, 0, 7, 29),
    (30, 1, 0, 1, 14),
    (31, 1, 0, 1, 7),
    (32, 1, 0, 1, 0),
)

#: §5.2: prefix bands where R_bot-test beats control at the 95% level.
FIGURE4_PREDICTIVE_RANGES = {
    "bot": (20, 25),
    "spam": (19, 32),
    "scan": (20, 24),
    "phish-present": None,  # bot-test does NOT predict phishing
}

#: Figure 1: "at its peak, 35% of the addresses reported as belonging to
#: the botnet are scanning the observed network".
FIGURE1_PEAK_OVERLAP = 0.35

#: §6.2: "At n=24, 90% of the incoming addresses are correctly identified
#: as hostile."
TP_RATE_AT_24 = 0.90

#: §6.2: "If we assume that unknown addresses are hostile, the true
#: positive rate is 97%."
TP_RATE_AT_24_UNKNOWN_HOSTILE = 0.97

#: §6.2: "less than 2% of the total IP addresses available in those /24s
#: communicated with the observed network during this time."
BLOCKED_SPACE_UTILISATION = 0.02
