"""Terminal plotting helpers for the experiment outputs.

The paper's figures are line plots and boxplots; this reproduction runs
in terminals, so the experiment formatters render compact unicode
sparklines and horizontal bars instead.  Everything is pure text — no
plotting dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = ["sparkline", "horizontal_bars", "series_panel"]

_TICKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], maximum: Optional[float] = None) -> str:
    """One-line sparkline of a numeric series.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    values = [float(v) for v in values]
    if not values:
        return ""
    top = maximum if maximum is not None else max(values)
    if top <= 0:
        return _TICKS[0] * len(values)
    ticks = []
    for value in values:
        level = min(len(_TICKS) - 1, int(round(value / top * (len(_TICKS) - 1))))
        ticks.append(_TICKS[max(0, level)])
    return "".join(ticks)


def horizontal_bars(
    rows: Sequence[Dict[str, float]],
    label_key: str,
    value_key: str,
    width: int = 40,
) -> str:
    """Labelled horizontal bar chart.

    >>> print(horizontal_bars([{"k": "a", "v": 2}, {"k": "b", "v": 1}], "k", "v", width=4))
    a  ████ 2
    b  ██   1
    """
    if not rows:
        return "(no rows)"
    labels = [str(row[label_key]) for row in rows]
    values = [float(row[value_key]) for row in rows]
    top = max(values) if max(values) > 0 else 1.0
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(value / top * width))
        bar = "█" * filled + " " * (width - filled)
        rendered = f"{value:g}"
        lines.append(f"{label.ljust(label_width)}  {bar} {rendered}")
    return "\n".join(lines)


def series_panel(
    series: Dict[str, Sequence[float]],
    shared_scale: bool = False,
) -> str:
    """Multiple named sparklines, aligned, with min/max annotations."""
    if not series:
        return "(no series)"
    label_width = max(len(name) for name in series)
    maximum = None
    if shared_scale:
        maximum = max((max(v) for v in series.values() if len(v)), default=None)
    lines = []
    for name, values in series.items():
        if len(values) == 0:
            lines.append(f"{name.ljust(label_width)}  (empty)")
            continue
        spark = sparkline(values, maximum=maximum)
        lines.append(
            f"{name.ljust(label_width)}  {spark}  "
            f"[{min(values):g} .. {max(values):g}]"
        )
    return "\n".join(lines)
