"""Table 1: the report inventory.

Regenerates the tag / type / class / dates / size inventory of the six
reports used to test spatial and temporal uncleanliness, alongside the
paper's cardinalities.  Sizes differ by the reproduction's ~1/64 scale;
the checkable shape is the *ordering* (control >> bot > spam > scan >
phish >> bot-test) and the type/class/date metadata.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table
from repro.experiments.paper_values import TABLE1_SIZES

__all__ = ["Table1Result", "run", "format_result"]

_ORDER = ("bot", "phish", "scan", "spam", "bot-test", "control")


@dataclass(frozen=True)
class Table1Result:
    """The measured inventory with paper sizes attached."""

    rows_: tuple

    def rows(self) -> List[dict]:
        return [dict(row) for row in self.rows_]

    def size_ordering_matches(self) -> bool:
        """control >> bot > spam > scan and bot-test smallest."""
        sizes = {row["tag"]: row["size"] for row in self.rows_}
        return (
            sizes["control"] > sizes["bot"] > sizes["spam"] > sizes["scan"]
            and sizes["bot-test"] < min(
                sizes["bot"], sizes["spam"], sizes["scan"], sizes["phish"]
            )
        )


def run(scenario: PaperScenario) -> Table1Result:
    """Regenerate Table 1 from a built scenario."""
    rows = []
    for tag in _ORDER:
        row = scenario.report(tag).summary_row()
        row["paper_size"] = TABLE1_SIZES[tag]
        rows.append(row)
    return Table1Result(rows_=tuple(rows))


def format_result(result: Table1Result) -> str:
    lines = [
        "Table 1: report inventory (sizes at ~1/64 of paper scale)",
        "",
        render_table(result.rows()),
        "",
        f"size ordering matches the paper: {result.size_ordering_matches()}",
    ]
    return "\n".join(lines)
