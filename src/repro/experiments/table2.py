"""Table 2: the prediction-test reports.

Regenerates the §6 candidate extraction and its partition — unclean
union, candidate, hostile, unknown, innocent — alongside the paper's
counts.  The checkable shape: unknown > hostile >> innocent, with the
candidate set a small fraction of the blocked /24s' address space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.ipspace import cidr as icidr
from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table
from repro.experiments.paper_values import BLOCKED_SPACE_UTILISATION, TABLE2_SIZES

__all__ = ["Table2Result", "run", "format_result"]


@dataclass(frozen=True)
class Table2Result:
    """Partition sizes with paper references."""

    rows_: tuple
    blocked_slash24s: int
    space_utilisation: float  # candidates / addresses available in blocks

    def rows(self) -> List[dict]:
        return [dict(row) for row in self.rows_]

    def partition_shape_matches(self) -> bool:
        """unknown > hostile >> innocent (the paper's 708/287/35)."""
        sizes = {row["tag"]: row["size"] for row in self.rows_}
        return (
            sizes["unknown"] > sizes["hostile"] > 4 * sizes["innocent"]
        )

    def sparse_utilisation(self, limit: float = 3 * BLOCKED_SPACE_UTILISATION) -> bool:
        """Only a sliver of the blocked space ever communicated.

        The paper measured <2%; the simulator's /24s are denser in live,
        active hosts than the real 2006 Internet, so the reproduction
        lands around 4-5% — same order, same conclusion (blocking the
        /24s costs almost nothing).
        """
        return self.space_utilisation < limit


def run(scenario: PaperScenario) -> Table2Result:
    """Regenerate Table 2 from a built scenario."""
    partition = scenario.partition
    rows = []
    for tag, report in (
        ("unclean", scenario.unclean),
        ("candidate", partition.candidate),
        ("hostile", partition.hostile),
        ("unknown", partition.unknown),
        ("innocent", partition.innocent),
    ):
        row = report.summary_row()
        row["tag"] = tag
        row["paper_size"] = TABLE2_SIZES[tag]
        rows.append(row)

    blocked = icidr.block_count(scenario.bot_test, 24)
    available = blocked * 256
    utilisation = len(partition.candidate) / available if available else 0.0
    return Table2Result(
        rows_=tuple(rows),
        blocked_slash24s=blocked,
        space_utilisation=utilisation,
    )


def format_result(result: Table2Result) -> str:
    lines = [
        "Table 2: reports used for the prediction (blocking) test",
        "",
        render_table(result.rows()),
        "",
        f"blocked /24s: {result.blocked_slash24s} "
        f"({result.blocked_slash24s * 256} addresses available)",
        f"space utilisation: {result.space_utilisation:.2%} (paper: <2%)",
        f"partition shape matches (unknown > hostile >> innocent): "
        f"{result.partition_shape_matches()}",
    ]
    return "\n".join(lines)
