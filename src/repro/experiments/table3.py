"""Table 3: observed true and false positive counts per prefix length.

Regenerates the blocking scores TP(n) / FP(n) / pop(n) / unknown for
n in [24, 32], alongside the paper's counts.  Checkable shape: every
column weakly decreases with n; the TP rate at /24 is ~90% (97% counting
unknowns as hostile); false positives all but vanish past /26.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.blocking import BlockingResult
from repro.core.scenario import PaperScenario
from repro.experiments.common import render_table
from repro.experiments.paper_values import (
    TABLE3_ROWS,
    TP_RATE_AT_24,
    TP_RATE_AT_24_UNKNOWN_HOSTILE,
)

__all__ = ["Table3Result", "run", "format_result"]


@dataclass(frozen=True)
class Table3Result:
    """The measured blocking table with paper references."""

    blocking: BlockingResult

    def rows(self) -> List[dict]:
        paper = {row[0]: row for row in TABLE3_ROWS}
        out = []
        for measured in self.blocking.rows:
            p = paper[measured.prefix]
            row = measured.as_dict()
            row["paper_TP"] = p[1]
            row["paper_FP"] = p[2]
            row["paper_pop"] = p[3]
            row["paper_unknown"] = p[4]
            out.append(row)
        return out

    def monotone(self) -> bool:
        return self.blocking.monotone_decreasing()

    def tp_rate_at_24(self) -> float:
        return self.blocking.row(24).tp_rate

    def tp_rate_at_24_unknown_hostile(self) -> float:
        return self.blocking.row(24).tp_rate_assuming_unknown_hostile

    def high_tp_rate(self, floor: float = 0.80) -> bool:
        """The paper's ~90% hostile share at /24."""
        return self.tp_rate_at_24() >= floor

    def fp_vanishes_at_long_prefixes(self, from_prefix: int = 28) -> bool:
        """Paper: FP ~0 from /26-28 onward.

        Checked relative to the /24 count (with a small absolute floor)
        so the claim is scale-free: at the paper's scale FP drops from 35
        to 0-1; at reproduction scale from ~35 to 0-3.
        """
        floor = max(2, round(0.1 * self.blocking.row(24).false_positives))
        return all(
            r.false_positives <= floor
            for r in self.blocking.rows
            if r.prefix >= from_prefix
        )


def run(scenario: PaperScenario) -> Table3Result:
    """Regenerate Table 3 from a built scenario.

    Routed through the facade's evaluate() entry with the uncleanliness
    predictor; its predicted blocks at each prefix are exactly
    C_n(bot-test), so the table matches ``scenario.blocking()``.
    """
    from repro.api import evaluate

    return Table3Result(
        blocking=evaluate(scenario, metric="blocking", train="bot-test")
    )


def format_result(result: Table3Result) -> str:
    lines = [
        "Table 3: observed true and false positive counts",
        "",
        render_table(result.rows()),
        "",
        f"all columns weakly decrease with n: {result.monotone()}",
        f"TP rate at /24: {result.tp_rate_at_24():.2f} "
        f"(paper ~{TP_RATE_AT_24:.2f})",
        f"TP rate with unknowns hostile: "
        f"{result.tp_rate_at_24_unknown_hostile():.2f} "
        f"(paper ~{TP_RATE_AT_24_UNKNOWN_HOSTILE:.2f})",
        f"FP vanishes at long prefixes: {result.fp_vanishes_at_long_prefixes()}",
    ]
    return "\n".join(lines)
