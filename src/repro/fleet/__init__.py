"""The multi-network fleet: sharded simulation + report clearinghouse.

The paper's cross-network claim — one network's uncleanliness predicts
*another* network's future botnet addresses — needs many vantage
points.  This package runs a fleet of :class:`NetworkShard` member
networks under a fault-isolating :class:`FleetSupervisor` (per-shard
deadlines, bounded retry-with-backoff, quarantine, checkpoint/resume)
and pools their report feeds through a :class:`Clearinghouse` with an
explicit staleness/quorum policy.  See DESIGN.md ("Fleet failure
domains") for the policy rationale.
"""

from repro.fleet.clearinghouse import (
    Clearinghouse,
    FleetError,
    QuorumError,
    ShardFeed,
)
from repro.fleet.shard import (
    FLEET_FEED_TAGS,
    FleetConfig,
    NetworkShard,
    heterogeneous_fleet,
)
from repro.fleet.supervisor import (
    FleetFailure,
    FleetResult,
    FleetSupervisor,
    ShardDelivery,
    ShardOutcome,
    delivery_checksum,
    reports_as_of,
    scenario_reports,
    synthetic_reports,
)

__all__ = [
    "FLEET_FEED_TAGS",
    "NetworkShard",
    "FleetConfig",
    "heterogeneous_fleet",
    "ShardFeed",
    "Clearinghouse",
    "FleetError",
    "QuorumError",
    "FleetFailure",
    "ShardDelivery",
    "ShardOutcome",
    "FleetResult",
    "FleetSupervisor",
    "delivery_checksum",
    "reports_as_of",
    "scenario_reports",
    "synthetic_reports",
]
