"""The clearinghouse: pooled cross-network uncleanliness.

The paper's §4-§5 story is told from one network's vantage point; the
clearinghouse retells it from many.  Each member network contributes a
:class:`ShardFeed` — its report set plus the calendar day the feed is
current *as of* — and the clearinghouse pools the feeds into a shared
uncleanliness view with an explicit staleness/quorum policy:

* a feed older than ``max_staleness_days`` behind the freshest feed is
  **stale** and excluded from pooling (never silently blended in);
* a shard the supervisor gave up on is **quarantined** and absent;
* pooled scores are the noisy-OR of whatever feeds remain — they
  degrade gracefully as feeds drop out and converge back to the
  fault-free values once every shard recovers;
* if fewer than ``quorum`` feeds remain, scoring raises the typed
  :class:`QuorumError` instead of returning a quietly weaker answer
  (``allow_partial=True`` opts into the degraded view explicitly).

Pooling is pure set algebra (sorted unions of addresses), so the pooled
view is bit-identical regardless of shard scheduling order, retry
history, or which subset of shards delivered — only *membership*
matters, exactly the determinism contract the fleet supervisor needs.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core import folds
from repro.core.report import Report, ReportType
from repro.core.uncleanliness import BlockScores, UncleanlinessScorer
from repro.obs import metrics as obs_metrics

log = logging.getLogger("repro.fleet.clearinghouse")

__all__ = ["FleetError", "QuorumError", "ShardFeed", "Clearinghouse"]


class FleetError(RuntimeError):
    """Base class for typed fleet/clearinghouse failures."""


class QuorumError(FleetError):
    """Too few feeds available to satisfy the clearinghouse policy."""


@dataclass(frozen=True)
class ShardFeed:
    """One member network's contribution to the clearinghouse.

    ``reports`` maps feed tags (``"bot"``, ``"spam"``, ...) to that
    network's :class:`~repro.core.report.Report`; ``as_of`` is the
    proleptic ordinal of the feed's last covered calendar day (0 when
    the reports carry no period), used by the staleness policy.
    """

    name: str
    reports: Mapping[str, Report] = field(repr=False)
    as_of: int = 0

    def report(self, tag: str) -> Report:
        return self.reports[tag]


class Clearinghouse:
    """Pool per-network report feeds into a shared uncleanliness view."""

    def __init__(
        self,
        feeds: Iterable[ShardFeed],
        *,
        quarantined: Sequence[str] = (),
        quorum: int = 1,
        max_staleness_days: Optional[int] = None,
        prefix_len: int = 24,
        weights: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.feeds: Tuple[ShardFeed, ...] = tuple(feeds)
        names = [feed.name for feed in self.feeds]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate feed names: {names}")
        if quorum < 1:
            raise ValueError(f"quorum must be >= 1: {quorum}")
        self.quarantined: Tuple[str, ...] = tuple(quarantined)
        self.quorum = int(quorum)
        self.max_staleness_days = max_staleness_days
        self.prefix_len = int(prefix_len)
        self.weights: Dict[str, float] = dict(
            weights if weights is not None else folds.DEFAULT_CLASS_WEIGHTS
        )
        #: The freshest feed's day; staleness is measured against it.
        self.head: int = max((feed.as_of for feed in self.feeds), default=0)
        if max_staleness_days is None:
            self.stale: Tuple[str, ...] = ()
        else:
            self.stale = tuple(
                feed.name
                for feed in self.feeds
                if self.head - feed.as_of > max_staleness_days
            )
        self.available: Tuple[ShardFeed, ...] = tuple(
            feed for feed in self.feeds if feed.name not in self.stale
        )
        obs_metrics.set_gauge("fleet.pool.feeds", len(self.available))
        obs_metrics.set_gauge("fleet.pool.stale", len(self.stale))
        if self.degraded:
            obs_metrics.inc("fleet.pool.degraded")
            log.warning(
                "clearinghouse degraded: available=%s stale=%s quarantined=%s",
                [feed.name for feed in self.available],
                list(self.stale),
                list(self.quarantined),
            )

    # -- policy ------------------------------------------------------------

    @property
    def quorum_met(self) -> bool:
        return len(self.available) >= self.quorum

    @property
    def degraded(self) -> bool:
        """Any feed missing, stale, or quarantined — the pooled view is
        weaker than the fault-free one."""
        return bool(self.quarantined or self.stale or not self.quorum_met)

    def feed(self, name: str) -> ShardFeed:
        for candidate in self.feeds:
            if candidate.name == name:
                return candidate
        if name in self.quarantined:
            raise FleetError(f"shard {name!r} is quarantined; no feed delivered")
        raise KeyError(f"no feed named {name!r}")

    # -- pooling -----------------------------------------------------------

    def _sources(self, exclude: Sequence[str]) -> Tuple[ShardFeed, ...]:
        excluded = set(exclude)
        return tuple(feed for feed in self.available if feed.name not in excluded)

    def pooled_report(self, tag: str, exclude: Sequence[str] = ()) -> Report:
        """The union of every available feed's ``tag`` report.

        Unions are computed as sorted unique address sets, so the result
        is independent of feed order and of which retry attempt produced
        each feed.  Raises :class:`QuorumError` when no feed remains.
        """
        sources = self._sources(exclude)
        carriers = [feed for feed in sources if tag in feed.reports]
        if not carriers:
            if not sources:
                raise QuorumError(
                    f"no feeds available to pool {tag!r} "
                    f"(stale={list(self.stale)} quarantined={list(self.quarantined)})"
                )
            raise KeyError(f"no available feed carries report tag {tag!r}")
        template = carriers[0].reports[tag]
        merged = np.unique(
            np.concatenate([feed.reports[tag].addresses for feed in carriers])
        )
        return Report(
            tag=f"pool:{tag}",
            addresses=merged,
            report_type=ReportType.PROVIDED,
            data_class=template.data_class,
            period=template.period,
        )

    def _score(self, feeds_reports: Mapping[str, Report]) -> BlockScores:
        # Classes are folded in CLASS_OF_TAG order (the exact float
        # multiplication order of the single-network batch path), so a
        # one-feed pool is bit-identical to that network's local scores.
        scorer = UncleanlinessScorer(
            prefix_len=self.prefix_len,
            weights={cls: self.weights.get(cls, 1.0) for cls in feeds_reports},
        )
        return scorer.score(feeds_reports)

    def pooled_scores(
        self, exclude: Sequence[str] = (), allow_partial: bool = False
    ) -> BlockScores:
        """Noisy-OR uncleanliness over the feeds actually present.

        A missing class feed simply drops out of the product (graceful
        degradation, not an error); too few *feeds* is a policy breach
        and raises :class:`QuorumError` unless ``allow_partial``.
        """
        if not allow_partial and not self.quorum_met:
            raise QuorumError(
                f"only {len(self.available)} of {len(self.feeds) + len(self.quarantined)}"
                f" feed(s) available; quorum is {self.quorum}"
            )
        class_reports: Dict[str, Report] = {}
        for tag, cls in folds.CLASS_OF_TAG.items():
            try:
                class_reports[cls] = self.pooled_report(tag, exclude=exclude)
            except KeyError:
                continue
        if not class_reports:
            raise QuorumError("no scoreable class feeds present")
        return self._score(class_reports)

    def local_scores(self, name: str) -> BlockScores:
        """One network's own view, through the same scoring pipeline."""
        feed = self.feed(name)
        class_reports = {
            cls: feed.reports[tag]
            for tag, cls in folds.CLASS_OF_TAG.items()
            if tag in feed.reports
        }
        if not class_reports:
            raise QuorumError(f"feed {name!r} carries no scoreable reports")
        return self._score(class_reports)

    # -- reporting ---------------------------------------------------------

    def availability(self) -> List[dict]:
        """Per-shard availability rows (fresh / stale / quarantined)."""
        rows = []
        for feed in self.feeds:
            rows.append(
                {
                    "network": feed.name,
                    "status": "stale" if feed.name in self.stale else "fresh",
                    "as_of": feed.as_of,
                    "lag_days": self.head - feed.as_of,
                    "reports": len(feed.reports),
                    "addresses": int(
                        sum(len(report) for report in feed.reports.values())
                    ),
                }
            )
        for name in self.quarantined:
            rows.append(
                {
                    "network": name,
                    "status": "quarantined",
                    "as_of": "-",
                    "lag_days": "-",
                    "reports": 0,
                    "addresses": 0,
                }
            )
        return rows

    def manifest(self) -> dict:
        """The availability/policy block for the run manifest."""
        return {
            "feeds": [feed.name for feed in self.feeds],
            "available": [feed.name for feed in self.available],
            "stale": list(self.stale),
            "quarantined": list(self.quarantined),
            "quorum": self.quorum,
            "quorum_met": self.quorum_met,
            "max_staleness_days": self.max_staleness_days,
            "head_day": self.head,
            "degraded": self.degraded,
        }
