"""Network shards: the fleet's unit of isolation.

A :class:`NetworkShard` is one member network of the fleet — its own
:class:`~repro.core.scenario.ScenarioConfig` (its own synthetic
Internet, botnet, detectors and seed), its own artifact-store namespace
under the shared cache (``fleet-<fp>/shard-<name>`` keys), and its own
worker process when the supervisor runs a pool.  :class:`FleetConfig`
bundles the shards with the supervisor's failure policy: per-shard
deadline, bounded retry-with-backoff, and the clearinghouse's
staleness/quorum parameters.

:func:`heterogeneous_fleet` builds the default multi-network study —
``count`` networks with distinct seeds, traffic volumes and control
population sizes, mirroring the paper's observation that networks of
very different sizes still predict each other's botnet addresses.
"""

from __future__ import annotations

import re
import string
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from repro.core.scenario import ScenarioConfig
from repro.engine.fingerprint import fingerprint

__all__ = [
    "FLEET_FEED_TAGS",
    "NetworkShard",
    "FleetConfig",
    "heterogeneous_fleet",
]

#: Report feeds a member network ships to the clearinghouse: the four
#: unclean classes (Table 2), the months-old bot-test report (the §5
#: cross-network predictor), and the network's control population.
FLEET_FEED_TAGS: Tuple[str, ...] = (
    "bot",
    "phish",
    "scan",
    "spam",
    "bot-test",
    "control",
)

#: Shard names become store-key components and file-name fragments.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class NetworkShard:
    """One member network: a name and the scenario that simulates it.

    ``vantage_as`` restricts the shard's *observed* feeds (scan, spam,
    control) to the address space announced by one autonomous system of
    the shard's AS-structured Internet — a fleet member that borders a
    single operator rather than the whole world.  Provided feeds (bot,
    phish, bot-test) stay global: third parties publish them regardless
    of where the member sits.  ``None`` (the default) keeps the classic
    whole-Internet vantage.
    """

    name: str
    config: ScenarioConfig
    vantage_as: Optional[int] = None

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"bad shard name {self.name!r}: must be alphanumeric with "
                "'.', '_' or '-' (it becomes a store-key component)"
            )
        if self.vantage_as is not None:
            if self.vantage_as < 0:
                raise ValueError(
                    f"vantage_as must be >= 0: {self.vantage_as}"
                )
            if self.config.internet.asys is None:
                raise ValueError(
                    "vantage_as requires an AS-structured Internet: set "
                    "InternetConfig.asys (e.g. via an AS-aware scenario "
                    "pack)"
                )
            if self.vantage_as >= self.config.internet.asys.num_as:
                raise ValueError(
                    f"vantage_as {self.vantage_as} outside "
                    f"0..{self.config.internet.asys.num_as - 1}"
                )

    def fingerprint(self) -> str:
        """Identity of this shard's configuration (not its name)."""
        if self.vantage_as is not None:
            return fingerprint(
                {"config": self.config, "vantage_as": self.vantage_as}
            )
        return fingerprint(self.config)


@dataclass(frozen=True)
class FleetConfig:
    """The fleet's membership plus its failure and pooling policy.

    ``deadline`` (seconds, pool mode only) bounds each shard attempt;
    ``max_retries`` bounds extra rounds after the first;
    ``backoff`` seeds the exponential inter-round delay;
    ``quorum`` / ``max_staleness_days`` parameterise the clearinghouse;
    ``workers`` > 1 runs shards in a process pool (1 = in-process).
    """

    shards: Tuple[NetworkShard, ...]
    feed_tags: Tuple[str, ...] = FLEET_FEED_TAGS
    deadline: Optional[float] = None
    max_retries: int = 2
    backoff: float = 0.05
    quorum: int = 1
    max_staleness_days: Optional[int] = None
    workers: Optional[int] = None
    prefix_len: int = 24

    def __post_init__(self) -> None:
        object.__setattr__(self, "shards", tuple(self.shards))
        object.__setattr__(self, "feed_tags", tuple(self.feed_tags))

    def validate(self) -> None:
        if not self.shards:
            raise ValueError("a fleet needs at least one shard")
        names = [shard.name for shard in self.shards]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate shard names: {names}")
        if not 1 <= self.quorum <= len(self.shards):
            raise ValueError(
                f"quorum {self.quorum} outside 1..{len(self.shards)}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0: {self.backoff}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(f"deadline must be positive: {self.deadline}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1: {self.workers}")
        if not self.feed_tags:
            raise ValueError("feed_tags must not be empty")

    def fingerprint(self) -> str:
        """Identity of the fleet's membership and feed set.

        Execution policy (deadline, retries, workers, backoff) is
        deliberately excluded: results are bit-identical regardless of
        how the shards were scheduled, so policy must not change the
        checkpoint namespace.  A shard's vantage AS joins its tuple only
        when set, so whole-Internet fleets keep their historical
        fingerprints.
        """
        return fingerprint(
            {
                "shards": [
                    (shard.name, shard.config)
                    if shard.vantage_as is None
                    else (shard.name, shard.config, shard.vantage_as)
                    for shard in self.shards
                ],
                "feed_tags": list(self.feed_tags),
                "prefix_len": self.prefix_len,
            }
        )

    def shard(self, name: str) -> NetworkShard:
        for candidate in self.shards:
            if candidate.name == name:
                return candidate
        raise KeyError(f"no shard named {name!r}")


def _shard_name(index: int) -> str:
    letters = string.ascii_lowercase
    if index < len(letters):
        return f"net-{letters[index]}"
    return f"net-{index}"


def heterogeneous_fleet(
    count: int = 3,
    seed: int = 20_061_001,
    small: bool = True,
    pack: Optional[str] = None,
    vantage: str = "global",
    **policy,
) -> FleetConfig:
    """A fleet of ``count`` dissimilar vantage points on one Internet.

    All shards share ``seed`` — the paper's networks observe the *same*
    Internet, botnet ecosystem and phishing economy — but each member
    watches it differently: its own (overlapping) set of monitored IRC
    channels, its own monitor observation probability, its own border
    traffic volume and its own control population size, cycling through
    small, mid-sized and large member profiles.  That makes the
    cross-network question real: does network A's old uncleanliness
    predict network B's current botnet space?  ``policy`` keyword
    arguments pass through to :class:`FleetConfig`.

    ``pack`` names a scenario pack whose transform shapes every member's
    shared world (applied to the base config before per-member
    profiling).  ``vantage="as"`` additionally pins each member to one
    autonomous system of that world — member *i* borders AS ``i mod
    num_as`` and its observed feeds (scan, spam, control) cover only
    that operator's announced space — which requires an AS-structured
    config (``pack`` setting ``internet.asys``, e.g. ``attack-wave``).
    """
    if count < 1:
        raise ValueError(f"count must be >= 1: {count}")
    if vantage not in ("global", "as"):
        raise ValueError(f"vantage must be 'global' or 'as': {vantage!r}")
    base = ScenarioConfig.small(seed=seed) if small else ScenarioConfig(seed=seed)
    if pack is not None:
        from repro.scenarios import get_pack

        base = get_pack(pack).build(base)
    if vantage == "as" and base.internet.asys is None:
        raise ValueError(
            "vantage='as' needs an AS-structured world: pass a pack that "
            "sets InternetConfig.asys (e.g. 'attack-wave')"
        )
    channel_count = base.botnet.num_channels
    shards = []
    for index in range(count):
        # Member profile: 1.0x / 0.6x / 1.4x traffic and control volume,
        # 0.9 / 0.7 / 0.5 monitor coverage.
        scale = (1.0, 0.6, 1.4)[index % 3]
        coverage = (0.9, 0.7, 0.5)[index % 3]
        # Each network tracks four channels of the shared botnet, strided
        # so neighbours overlap; the top two channels are reserved for
        # the months-old bot-test reports, alternated between members so
        # a network's own historical botnet differs from its peers'.
        test_channel = channel_count - 1 - (index % 2)
        channels = tuple(
            sorted({(3 * index + j) % (channel_count - 2) for j in range(4)})
        )
        config = replace(
            base,
            bot_report_channels=channels,
            bot_test_channel=test_channel,
            monitor=replace(base.monitor, observation_probability=coverage),
            traffic=replace(
                base.traffic,
                benign_clients_per_day=max(
                    10, int(base.traffic.benign_clients_per_day * scale)
                ),
                suspicious_hosts=max(
                    50, int(base.traffic.suspicious_hosts * scale)
                ),
            ),
            control_size=max(1_000, int(base.control_size * scale)),
        )
        vantage_as = (
            index % base.internet.asys.num_as if vantage == "as" else None
        )
        shards.append(NetworkShard(
            name=_shard_name(index), config=config, vantage_as=vantage_as
        ))
    return FleetConfig(shards=tuple(shards), **policy)
