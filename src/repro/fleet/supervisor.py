"""Fault-isolated execution of a multi-network fleet.

:class:`FleetSupervisor` generalises the supervised Monte-Carlo
scheduler (:mod:`repro.core.sampling`) from trial chunks to whole
member networks.  Each shard job builds one network's report set and
returns a :class:`ShardDelivery` — the reports plus a SHA-256 checksum
of their address content computed *inside* the job, so any corruption
between the worker and the supervisor is detectable.  The supervisor
provides hard failure isolation at the shard boundary:

* **deadlines** — in pool mode each attempt is bounded by
  ``FleetConfig.deadline``; a hung worker is abandoned
  (``shutdown(wait=False)``), never joined;
* **bounded retry with backoff** — failed shards are re-run on fresh
  pools for up to ``max_retries`` extra rounds with exponential
  backoff between rounds;
* **quarantine** — a shard that exhausts its retries (or keeps
  returning checksum-mismatched report sets) is quarantined: the fleet
  run still completes and the clearinghouse degrades gracefully, with
  the quarantined shard named in ``obs`` metrics and the run manifest;
* **checkpoint/resume** — verified deliveries are checkpointed per
  shard through the v3 artifact store
  (``fleet-<fp>/shard-<name>.reports``), so a re-run resumes finished
  shards instantly and a recovered shard converges the pooled view
  back to the fault-free values.

Because each shard's report set is a pure function of its
``ScenarioConfig``, results are bit-identical regardless of scheduling
order, worker count, or which shards crashed and were retried — the
only observable difference is *availability*, which the clearinghouse
surfaces explicitly.

Chaos hooks: shard jobs poll the ``shard.crash`` / ``shard.fail`` /
``shard.slow`` / ``shard.corrupt`` fault sites (see
:mod:`repro.engine.faults`), so ``REPRO_FAULTS=shard-crash`` etc.
exercise every failure path deterministically.
"""

from __future__ import annotations

import hashlib
import logging
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.report import DataClass, Report, ReportType
from repro.engine import faults
from repro.engine.store import (
    MISS,
    ArtifactStore,
    ReportMappingCodec,
    default_store,
)
from repro.fleet.clearinghouse import Clearinghouse, FleetError, ShardFeed
from repro.fleet.shard import FleetConfig, NetworkShard
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.metrics import warn_event

log = logging.getLogger("repro.fleet.supervisor")

__all__ = [
    "FleetFailure",
    "ShardDelivery",
    "ShardOutcome",
    "FleetResult",
    "FleetSupervisor",
    "delivery_checksum",
    "scenario_reports",
    "synthetic_reports",
]

#: A shard runner: ``(shard, feed_tags) -> {tag: Report}``.  Must be a
#: module-level callable so pool mode can pickle it into workers.
ShardRunner = Callable[[NetworkShard, Tuple[str, ...]], Mapping[str, Report]]


class FleetFailure(FleetError):
    """Every shard failed; there is nothing to pool."""


# -- delivery integrity ----------------------------------------------------


def delivery_checksum(reports: Mapping[str, Report]) -> str:
    """SHA-256 over the report set's tags and address content.

    Computed inside the shard job and recomputed by the supervisor on
    receipt; a mismatch quarantines the delivery exactly like a crash.
    """
    digest = hashlib.sha256()
    for tag in sorted(reports):
        report = reports[tag]
        digest.update(tag.encode())
        digest.update(b"\x00")
        digest.update(np.ascontiguousarray(report.addresses).tobytes())
        digest.update(b"\x01")
    return digest.hexdigest()


def reports_as_of(reports: Mapping[str, Report]) -> int:
    """The feed's currency: latest covered day as a proleptic ordinal."""
    latest = 0
    for report in reports.values():
        if report.period is not None:
            latest = max(latest, report.period[1].toordinal())
    return latest


# -- shard runners ---------------------------------------------------------


def scenario_reports(
    shard: NetworkShard, feed_tags: Tuple[str, ...]
) -> Dict[str, Report]:
    """The production runner: simulate the shard's network end to end.

    A shard pinned to a vantage AS sees only that operator's announced
    space in its *observed* feeds — the detectors at its border cannot
    witness traffic that never crosses it — while provided feeds arrive
    from third parties and stay global.
    """
    from repro.core.scenario import PaperScenario

    scenario = PaperScenario._create(shard.config)
    reports = {tag: scenario.report(tag) for tag in feed_tags}
    if shard.vantage_as is not None:
        internet = scenario.internet
        vantage16 = internet.slash16[
            internet.topology.as_of_net16 == shard.vantage_as
        ]
        reports = {
            tag: _restrict_to_vantage(report, vantage16)
            for tag, report in reports.items()
        }
    return reports


def _restrict_to_vantage(report: Report, vantage16: np.ndarray) -> Report:
    """Drop an observed report's addresses outside the vantage /16s."""
    if report.report_type is not ReportType.OBSERVED:
        return report
    keep = np.isin(report.addresses & np.uint32(0xFFFF0000), vantage16)
    if bool(keep.all()):
        return report
    return Report(
        tag=report.tag,
        addresses=report.addresses[keep],
        report_type=report.report_type,
        data_class=report.data_class,
        period=report.period,
    )


def synthetic_reports(
    shard: NetworkShard, feed_tags: Tuple[str, ...]
) -> Dict[str, Report]:
    """A cheap deterministic runner for chaos tests and benchmarks.

    Pure function of the shard's seed — the same determinism contract
    as :func:`scenario_reports` at a millionth of the cost.
    """
    from repro.core import folds
    from repro.sim.timeline import PAPER_WINDOWS

    rng = np.random.default_rng(shard.config.seed)
    period = PAPER_WINDOWS.OCTOBER.dates()
    out: Dict[str, Report] = {}
    for tag in feed_tags:
        size = 4096 if tag == "control" else 256
        addresses = np.unique(
            rng.integers(1 << 24, 1 << 31, size=size, dtype=np.uint32)
        )
        out[tag] = Report(
            tag=tag,
            addresses=addresses,
            report_type=ReportType.PROVIDED,
            data_class=folds.CLASS_OF_TAG.get(tag, DataClass.NONE),
            period=period,
        )
    return out


def _tampered(delivery: "ShardDelivery") -> "ShardDelivery":
    """Flip one address bit in the first non-empty report (keeping the
    original checksum), simulating corruption in transit."""
    for tag in sorted(delivery.reports):
        report = delivery.reports[tag]
        if len(report) == 0:
            continue
        addresses = report.addresses.copy()
        addresses[-1] ^= np.uint32(1)
        reports = dict(delivery.reports)
        reports[tag] = Report(
            tag=report.tag,
            addresses=addresses,
            report_type=report.report_type,
            data_class=report.data_class,
            period=report.period,
        )
        return ShardDelivery(
            name=delivery.name,
            reports=reports,
            checksum=delivery.checksum,
            as_of=delivery.as_of,
        )
    return delivery


@dataclass(frozen=True)
class ShardDelivery:
    """What a shard job hands back: reports + integrity checksum."""

    name: str
    reports: Dict[str, Report] = field(repr=False)
    checksum: str
    as_of: int


def _shard_job(
    shard: NetworkShard,
    feed_tags: Tuple[str, ...],
    runner: ShardRunner,
) -> ShardDelivery:
    """Run one shard attempt (possibly inside a pool worker).

    Fault sites fire in a fixed order: ``shard.crash`` (hard exit, pool
    workers only), ``shard.fail`` (typed raise), ``shard.slow`` (sleep,
    for deadline pressure), then ``shard.corrupt`` *after* the checksum
    is taken — so corruption is always detectable on receipt.
    """
    with obs_trace.span("fleet.shard.job", shard=shard.name):
        faults.check("shard.crash")
        faults.check("shard.fail")
        faults.check("shard.slow")
        reports = dict(runner(shard, tuple(feed_tags)))
        delivery = ShardDelivery(
            name=shard.name,
            reports=reports,
            checksum=delivery_checksum(reports),
            as_of=reports_as_of(reports),
        )
        if faults.check("shard.corrupt") is not None:
            delivery = _tampered(delivery)
        return delivery


# -- outcomes --------------------------------------------------------------


@dataclass(frozen=True)
class ShardOutcome:
    """How one shard fared across the run's rounds."""

    name: str
    status: str  # "ok" | "quarantined"
    attempts: int
    from_checkpoint: bool
    error: Optional[str] = None
    checksum: Optional[str] = None
    as_of: Optional[int] = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    @property
    def retried(self) -> bool:
        return self.attempts > 1

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "attempts": self.attempts,
            "from_checkpoint": self.from_checkpoint,
            "error": self.error,
            "checksum": self.checksum,
            "as_of": self.as_of,
        }


@dataclass(frozen=True)
class FleetResult:
    """A completed fleet run: outcomes plus the pooled clearinghouse."""

    config: FleetConfig
    fingerprint: str
    outcomes: Tuple[ShardOutcome, ...]
    clearinghouse: Clearinghouse

    @property
    def ok(self) -> Tuple[str, ...]:
        return tuple(o.name for o in self.outcomes if o.ok)

    @property
    def quarantined(self) -> Tuple[str, ...]:
        return tuple(o.name for o in self.outcomes if not o.ok)

    @property
    def degraded(self) -> bool:
        return self.clearinghouse.degraded

    def outcome(self, name: str) -> ShardOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(f"no shard named {name!r}")

    def manifest(self) -> dict:
        """The fleet block for the run manifest: per-shard fate plus
        the clearinghouse availability/policy summary."""
        return {
            "fingerprint": self.fingerprint,
            "shards": {o.name: o.as_dict() for o in self.outcomes},
            "clearinghouse": self.clearinghouse.manifest(),
        }


# -- the supervisor --------------------------------------------------------


class FleetSupervisor:
    """Run a fleet of shards to completion with hard failure isolation."""

    def __init__(
        self,
        config: FleetConfig,
        *,
        runner: Optional[ShardRunner] = None,
        store: Optional[ArtifactStore] = None,
        checkpoint: bool = True,
    ) -> None:
        config.validate()
        self.config = config
        self.runner: ShardRunner = runner if runner is not None else scenario_reports
        self.checkpoint = checkpoint
        self._store = store
        runner_token = f"{self.runner.__module__}.{self.runner.__qualname__}"
        # The checkpoint namespace covers everything that determines a
        # delivery's content: membership, feeds, and the runner itself.
        self.fingerprint = hashlib.sha256(
            f"{config.fingerprint()}|{runner_token}".encode()
        ).hexdigest()

    def checkpoint_key(self, name: str) -> str:
        return f"fleet-{self.fingerprint[:16]}/shard-{name}.reports"

    def _resolve_store(self) -> Optional[ArtifactStore]:
        if not self.checkpoint:
            return None
        return self._store if self._store is not None else default_store()

    # -- execution ---------------------------------------------------------

    def run(self) -> FleetResult:
        config = self.config
        store = self._resolve_store()
        codec = ReportMappingCodec()
        deliveries: Dict[str, ShardDelivery] = {}
        meta: Dict[str, dict] = {
            shard.name: {"attempts": 0, "from_checkpoint": False, "error": None}
            for shard in config.shards
        }
        with obs_trace.span(
            "fleet.run", shards=len(config.shards), fingerprint=self.fingerprint[:12]
        ):
            obs_metrics.inc("fleet.runs")
            if store is not None:
                for shard in config.shards:
                    cached = store.get(self.checkpoint_key(shard.name), codec)
                    if cached is MISS:
                        continue
                    reports = dict(cached)
                    deliveries[shard.name] = ShardDelivery(
                        name=shard.name,
                        reports=reports,
                        checksum=delivery_checksum(reports),
                        as_of=reports_as_of(reports),
                    )
                    meta[shard.name]["from_checkpoint"] = True
                if deliveries:
                    obs_metrics.inc("fleet.shards_resumed", len(deliveries))
                    log.info(
                        "fleet resumed %d shard(s) from checkpoints: %s",
                        len(deliveries),
                        sorted(deliveries),
                    )

            pending = [s for s in config.shards if s.name not in deliveries]
            round_index = 0
            while pending and round_index <= config.max_retries:
                if round_index:
                    obs_metrics.inc("fleet.shard.retries", len(pending))
                    delay = config.backoff * (2 ** (round_index - 1))
                    if delay:
                        time.sleep(delay)
                    log.warning(
                        "fleet retry round %d for shards %s",
                        round_index,
                        [s.name for s in pending],
                    )
                for delivery in self._run_round(pending, meta):
                    deliveries[delivery.name] = delivery
                    if store is not None:
                        store.put(
                            self.checkpoint_key(delivery.name),
                            delivery.reports,
                            codec,
                        )
                pending = [s for s in config.shards if s.name not in deliveries]
                round_index += 1

            outcomes = self._outcomes(config.shards, deliveries, meta)
            if not deliveries:
                errors = {name: m["error"] for name, m in meta.items()}
                raise FleetFailure(
                    f"all {len(config.shards)} shard(s) failed after "
                    f"{config.max_retries + 1} round(s): {errors}"
                )
            feeds = [
                ShardFeed(
                    name=deliveries[s.name].name,
                    reports=deliveries[s.name].reports,
                    as_of=deliveries[s.name].as_of,
                )
                for s in config.shards
                if s.name in deliveries
            ]
            quarantined = tuple(
                s.name for s in config.shards if s.name not in deliveries
            )
            clearinghouse = Clearinghouse(
                feeds,
                quarantined=quarantined,
                quorum=config.quorum,
                max_staleness_days=config.max_staleness_days,
                prefix_len=config.prefix_len,
            )
            obs_metrics.set_gauge("fleet.shards_available", len(feeds))
            obs_metrics.set_gauge("fleet.shards_quarantined", len(quarantined))
            return FleetResult(
                config=config,
                fingerprint=self.fingerprint,
                outcomes=outcomes,
                clearinghouse=clearinghouse,
            )

    def _outcomes(
        self,
        shards: Sequence[NetworkShard],
        deliveries: Dict[str, ShardDelivery],
        meta: Dict[str, dict],
    ) -> Tuple[ShardOutcome, ...]:
        outcomes = []
        for shard in shards:
            m = meta[shard.name]
            delivery = deliveries.get(shard.name)
            if delivery is not None:
                outcomes.append(
                    ShardOutcome(
                        name=shard.name,
                        status="ok",
                        attempts=m["attempts"],
                        from_checkpoint=m["from_checkpoint"],
                        error=m["error"],
                        checksum=delivery.checksum,
                        as_of=delivery.as_of,
                    )
                )
            else:
                obs_metrics.inc("fleet.shard.quarantined")
                warn_event(
                    "fleet.shard.quarantined",
                    f"shard {shard.name} quarantined after "
                    f"{m['attempts']} attempt(s): {m['error']}",
                    logger=log,
                )
                outcomes.append(
                    ShardOutcome(
                        name=shard.name,
                        status="quarantined",
                        attempts=m["attempts"],
                        from_checkpoint=False,
                        error=m["error"],
                    )
                )
        return tuple(outcomes)

    def _run_round(
        self, pending: Sequence[NetworkShard], meta: Dict[str, dict]
    ) -> List[ShardDelivery]:
        workers = self.config.workers or 1
        if workers == 1:
            return self._run_serial(pending, meta)
        return self._run_pool(pending, meta, min(workers, len(pending)))

    def _run_serial(
        self, pending: Sequence[NetworkShard], meta: Dict[str, dict]
    ) -> List[ShardDelivery]:
        # In-process mode: deterministic shard order, no deadline (there
        # is no one left to enforce it), injected crashes are consumed
        # harmlessly by the fault layer.
        completed = []
        for shard in pending:
            meta[shard.name]["attempts"] += 1
            began = time.perf_counter()
            try:
                delivery = _shard_job(shard, self.config.feed_tags, self.runner)
            except Exception as err:  # noqa: BLE001 - isolation boundary
                self._record_failure(meta, shard.name, err)
                continue
            obs_metrics.observe("fleet.shard.seconds", time.perf_counter() - began)
            if self._verify(delivery, meta):
                completed.append(delivery)
        return completed

    def _run_pool(
        self,
        pending: Sequence[NetworkShard],
        meta: Dict[str, dict],
        workers: int,
    ) -> List[ShardDelivery]:
        config = self.config
        completed: List[ShardDelivery] = []
        pool = ProcessPoolExecutor(max_workers=workers)
        wait_for_pool = True
        try:
            futures = [
                (pool.submit(_shard_job, shard, config.feed_tags, self.runner), shard)
                for shard in pending
            ]
            for future, shard in futures:
                meta[shard.name]["attempts"] += 1
                began = time.perf_counter()
                try:
                    delivery = future.result(timeout=config.deadline)
                except BrokenProcessPool:
                    meta[shard.name]["error"] = "worker process died mid-shard"
                    obs_metrics.inc("fleet.shard.crashes")
                    log.warning("fleet shard %s: worker crashed", shard.name)
                    continue
                except FuturesTimeoutError:
                    meta[shard.name]["error"] = (
                        f"deadline of {config.deadline}s exceeded"
                    )
                    obs_metrics.inc("fleet.shard.timeouts")
                    log.warning(
                        "fleet shard %s missed its %.3gs deadline; "
                        "abandoning this round's pool",
                        shard.name,
                        config.deadline,
                    )
                    # A hung worker must never block the fleet: leave the
                    # pool behind and let later rounds use a fresh one.
                    wait_for_pool = False
                    break
                except Exception as err:  # noqa: BLE001 - isolation boundary
                    self._record_failure(meta, shard.name, err)
                    continue
                obs_metrics.observe(
                    "fleet.shard.seconds", time.perf_counter() - began
                )
                if self._verify(delivery, meta):
                    completed.append(delivery)
        finally:
            pool.shutdown(wait=wait_for_pool, cancel_futures=True)
        return completed

    def _record_failure(
        self, meta: Dict[str, dict], name: str, err: Exception
    ) -> None:
        meta[name]["error"] = f"{type(err).__name__}: {err}"
        obs_metrics.inc("fleet.shard.failures")
        log.warning("fleet shard %s failed: %s", name, meta[name]["error"])

    def _verify(self, delivery: ShardDelivery, meta: Dict[str, dict]) -> bool:
        missing = [
            tag for tag in self.config.feed_tags if tag not in delivery.reports
        ]
        if missing:
            meta[delivery.name]["error"] = f"delivery missing feeds {missing}"
            obs_metrics.inc("fleet.shard.corrupt")
            return False
        if delivery_checksum(delivery.reports) != delivery.checksum:
            meta[delivery.name]["error"] = (
                "checksum mismatch in delivered report set"
            )
            obs_metrics.inc("fleet.shard.corrupt")
            warn_event(
                "fleet.shard.corrupt",
                f"shard {delivery.name} returned a checksum-mismatched "
                "report set; treating as failed",
                logger=log,
            )
            return False
        return True
