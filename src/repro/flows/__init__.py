"""NetFlow substrate: records, columnar logs, and border traffic generation."""

from repro.flows.chunked import ChunkedFlowLog, FlowChunkCodec
from repro.flows.generator import BorderTraffic, TrafficConfig, TrafficGenerator
from repro.flows.log import FlowBatch, FlowLog
from repro.flows.stats import (
    TrafficProfile,
    hourly_volume,
    port_histogram,
    profile_flows,
    top_talkers,
)
from repro.flows.record import (
    HEADER_BYTES_PER_PACKET,
    PAYLOAD_BEARING_MIN_BYTES,
    FlowRecord,
    Protocol,
    TCPFlags,
)

__all__ = [
    "FlowRecord",
    "FlowLog",
    "FlowBatch",
    "ChunkedFlowLog",
    "FlowChunkCodec",
    "Protocol",
    "TCPFlags",
    "HEADER_BYTES_PER_PACKET",
    "PAYLOAD_BEARING_MIN_BYTES",
    "TrafficConfig",
    "TrafficGenerator",
    "BorderTraffic",
    "TrafficProfile",
    "profile_flows",
    "top_talkers",
    "port_histogram",
    "hourly_volume",
]
