"""Out-of-core columnar flow logs: day/size-bounded chunks on disk.

A :class:`ChunkedFlowLog` holds a window of flows as an ordered sequence
of positional chunk slices, each persisted outside process memory, so
detectors can fold over windows far larger than RAM without ever
materialising the whole :class:`~repro.flows.log.FlowLog`.  Two backends
share one reader interface:

**Artifact store (npz)** — :meth:`ChunkedFlowLog.spill` writes each
chunk through the :class:`~repro.engine.store.ArtifactStore` as a
checksummed ``.npz`` entry (``<prefix>/flowchunk-<n>`` keys, the
``COLUMN_DTYPES`` schema), inheriting the store's quarantine, retry and
degradation behaviour.  Reads stream past the store's in-memory LRU
(``cache=False``) so a hundred-chunk scan keeps exactly one chunk
resident.  When the store has no usable disk layer the chunk is kept
resident in the log itself — correct, just not out-of-core.

**Memory-mapped directory (npy)** — :meth:`ChunkedFlowLog.spill_to_dir`
writes one raw ``.npy`` per column per chunk plus a JSON manifest;
:meth:`ChunkedFlowLog.open_dir` reopens them with
``np.load(mmap_mode="r")``, so chunk columns are lazily paged and a
chunk "load" allocates no array memory at all.

Chunks are **positional** slices of the source log: concatenating them
in order reproduces the original log exactly, which is what lets the
streaming detector folds (:meth:`~repro.detect.scan.ScanDetector.detect_chunked`,
:meth:`~repro.detect.trw.TRWDetector.detect_chunked`,
:meth:`~repro.detect.spam.SpamDetector.detect_chunked`) stay
bit-identical to the in-memory paths for any chunking.  ``day_bounded``
splitting additionally cuts wherever the day of ``start_time`` changes
between consecutive flows, keeping chunks aligned with the stream
layer's day batches on time-ordered logs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro import obs
from repro.engine.store import (
    MISS,
    ArtifactMissing,
    ArtifactStore,
    Codec,
    default_store,
)
from repro.flows.log import COLUMN_DTYPES, FlowLog

__all__ = [
    "ChunkedFlowLog",
    "ChunkMeta",
    "FlowChunkCodec",
    "DEFAULT_CHUNK_FLOWS",
    "fold_partials",
]

#: Default per-chunk flow bound (~9 MB of columns at 34 bytes/flow).
DEFAULT_CHUNK_FLOWS = 262_144

_DAY_SECONDS = 86_400.0

#: Key component marking flow chunks in the artifact store (``cache
#: info`` counts entries whose base name contains ``.flowchunk-``).
CHUNK_KEY_STEM = "flowchunk"

_DIR_MANIFEST = "chunked.json"


class FlowChunkCodec(Codec):
    """One flow-log chunk as an ``.npz`` artifact (``COLUMN_DTYPES``)."""

    name = "flow-chunk"

    def to_payload(self, value: FlowLog):
        arrays = {name: value.column(name) for name in COLUMN_DTYPES}
        return arrays, {"rows": len(value)}

    def from_payload(self, arrays, meta) -> FlowLog:
        return FlowLog(**{name: arrays[name] for name in COLUMN_DTYPES})


@dataclass(frozen=True)
class ChunkMeta:
    """Shape and time coverage of one chunk (loaded lazily)."""

    index: int
    rows: int
    t_min: float  # min start_time in the chunk (inf when empty)
    t_max: float  # max start_time in the chunk (-inf when empty)
    nbytes: int  # payload bytes on disk (0 when resident/unknown)

    def overlaps(self, start: Optional[float], end: Optional[float]) -> bool:
        """Whether any flow of this chunk can start within ``[start, end)``."""
        if self.rows == 0:
            return False
        if start is not None and self.t_max < start:
            return False
        if end is not None and self.t_min >= end:
            return False
        return True


def _split_points(
    start_time: np.ndarray, max_flows: int, day_bounded: bool
) -> List[int]:
    """Positional cut points (exclusive ends) for chunking a log."""
    total = int(start_time.size)
    if total == 0:
        return []
    cuts: np.ndarray
    if day_bounded and np.all(start_time[1:] >= start_time[:-1]):
        # Day cuts only make sense on a time-ordered log; on an
        # unsorted one every adjacent day flip would become a chunk
        # boundary, shattering the log into thousands of tiny pieces.
        days = (start_time // _DAY_SECONDS).astype(np.int64)
        cuts = np.flatnonzero(days[1:] != days[:-1]) + 1
    else:
        if day_bounded:
            obs.metrics.warn_event(
                "flows.chunked.unsorted",
                "day_bounded spill of a non-time-sorted log; "
                "falling back to size-bounded chunks",
            )
        cuts = np.asarray([], dtype=np.int64)
    points: List[int] = []
    previous = 0
    for cut in [*cuts.tolist(), total]:
        while cut - previous > max_flows:
            previous += max_flows
            points.append(previous)
        if cut > previous:
            points.append(cut)
            previous = cut
    return points


class ChunkedFlowLog:
    """An ordered sequence of on-disk flow-log chunks."""

    def __init__(
        self,
        metas: List[ChunkMeta],
        key_prefix: str = "",
        store: Optional[ArtifactStore] = None,
        resident: Optional[Dict[int, FlowLog]] = None,
        mmap_dir: Optional[Path] = None,
    ) -> None:
        self._metas = list(metas)
        self.key_prefix = key_prefix
        self._store = store
        self._resident = dict(resident or {})
        self._mmap_dir = Path(mmap_dir) if mmap_dir is not None else None
        self._codec = FlowChunkCodec()

    # -- writers -----------------------------------------------------------

    @classmethod
    def spill(
        cls,
        flows: FlowLog,
        key_prefix: str,
        store: Optional[ArtifactStore] = None,
        max_flows: int = DEFAULT_CHUNK_FLOWS,
        day_bounded: bool = True,
    ) -> "ChunkedFlowLog":
        """Split ``flows`` into chunks persisted through the store.

        Chunks are written with ``cache=False`` so spilling a large
        window does not pin it in the store's LRU.  A chunk whose disk
        write cannot be confirmed (memory-only or degraded store) stays
        resident in the returned log instead of silently vanishing.
        """
        return cls._spill_logs(
            cls._slices(flows, max_flows, day_bounded), key_prefix, store
        )

    @classmethod
    def spill_chunks(
        cls,
        logs: Iterable[FlowLog],
        key_prefix: str,
        store: Optional[ArtifactStore] = None,
    ) -> "ChunkedFlowLog":
        """Streaming writer: each incoming log becomes one chunk.

        This is the producer-side path — a generator can emit day spans
        one at a time and never hold more than one in memory.
        """
        return cls._spill_logs(logs, key_prefix, store)

    @classmethod
    def _spill_logs(
        cls,
        logs: Iterable[FlowLog],
        key_prefix: str,
        store: Optional[ArtifactStore],
    ) -> "ChunkedFlowLog":
        store = store if store is not None else default_store()
        codec = FlowChunkCodec()
        metas: List[ChunkMeta] = []
        resident: Dict[int, FlowLog] = {}
        with obs.instrument("flows.chunked.spill"):
            for index, chunk in enumerate(logs):
                key = cls._chunk_key(key_prefix, index)
                store.put(key, chunk, codec, cache=False)
                nbytes = 0
                if store.has_disk(key):
                    nbytes = store.disk_entry_bytes(key)
                else:
                    resident[index] = chunk
                metas.append(cls._meta_for(index, chunk, nbytes))
        obs.metrics.inc("flows.chunked.spilled_chunks", len(metas))
        return cls(metas, key_prefix=key_prefix, store=store, resident=resident)

    @classmethod
    def spill_to_dir(
        cls,
        flows: FlowLog,
        directory: Path,
        max_flows: int = DEFAULT_CHUNK_FLOWS,
        day_bounded: bool = True,
    ) -> "ChunkedFlowLog":
        """Split ``flows`` into a directory of raw ``.npy`` columns.

        The resulting log (and any later :meth:`open_dir`) reads columns
        as read-only memory maps — lazily paged, zero allocation.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        metas: List[ChunkMeta] = []
        for index, chunk in enumerate(cls._slices(flows, max_flows, day_bounded)):
            nbytes = 0
            for name in COLUMN_DTYPES:
                path = directory / cls._column_file(index, name)
                np.save(path, chunk.column(name))
                nbytes += path.stat().st_size
            metas.append(cls._meta_for(index, chunk, nbytes))
        manifest = {
            "format": 1,
            "chunks": [
                {
                    "index": m.index,
                    "rows": m.rows,
                    "t_min": m.t_min,
                    "t_max": m.t_max,
                    "nbytes": m.nbytes,
                }
                for m in metas
            ],
        }
        (directory / _DIR_MANIFEST).write_text(json.dumps(manifest, indent=2))
        return cls(metas, mmap_dir=directory)

    @classmethod
    def open_dir(cls, directory: Path) -> "ChunkedFlowLog":
        """Reopen a directory written by :meth:`spill_to_dir`."""
        directory = Path(directory)
        manifest = json.loads((directory / _DIR_MANIFEST).read_text())
        metas = [
            ChunkMeta(
                index=entry["index"],
                rows=entry["rows"],
                t_min=entry["t_min"],
                t_max=entry["t_max"],
                nbytes=entry["nbytes"],
            )
            for entry in manifest["chunks"]
        ]
        return cls(metas, mmap_dir=directory)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _chunk_key(prefix: str, index: int) -> str:
        return f"{prefix}/{CHUNK_KEY_STEM}-{index:05d}"

    @staticmethod
    def _column_file(index: int, column: str) -> str:
        return f"chunk-{index:05d}-{column}.npy"

    @staticmethod
    def _meta_for(index: int, chunk: FlowLog, nbytes: int) -> ChunkMeta:
        times = chunk.start_time
        return ChunkMeta(
            index=index,
            rows=len(chunk),
            t_min=float(times.min()) if times.size else float("inf"),
            t_max=float(times.max()) if times.size else float("-inf"),
            nbytes=nbytes,
        )

    @classmethod
    def _slices(
        cls, flows: FlowLog, max_flows: int, day_bounded: bool
    ) -> Iterator[FlowLog]:
        if max_flows < 1:
            raise ValueError("max_flows must be >= 1")
        previous = 0
        for cut in _split_points(flows.start_time, max_flows, day_bounded):
            yield cls._slice(flows, previous, cut)
            previous = cut

    @staticmethod
    def _slice(flows: FlowLog, start: int, stop: int) -> FlowLog:
        return FlowLog(
            **{
                name: flows.column(name)[start:stop]
                for name in COLUMN_DTYPES
            }
        )

    # -- readers -----------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._metas)

    @property
    def metas(self) -> Tuple[ChunkMeta, ...]:
        return tuple(self._metas)

    @property
    def nbytes(self) -> int:
        """Total persisted payload bytes across chunks."""
        return sum(m.nbytes for m in self._metas)

    def __len__(self) -> int:
        return sum(m.rows for m in self._metas)

    def chunk(self, index: int) -> FlowLog:
        """Load chunk ``index`` (one chunk resident at a time)."""
        meta = self._metas[index]
        if index in self._resident:
            return self._resident[index]
        if self._mmap_dir is not None:
            columns = {
                name: np.load(
                    self._mmap_dir / self._column_file(meta.index, name),
                    mmap_mode="r",
                )
                for name in COLUMN_DTYPES
            }
            return FlowLog(**columns)
        assert self._store is not None
        value = self._store.get(
            self._chunk_key(self.key_prefix, meta.index), self._codec, cache=False
        )
        if value is MISS:
            raise ArtifactMissing(
                f"flow chunk {meta.index} of {self.key_prefix!r} is gone "
                f"(evicted, cleared or quarantined); re-spill the window"
            )
        return value

    def iter_chunks(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> Iterator[FlowLog]:
        """Yield chunks in order, optionally windowed to ``[start, end)``.

        Chunks with no time overlap are skipped without loading;
        overlapping chunks are filtered to the window, so folding the
        yielded spans equals folding ``flows.in_time_range(start, end)``.
        """
        windowed = start is not None or end is not None
        for meta in self._metas:
            if windowed and not meta.overlaps(start, end):
                continue
            chunk = self.chunk(meta.index)
            if windowed:
                lo = start if start is not None else float("-inf")
                hi = end if end is not None else float("inf")
                chunk = chunk.in_time_range(lo, hi)
            yield chunk

    def __iter__(self) -> Iterator[FlowLog]:
        return self.iter_chunks()

    def materialize(
        self, start: Optional[float] = None, end: Optional[float] = None
    ) -> FlowLog:
        """Concatenate (a window of) the chunks back into one log.

        For equivalence tests and small windows — this is exactly the
        materialisation the chunked detector paths exist to avoid.
        """
        parts = list(self.iter_chunks(start, end))
        if not parts:
            return FlowLog.empty()
        merged = parts[0]
        for part in parts[1:]:
            merged = merged.concat(part)
        return merged

    def drop(self) -> None:
        """Delete persisted chunks (store backend only; best effort)."""
        if self._store is None:
            return
        for meta in self._metas:
            self._store.drop(self._chunk_key(self.key_prefix, meta.index))
        self._resident.clear()

    def info(self) -> dict:
        """Chunk counts/bytes — surfaced by ``uncleanliness cache info``."""
        return {
            "chunks": self.chunk_count,
            "flows": len(self),
            "bytes": self.nbytes,
            "resident_chunks": len(self._resident),
            "backend": "mmap" if self._mmap_dir is not None else "store",
        }

    def __repr__(self) -> str:
        return (
            f"ChunkedFlowLog(chunks={self.chunk_count}, flows={len(self)}, "
            f"backend={'mmap' if self._mmap_dir is not None else 'store'})"
        )


def fold_partials(parts, rows, merge_all, min_batch: int = 65_536):
    """Fold a stream of mergeable partial aggregates with bounded memory.

    Buffers incoming partials and collapses the buffer into the running
    merged state with one ``merge_all`` call whenever the buffered row
    count reaches the running state's size (a doubling schedule): the
    full state is re-sorted only O(log chunks) times instead of once per
    chunk, while peak memory stays O(state + one buffer) instead of
    accumulating every chunk's partial.  Because every detector merge is
    associative and commutative over exact columns, the grouping this
    schedule picks cannot change the result — it is bit-identical to any
    other merge order.

    ``rows(part)`` returns a partial's row count; ``merge_all(parts)``
    merges a list of partials (and must return an empty aggregate for an
    empty list).
    """
    merged = None
    buffer = []
    buffered = 0
    for part in parts:
        buffer.append(part)
        buffered += rows(part)
        threshold = max(min_batch, rows(merged) if merged is not None else 0)
        if buffered >= threshold:
            if merged is not None:
                buffer.append(merged)
            merged = merge_all(buffer)
            buffer = []
            buffered = 0
    if buffer or merged is None:
        if merged is not None:
            buffer.append(merged)
        merged = merge_all(buffer)
    return merged
