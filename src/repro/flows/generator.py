"""Border traffic generator for the observed edge network.

Produces the NetFlow log that the paper's observed reports and §6 blocking
analysis are computed from: every inbound flow crossing the observed
network's border during a window, from six traffic populations.

* **Benign clients** — external hosts using the observed network's public
  servers.  Sampled population-weighted but damped by uncleanliness
  (legitimate audiences, per the locality argument of McHugh & Gates the
  paper leans on, come disproportionately from well-run networks).
  Payload-bearing TCP.
* **Fast scanners** — tasked scanner bots sweeping the observed network:
  SYN-only bursts inside an hour, dozens-to-hundreds of targets.  The
  3-packet SYN flows carry 52 bytes/packet (options), reproducing the
  paper's "36 bytes of payload but no ACK" artifact (§6.1).
* **Slow scanners** — bots probing under 30 targets/day, below the scan
  detector's hourly calibration; the paper found exactly these in its
  unknown class (§6.2).
* **Spammers** — tasked spammer bots delivering mail to the observed
  network's MX hosts on port 25 (payload-bearing).
* **Ephemeral talkers** — bots opening ephemeral-port-to-ephemeral-port
  connections that never exchange payload; the other §6.2 unknown-class
  behaviour.
* **Background suspicious hosts** — compromised machines in unclean
  networks that none of the four feeds enumerate, probing quietly.  Real
  unclean space harbours far more suspicious hosts than any report
  catalogue; this population is why the paper's unknown class (708
  addresses) dwarfs its hostile class (287).

Participation rates for *loud* activity (sweeps, spam runs) are low by
design: a bot sprays the entire Internet, so one vantage — even a /8 —
sees only a small slice of the world's scanners and spammers in any two
weeks.  Quiet background probing, in contrast, is pervasive.

Flows are generated as numpy column chunks, one batch per *population*
(not per actor): day sampling, per-day intensities and per-flow fields
are all drawn as flat arrays over every event at once, expanded with the
segment kernels of :mod:`repro.flows.kernels`, so two-week windows with
a million flows cost a handful of array operations rather than one
Python iteration per bot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.engine.fingerprint import addendum_field
from repro.flows.kernels import sample_day_segments
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.flows.log import COLUMN_DTYPES, FlowLog
from repro.flows.record import Protocol, TCPFlags
from repro.sim.botnet import BotnetSimulation
from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import DAY_SECONDS, Window

__all__ = ["TrafficConfig", "BorderTraffic", "TrafficGenerator"]

#: Well-known destination ports benign clients use.
_SERVICE_PORTS = np.asarray([80, 443, 25, 110, 143, 53, 22], dtype=np.uint16)

#: Ports commonly swept by scanners (Windows services, DBs, remote shells).
_SCAN_PORTS = np.asarray([135, 139, 445, 80, 1433, 3306, 22, 23, 5900], dtype=np.uint16)

_EPHEMERAL_LOW = 1024

#: Flag mask of a completed, data-carrying TCP session.
_SESSION_FLAGS = TCPFlags.SYN | TCPFlags.ACK | TCPFlags.PSH | TCPFlags.FIN


@dataclass(frozen=True)
class TrafficConfig:
    """Knobs of the border traffic mix."""

    #: Public servers inside the observed network (web, mail, ...).
    num_servers: int = 40

    #: Of which, servers accepting mail (spam targets).
    num_mail_servers: int = 6

    #: Unique benign external clients appearing per day.
    benign_clients_per_day: int = 2500

    #: Mean payload-bearing flows per benign client-day.
    benign_flows_mean: float = 4.0

    #: How strongly uncleanliness suppresses a network's benign audience
    #: (0 = none, 1 = fully suppressed at uncleanliness 1).
    benign_uncleanliness_damping: float = 0.9

    #: Day-to-day audience reuse: fraction of each day's clients drawn
    #: from the prior day's client pool (locality).
    audience_locality: float = 0.5

    #: Fraction of window-active scanner bots whose sweep reaches the
    #: observed network during the window.
    scan_participation: float = 0.17

    #: Mean sweep days per participating scanner.
    scan_days_mean: float = 2.5

    #: Distinct targets per sweep-day: lognormal(median, sigma).
    scan_targets_median: float = 60.0
    scan_targets_sigma: float = 0.8

    #: Fraction of window-active spammer bots that spam the observed MXes.
    spam_participation: float = 0.365

    #: Mean spam days per participating spammer, and messages per day.
    spam_days_mean: float = 2.0
    spam_flows_mean: float = 15.0

    #: Fraction of window-active bots that slow-scan us (escaping detection).
    slow_scanner_fraction: float = 0.30

    #: Targets per slow-scanner day (must stay under the detector floor).
    slow_scan_targets_mean: float = 8.0

    #: Mean active probing days per slow scanner during the window.
    slow_scan_days_mean: float = 4.0

    #: Fraction of window-active bots doing ephemeral-to-ephemeral probing.
    ephemeral_fraction: float = 0.25

    #: Compromised-but-uncatalogued hosts probing during the window; drawn
    #: from the same unclean-weighted distribution as bot placement.
    suspicious_hosts: int = 12_000

    #: C&C channels whose rendezvous point has been sinkholed INTO the
    #: observed network (so member bots phone home across the border and
    #: become directly observable; see repro.detect.cnc).  Empty by
    #: default: the paper's Table 1/2 feeds do not include a sinkhole.
    sinkholed_channels: tuple = ()

    #: Mean phone-home days per sinkholed bot during the window, and
    #: rendezvous attempts per day.
    cnc_days_mean: float = 6.0
    cnc_contacts_per_day: float = 4.0

    #: Diurnal modulation (Chen et al.'s spatiotemporal attack cycles):
    #: intra-day flow times concentrate around ``diurnal_peak_hour``
    #: with density proportional to ``1 + amplitude * cos(...)``.  0.0
    #: keeps the paper's uniform intra-day times.  Both fields are
    #: fingerprint addenda (omitted at default).
    diurnal_amplitude: float = addendum_field(default=0.0)
    diurnal_peak_hour: float = addendum_field(default=14.0)

    def validate(self) -> None:
        if self.num_servers <= 0:
            raise ValueError("num_servers must be positive")
        if self.num_mail_servers <= 0 or self.num_mail_servers > self.num_servers:
            raise ValueError("num_mail_servers must be in [1, num_servers]")
        if self.suspicious_hosts < 0:
            raise ValueError("suspicious_hosts must be non-negative")
        for name in (
            "scan_participation",
            "spam_participation",
            "slow_scanner_fraction",
            "ephemeral_fraction",
            "benign_uncleanliness_damping",
            "audience_locality",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if not 0 <= self.diurnal_peak_hour < 24:
            raise ValueError("diurnal_peak_hour must be in [0, 24)")


@dataclass
class BorderTraffic:
    """A generated border capture plus per-population ground truth."""

    window: Window
    flows: FlowLog
    #: Ground-truth unique source addresses per traffic population.
    populations: Dict[str, np.ndarray]

    def ground_truth(self, name: str) -> np.ndarray:
        """Unique sources of one population (e.g. ``"fast_scanners"``)."""
        return self.populations[name]


class _Chunks:
    """Accumulates flow column chunks and broadcasts scalars."""

    _NAMES = (
        "src_addr", "dst_addr", "src_port", "dst_port", "protocol",
        "packets", "octets", "tcp_flags", "start_time", "end_time",
    )

    def __init__(self) -> None:
        self.parts: Dict[str, List[np.ndarray]] = {n: [] for n in self._NAMES}

    def extend(self, **columns) -> None:
        size = None
        for value in columns.values():
            if isinstance(value, np.ndarray):
                size = value.size
                break
        if size is None:
            raise ValueError("at least one column must be an array")
        if size == 0:
            return
        for name in self._NAMES:
            value = columns[name]
            if not isinstance(value, np.ndarray):
                value = np.full(size, value)
            elif value.size != size:
                raise ValueError(f"column {name} has mismatched length")
            self.parts[name].append(value)

    def to_log(self) -> FlowLog:
        merged = {}
        for name, chunks in self.parts.items():
            # Coerce every chunk to the FlowLog schema dtype up front: an
            # all-quiet window would otherwise contribute float64
            # np.asarray([]) columns, and mixed-width chunks would upcast
            # during concatenation.
            dtype = COLUMN_DTYPES[name]
            if chunks:
                merged[name] = np.concatenate(
                    [np.asarray(chunk, dtype=dtype) for chunk in chunks]
                )
            else:
                merged[name] = np.asarray([], dtype=dtype)
        return FlowLog(**merged)


class TrafficGenerator:
    """Generates :class:`BorderTraffic` for a window, given the actors."""

    def __init__(
        self,
        internet: SyntheticInternet,
        botnet: BotnetSimulation,
        config: Optional[TrafficConfig] = None,
    ) -> None:
        self.internet = internet
        self.botnet = botnet
        self.config = config or TrafficConfig()
        self.config.validate()

    # -- observed-network address helpers ---------------------------------

    def server_addresses(self) -> np.ndarray:
        """Deterministic public server addresses inside the observed /8."""
        base = self.internet.observed_network.first_address
        # Servers sit in the observed network's first /24s, one per /24.
        return base + (np.arange(self.config.num_servers, dtype=np.uint32) << 8) + 10

    def mail_server_addresses(self) -> np.ndarray:
        return self.server_addresses()[: self.config.num_mail_servers]

    def _random_observed_addresses(
        self, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Random target addresses inside the observed network."""
        block = self.internet.observed_network
        span = block.num_addresses
        return block.first_address + rng.integers(0, span, size=count, dtype=np.uint32)

    # -- diurnal timing ----------------------------------------------------

    def _intra_day(self, total: int, rng: np.random.Generator) -> np.ndarray:
        """Second-of-day offsets for ``total`` flows.

        With ``diurnal_amplitude`` 0 this is exactly the historical
        ``rng.random(total) * DAY_SECONDS`` draw (bit-identity of the
        default world); otherwise the same uniform draw is warped by a
        monotone map whose image density is proportional to
        ``1 / (1 - a*cos(omega*(t - peak)))`` — flows bunch around the
        configured peak hour without consuming any extra randomness.
        """
        cfg = self.config
        offsets = rng.random(total) * DAY_SECONDS
        if cfg.diurnal_amplitude > 0:
            omega = 2.0 * np.pi / DAY_SECONDS
            peak = cfg.diurnal_peak_hour * 3600.0
            offsets = (
                offsets
                - (cfg.diurnal_amplitude / omega)
                * np.sin(omega * (offsets - peak))
            ) % DAY_SECONDS
        return offsets

    def _scan_hours(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sweep start hours; diurnally weighted when modulation is on."""
        cfg = self.config
        if cfg.diurnal_amplitude <= 0:
            return rng.integers(0, 23, size=count)
        hours = np.arange(24, dtype=np.float64) + 0.5
        weights = 1.0 + cfg.diurnal_amplitude * np.cos(
            2.0 * np.pi * (hours - cfg.diurnal_peak_hour) / 24.0
        )
        return rng.choice(24, size=count, p=weights / weights.sum())

    # -- generation --------------------------------------------------------

    def generate(self, window: Window, rng: np.random.Generator) -> BorderTraffic:
        """Generate the full border capture for ``window``."""
        started = time.perf_counter()
        chunks = _Chunks()
        populations: Dict[str, np.ndarray] = {}

        with obs_trace.span("flows.generate", days=window.num_days):
            with obs_trace.span("flows.population.benign"):
                populations["benign"] = self._benign(window, rng, chunks)

            event_idx = self.botnet.event_indices(window)
            roles = self._assign_bot_roles(event_idx, rng)
            with obs_trace.span("flows.population.fast_scanners"):
                populations["fast_scanners"] = self._fast_scans(
                    window, rng, chunks, roles["fast"]
                )
            with obs_trace.span("flows.population.spammers"):
                populations["spammers"] = self._spam(window, rng, chunks, roles["spam"])
            with obs_trace.span("flows.population.slow_scanners"):
                populations["slow_scanners"] = self._slow_scans(
                    window,
                    rng,
                    chunks,
                    self.botnet.address[roles["slow"]],
                    clip_events=roles["slow"],
                )
            with obs_trace.span("flows.population.ephemeral"):
                populations["ephemeral"] = self._ephemeral(
                    window,
                    rng,
                    chunks,
                    self.botnet.address[roles["ephemeral"]],
                    clip_events=roles["ephemeral"],
                )
            with obs_trace.span("flows.population.suspicious"):
                populations["suspicious"] = self._suspicious(window, rng, chunks)
            with obs_trace.span("flows.population.cnc"):
                populations["cnc"] = self._cnc_rendezvous(window, rng, chunks, event_idx)

            with obs_trace.span("flows.to_log"):
                log = chunks.to_log()

        elapsed = time.perf_counter() - started
        obs_metrics.inc("flows.generated", len(log))
        if elapsed > 0:
            obs_metrics.set_gauge("flows.per_sec", len(log) / elapsed)
        obs_metrics.observe("flows.generate.seconds", elapsed)
        return BorderTraffic(window=window, flows=log, populations=populations)

    # -- bot role assignment ---------------------------------------------------

    def _assign_bot_roles(
        self, event_idx: np.ndarray, rng: np.random.Generator
    ) -> Dict[str, np.ndarray]:
        """Decide, per window-active bot event, its behaviour toward us.

        Roles are not exclusive except that fast and slow scanning don't
        co-occur (a bot either sweeps us or probes quietly).
        """
        cfg = self.config
        count = event_idx.size
        scanner = self.botnet.is_scanner[event_idx]
        spammer = self.botnet.is_spammer[event_idx]

        fast = scanner & (rng.random(count) < cfg.scan_participation)
        slow = (~fast) & (rng.random(count) < cfg.slow_scanner_fraction)
        spam = spammer & (rng.random(count) < cfg.spam_participation)
        ephemeral = rng.random(count) < cfg.ephemeral_fraction
        return {
            "fast": event_idx[fast],
            "slow": event_idx[slow],
            "spam": event_idx[spam],
            "ephemeral": event_idx[ephemeral],
        }

    def _event_days(
        self,
        window: Window,
        day_count_mean: float,
        rng: np.random.Generator,
        events: Optional[np.ndarray] = None,
        count: Optional[int] = None,
    ) -> tuple:
        """Batched active-day sampling for a whole population at once.

        Draws each actor's action-day count (Poisson with the given
        mean, at least 1), intersects the window with the actor's
        compromise interval when ``events`` is given, and samples that
        many distinct days per actor in one kernel call.  Returns
        ``(owners, days)``: flat arrays where ``owners`` indexes into
        the population (``events`` or ``range(count)``); actors whose
        window∩interval is empty contribute nothing.
        """
        size = events.size if events is not None else int(count)
        counts = np.maximum(1, rng.poisson(day_count_mean, size=size))
        lo = np.full(size, window.start_day, dtype=np.int64)
        hi = np.full(size, window.end_day, dtype=np.int64)
        if events is not None:
            lo = np.maximum(lo, self.botnet.start_day[events])
            hi = np.minimum(hi, self.botnet.end_day[events])
        return sample_day_segments(lo, hi, counts, rng)

    # -- benign traffic ------------------------------------------------------------

    def _benign(
        self, window: Window, rng: np.random.Generator, chunks: _Chunks
    ) -> np.ndarray:
        cfg = self.config
        servers = self.server_addresses()
        damping = 1.0 - cfg.benign_uncleanliness_damping * self.internet.uncleanliness
        weights = self.internet.population.astype(np.float64) * damping

        all_clients: List[np.ndarray] = []
        previous = np.asarray([], dtype=np.uint32)
        for day in window.days():
            reuse = int(cfg.audience_locality * min(previous.size, cfg.benign_clients_per_day))
            fresh = cfg.benign_clients_per_day - reuse
            todays = [self.internet.sample_hosts(fresh, rng, weights)] if fresh else []
            if reuse:
                todays.append(rng.choice(previous, size=reuse, replace=False))
            if not todays:  # an all-quiet capture: no benign audience at all
                previous = np.asarray([], dtype=np.uint32)
                continue
            clients = np.unique(np.concatenate(todays))
            all_clients.append(clients)
            previous = clients

            flows_per_client = rng.poisson(cfg.benign_flows_mean, size=clients.size) + 1
            total = int(flows_per_client.sum())
            src = np.repeat(clients, flows_per_client)
            packets = rng.integers(8, 60, size=total, dtype=np.uint32)
            payload = rng.integers(200, 20_000, size=total, dtype=np.uint64)
            start = day * DAY_SECONDS + self._intra_day(total, rng)
            chunks.extend(
                src_addr=src,
                dst_addr=rng.choice(servers, size=total),
                src_port=rng.integers(_EPHEMERAL_LOW, 65536, size=total, dtype=np.uint16),
                dst_port=rng.choice(_SERVICE_PORTS, size=total),
                protocol=Protocol.TCP,
                packets=packets,
                octets=payload + 40 * packets.astype(np.uint64),
                tcp_flags=_SESSION_FLAGS,
                start_time=start,
                end_time=start + rng.random(total) * 120,
            )
        if not all_clients:
            return np.asarray([], dtype=np.uint32)
        return np.unique(np.concatenate(all_clients))

    # -- hostile traffic --------------------------------------------------------------

    def _fast_scans(
        self,
        window: Window,
        rng: np.random.Generator,
        chunks: _Chunks,
        events: np.ndarray,
    ) -> np.ndarray:
        """SYN sweeps: many targets inside one hour (what the detector sees)."""
        cfg = self.config
        owners, days = self._event_days(window, cfg.scan_days_mean, rng, events=events)
        if days.size == 0:
            return np.asarray([], dtype=np.uint32)
        addresses = self.botnet.address[events[owners]].astype(np.uint32)
        targets_per_day = np.clip(
            rng.lognormal(
                np.log(cfg.scan_targets_median), cfg.scan_targets_sigma, size=days.size
            ).astype(np.int64),
            31,
            2000,
        )
        total = int(targets_per_day.sum())
        hour_starts = (
            days * DAY_SECONDS + self._scan_hours(days.size, rng) * 3600
        ).astype(np.float64)
        start = np.repeat(hour_starts, targets_per_day) + rng.random(total) * 3000
        chunks.extend(
            src_addr=np.repeat(addresses, targets_per_day),
            dst_addr=self._random_observed_addresses(total, rng),
            src_port=rng.integers(_EPHEMERAL_LOW, 65536, size=total, dtype=np.uint16),
            dst_port=np.repeat(rng.choice(_SCAN_PORTS, size=days.size), targets_per_day),
            protocol=Protocol.TCP,
            packets=3,
            octets=156,  # 3 x 52B SYNs: "36 bytes of payload", no ACK
            tcp_flags=TCPFlags.SYN,
            start_time=start,
            end_time=start + 10.0,
        )
        return np.unique(addresses)

    def _quiet_probes(
        self,
        window: Window,
        rng: np.random.Generator,
        chunks: _Chunks,
        addresses: np.ndarray,
        days_mean: float,
        targets_mean: float,
        ephemeral_ports: bool,
        clip_events: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Shared machinery of the three quiet populations.

        Each source probes a handful of targets on a few days.  With
        ``ephemeral_ports`` the destination ports are ephemeral (the
        paper's ephemeral-to-ephemeral oddity, ACK but no payload);
        otherwise they are service ports hit SYN-only, under 30 targets a
        day (slow scanning).
        """
        addresses = np.asarray(addresses, dtype=np.uint32)
        owners, days = self._event_days(
            window, days_mean, rng, events=clip_events, count=addresses.size
        )
        if days.size == 0:
            return np.asarray([], dtype=np.uint32)
        sources = addresses[owners]
        per_day = np.clip(
            rng.poisson(targets_mean, size=days.size), 1, 29
        ).astype(np.int64)
        total = int(per_day.sum())
        start = (
            np.repeat(days * DAY_SECONDS, per_day).astype(np.float64)
            + self._intra_day(total, rng)
        )
        if ephemeral_ports:
            dst_port = rng.integers(_EPHEMERAL_LOW, 65536, size=total, dtype=np.uint16)
            packets = rng.integers(1, 4, size=total, dtype=np.uint32)
            octets = packets.astype(np.uint64) * 40  # headers only
            flags = TCPFlags.SYN | TCPFlags.ACK
        else:
            dst_port = np.repeat(rng.choice(_SCAN_PORTS, size=days.size), per_day)
            packets = np.full(total, 3, dtype=np.uint32)
            octets = np.full(total, 156, dtype=np.uint64)
            flags = TCPFlags.SYN
        chunks.extend(
            src_addr=np.repeat(sources, per_day),
            dst_addr=self._random_observed_addresses(total, rng),
            src_port=rng.integers(_EPHEMERAL_LOW, 65536, size=total, dtype=np.uint16),
            dst_port=dst_port,
            protocol=Protocol.TCP,
            packets=packets,
            octets=octets,
            tcp_flags=flags,
            start_time=start,
            end_time=start + 10.0,
        )
        return np.unique(sources)

    def _slow_scans(
        self,
        window: Window,
        rng: np.random.Generator,
        chunks: _Chunks,
        addresses: np.ndarray,
        clip_events: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Low-and-slow probing: under 30 targets/day, spread over the day."""
        cfg = self.config
        return self._quiet_probes(
            window,
            rng,
            chunks,
            addresses,
            days_mean=cfg.slow_scan_days_mean,
            targets_mean=cfg.slow_scan_targets_mean,
            ephemeral_ports=False,
            clip_events=clip_events,
        )

    def _ephemeral(
        self,
        window: Window,
        rng: np.random.Generator,
        chunks: _Chunks,
        addresses: np.ndarray,
        clip_events: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Ephemeral-to-ephemeral connection attempts with no payload."""
        return self._quiet_probes(
            window,
            rng,
            chunks,
            addresses,
            days_mean=2.0,
            targets_mean=5.0,
            ephemeral_ports=True,
            clip_events=clip_events,
        )

    def _spam(
        self,
        window: Window,
        rng: np.random.Generator,
        chunks: _Chunks,
        events: np.ndarray,
    ) -> np.ndarray:
        """Spam runs to the observed MX hosts (payload-bearing port 25)."""
        cfg = self.config
        mail = self.mail_server_addresses()
        owners, days = self._event_days(window, cfg.spam_days_mean, rng, events=events)
        if days.size == 0:
            return np.asarray([], dtype=np.uint32)
        sources = self.botnet.address[events[owners]].astype(np.uint32)
        per_day = np.maximum(5, rng.poisson(cfg.spam_flows_mean, size=days.size))
        total = int(per_day.sum())
        packets = rng.integers(6, 20, size=total, dtype=np.uint32)
        payload = rng.integers(400, 4000, size=total, dtype=np.uint64)
        start = (
            np.repeat(days * DAY_SECONDS, per_day).astype(np.float64)
            + self._intra_day(total, rng)
        )
        chunks.extend(
            src_addr=np.repeat(sources, per_day),
            dst_addr=rng.choice(mail, size=total),
            src_port=rng.integers(_EPHEMERAL_LOW, 65536, size=total, dtype=np.uint16),
            dst_port=25,
            protocol=Protocol.TCP,
            packets=packets,
            octets=payload + 40 * packets.astype(np.uint64),
            tcp_flags=_SESSION_FLAGS,
            start_time=start,
            end_time=start + 30.0,
        )
        return np.unique(sources)

    def sinkhole_addresses(self) -> np.ndarray:
        """Sinkhole address per sinkholed channel (inside the observed /8).

        Sinkholes live in a dedicated /24 range above the public servers,
        one address per seized channel, in channel order.
        """
        channels = self.config.sinkholed_channels
        base = self.internet.observed_network.first_address
        return base + ((np.uint32(200) + np.arange(len(channels), dtype=np.uint32)) << 8) + 10

    def sinkhole_of_channel(self, channel: int) -> int:
        """The sinkhole address capturing one channel's rendezvous."""
        channels = self.config.sinkholed_channels
        try:
            position = channels.index(channel)
        except ValueError:
            raise ValueError(f"channel {channel} is not sinkholed") from None
        return int(self.sinkhole_addresses()[position])

    def _cnc_rendezvous(
        self,
        window: Window,
        rng: np.random.Generator,
        chunks: _Chunks,
        event_idx: np.ndarray,
    ) -> np.ndarray:
        """Phone-home traffic from bots whose C&C has been sinkholed.

        IRC rendezvous: a handful of small payload-carrying TCP flows per
        day to the channel's sinkhole on port 6667.
        """
        cfg = self.config
        if not cfg.sinkholed_channels:
            return np.asarray([], dtype=np.uint32)
        channels = np.asarray(cfg.sinkholed_channels, dtype=np.int64)
        events = event_idx[np.isin(self.botnet.channel[event_idx], channels)]
        owners, days = self._event_days(window, cfg.cnc_days_mean, rng, events=events)
        if days.size == 0:
            return np.asarray([], dtype=np.uint32)
        sources = self.botnet.address[events[owners]].astype(np.uint32)
        # Channel -> sinkhole address, looked up per active bot-day.
        channel_order = np.argsort(channels)
        positions = channel_order[
            np.searchsorted(channels[channel_order], self.botnet.channel[events[owners]])
        ]
        sinkholes = self.sinkhole_addresses()[positions]
        per_day = np.maximum(
            1, rng.poisson(cfg.cnc_contacts_per_day, size=days.size)
        )
        total = int(per_day.sum())
        packets = rng.integers(3, 9, size=total, dtype=np.uint32)
        payload = rng.integers(80, 900, size=total, dtype=np.uint64)
        start = (
            np.repeat(days * DAY_SECONDS, per_day).astype(np.float64)
            + self._intra_day(total, rng)
        )
        chunks.extend(
            src_addr=np.repeat(sources, per_day),
            dst_addr=np.repeat(sinkholes, per_day),
            src_port=rng.integers(_EPHEMERAL_LOW, 65536, size=total, dtype=np.uint16),
            dst_port=6667,
            protocol=Protocol.TCP,
            packets=packets,
            octets=payload + 40 * packets.astype(np.uint64),
            tcp_flags=_SESSION_FLAGS,
            start_time=start,
            end_time=start + 60.0,
        )
        return np.unique(sources)

    def _suspicious(
        self, window: Window, rng: np.random.Generator, chunks: _Chunks
    ) -> np.ndarray:
        """Uncatalogued compromised hosts probing from unclean space.

        Half slow-scan, half do ephemeral probing; none appear in any
        report, which is what feeds the §6 unknown class.
        """
        count = self.config.suspicious_hosts
        if count == 0:
            return np.asarray([], dtype=np.uint32)
        hosts = np.unique(
            self.internet.sample_hosts(
                count, rng, self.internet.compromise_weights()
            )
        )
        half = hosts.size // 2
        shuffled = rng.permutation(hosts)
        slow = self._slow_scans(window, rng, chunks, shuffled[:half])
        ephemeral = self._ephemeral(window, rng, chunks, shuffled[half:])
        return np.union1d(slow, ephemeral)
