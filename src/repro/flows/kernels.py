"""Columnar kernels shared by the traffic generator and the detectors.

The flow-generation and detection hot paths operate on *segments*: a
flat array carrying many variable-length groups back to back (one group
per bot event, per source address, per day).  These helpers implement
the segment primitives those paths need without any per-group Python
loop:

* :func:`repeat_offsets` / :func:`segment_positions` — the
  ``np.cumsum``-offset bookkeeping behind every ``np.repeat`` expansion;
* :func:`sample_day_segments` — draw ``k_i`` *distinct* days uniformly
  from each event's ``[lo_i, hi_i]`` day range, for all events at once
  (the batched replacement for per-event
  ``rng.choice(days, replace=False)``);
* :func:`grouped_cumsum` — per-segment cumulative sums over a
  segment-sorted array (exact for integer inputs);
* :func:`segment_first_true` — each segment's first ``True`` position,
  which is how the TRW detector finds every source's first threshold
  crossing;
* :func:`pack64` / :func:`segment_bounds` / :func:`grouped_sum` — the
  packed-key grouping trio behind the columnar scan detector: two
  32-bit-ranged columns packed into one ``uint64`` sort key, run
  boundaries of the sorted keys, and exact per-run sums via
  ``np.add.reduceat``.

All kernels are deterministic given the RNG: each draws a fixed number
of variates that depends only on the input shapes.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

__all__ = [
    "repeat_offsets",
    "segment_ids",
    "segment_positions",
    "sample_day_segments",
    "grouped_cumsum",
    "segment_first_true",
    "pack64",
    "segment_bounds",
    "grouped_sum",
]


def repeat_offsets(counts: np.ndarray) -> np.ndarray:
    """Exclusive prefix sums of ``counts``: element ``i`` is where segment
    ``i`` starts in the flattened array (length ``n + 1``; the last entry
    is the total)."""
    counts = np.asarray(counts, dtype=np.int64)
    offsets = np.zeros(counts.size + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return offsets


def segment_ids(counts: np.ndarray) -> np.ndarray:
    """Owner index of every element of the flattened segments
    (``[0, 0, 1, 1, 1, ...]`` for counts ``[2, 3, ...]``)."""
    counts = np.asarray(counts, dtype=np.int64)
    return np.repeat(np.arange(counts.size, dtype=np.int64), counts)


def segment_positions(counts: np.ndarray) -> np.ndarray:
    """Position of every element *within its own segment*
    (``[0, 1, 0, 1, 2, ...]`` for counts ``[2, 3, ...]``)."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    starts = repeat_offsets(counts)[:-1]
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)


def sample_day_segments(
    lo: np.ndarray,
    hi: np.ndarray,
    counts: np.ndarray,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sample distinct days from many inclusive ranges at once.

    For every event ``i`` with day range ``[lo_i, hi_i]`` (empty when
    ``hi_i < lo_i``), draws ``min(counts_i, hi_i - lo_i + 1)`` *distinct*
    days uniformly without replacement.  Returns ``(owners, days)``
    flat arrays: ``days[j]`` is one sampled day belonging to event
    ``owners[j]``; events whose range is empty (or whose count is zero)
    simply contribute nothing.

    This is the batched form of the per-event
    ``rng.choice(np.arange(lo, hi + 1), size=k, replace=False)`` loop:
    every candidate day of every event gets one uniform sort key, and
    each event keeps its ``k_i`` smallest keys.  One ``rng.random`` call
    replaces the per-event draws, so cost is O(total days) regardless of
    how many events there are.
    """
    lo = np.asarray(lo, dtype=np.int64)
    hi = np.asarray(hi, dtype=np.int64)
    counts = np.asarray(counts, dtype=np.int64)
    if not (lo.size == hi.size == counts.size):
        raise ValueError("lo, hi and counts must have equal length")

    lengths = np.maximum(hi - lo + 1, 0)
    want = np.clip(counts, 0, lengths)
    total = int(lengths.sum())
    if total == 0:
        empty = np.asarray([], dtype=np.int64)
        return empty, empty

    owners = np.repeat(np.arange(lo.size, dtype=np.int64), lengths)
    offsets = repeat_offsets(lengths)[:-1]
    positions = np.arange(total, dtype=np.int64) - np.repeat(offsets, lengths)
    candidate_days = np.repeat(lo, lengths) + positions

    # One key per candidate day; a stable sort keyed on (owner, key)
    # keeps segments contiguous while shuffling within each, so the
    # first k_i slots of each segment are a uniform k_i-subset.
    keys = rng.random(total)
    order = np.lexsort((keys, owners))
    keep = positions < np.repeat(want, lengths)
    return owners[keep], candidate_days[order][keep]


def pack64(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """Pack two 32-bit-ranged columns into one ``uint64`` sort key.

    Sorting the packed key is exactly the lexicographic sort on
    ``(hi, lo)``, so one ``np.sort``/``np.lexsort`` pass replaces a
    row-table ``np.unique(axis=0)``.  Both inputs must already lie in
    ``[0, 2**32)``; values outside that range would alias other keys,
    so they raise.
    """
    hi = np.asarray(hi)
    lo = np.asarray(lo)
    if hi.size and (hi.min() < 0 or hi.max() >> 32):
        raise ValueError("pack64 hi column out of uint32 range")
    if lo.size and (lo.min() < 0 or lo.max() >> 32):
        raise ValueError("pack64 lo column out of uint32 range")
    return (hi.astype(np.uint64) << np.uint64(32)) | lo.astype(np.uint64)


def segment_bounds(sorted_keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Run boundaries of a key-sorted array: ``(starts, counts)``.

    ``starts[i]`` is the first position of run ``i`` of equal keys and
    ``counts[i]`` its length — the ``return_index``/``return_counts``
    outputs of ``np.unique`` without re-sorting an already sorted array.
    """
    keys = np.asarray(sorted_keys)
    if keys.size == 0:
        empty = np.asarray([], dtype=np.int64)
        return empty, empty
    boundary = np.empty(keys.size, dtype=bool)
    boundary[0] = True
    np.not_equal(keys[1:], keys[:-1], out=boundary[1:])
    starts = np.flatnonzero(boundary)
    counts = np.diff(np.append(starts, keys.size))
    return starts, counts


def grouped_sum(values: np.ndarray, starts: np.ndarray) -> np.ndarray:
    """Exact per-segment sums of a segment-contiguous array.

    ``starts`` are segment start positions (as from
    :func:`segment_bounds`); integer inputs stay integer, and boolean
    masks count as ``int64`` (``np.add.reduceat`` would OR them).
    """
    values = np.asarray(values)
    if values.dtype == bool:
        values = values.astype(np.int64)
    if starts.size == 0:
        return np.zeros(0, dtype=values.dtype)
    return np.add.reduceat(values, starts)


def grouped_cumsum(
    values: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """Per-segment cumulative sums of a segment-contiguous array.

    ``starts``/``counts`` describe back-to-back segments (as returned by
    ``np.unique(..., return_index=True, return_counts=True)`` on the
    sorted segment keys).  Integer inputs stay exact: the global-cumsum
    rebase below is pure integer arithmetic for them.
    """
    if values.size == 0:
        return values.copy()
    running = np.cumsum(values)
    base = running[starts] - values[starts]
    return running - np.repeat(base, counts)


def segment_first_true(
    mask: np.ndarray, starts: np.ndarray, counts: np.ndarray
) -> np.ndarray:
    """First ``True`` position within each segment, or ``counts_i`` when
    the segment has none (positions are segment-relative)."""
    counts = np.asarray(counts, dtype=np.int64)
    if mask.size == 0:
        return np.zeros(counts.size, dtype=np.int64)
    positions = np.arange(mask.size, dtype=np.int64) - np.repeat(starts, counts)
    sentinel = np.where(mask, positions, mask.size)
    return np.minimum(np.minimum.reduceat(sentinel, starts), counts)
