"""Columnar flow log storage and queries.

A :class:`FlowLog` holds many flows as parallel numpy arrays, which keeps
two-week border captures (hundreds of thousands of flows at reproduction
scale) cheap to filter and aggregate.  Scalar access returns
:class:`~repro.flows.record.FlowRecord` views.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

import numpy as np

from repro.flows.record import (
    HEADER_BYTES_PER_PACKET,
    PAYLOAD_BEARING_MIN_BYTES,
    FlowRecord,
    Protocol,
    TCPFlags,
)

__all__ = ["FlowLog", "FlowBatch", "COLUMN_DTYPES"]

_COLUMNS = (
    ("src_addr", np.uint32),
    ("dst_addr", np.uint32),
    ("src_port", np.uint16),
    ("dst_port", np.uint16),
    ("protocol", np.uint8),
    ("packets", np.uint32),
    ("octets", np.uint64),
    ("tcp_flags", np.uint8),
    ("start_time", np.float64),
    ("end_time", np.float64),
)

#: Public column-name -> dtype table (the schema of a :class:`FlowLog`).
COLUMN_DTYPES = dict(_COLUMNS)


class FlowBatch:
    """A mutable accumulator of flow columns, built list-at-a-time.

    Generators append into python lists (cheap), then
    :meth:`FlowLog.from_batches` consolidates into numpy arrays once.
    """

    def __init__(self) -> None:
        self.columns: Dict[str, List] = {name: [] for name, _ in _COLUMNS}

    def add(
        self,
        src_addr: int,
        dst_addr: int,
        src_port: int,
        dst_port: int,
        protocol: int,
        packets: int,
        octets: int,
        tcp_flags: int,
        start_time: float,
        end_time: Optional[float] = None,
    ) -> None:
        """Append one flow."""
        cols = self.columns
        cols["src_addr"].append(src_addr)
        cols["dst_addr"].append(dst_addr)
        cols["src_port"].append(src_port)
        cols["dst_port"].append(dst_port)
        cols["protocol"].append(protocol)
        cols["packets"].append(packets)
        cols["octets"].append(octets)
        cols["tcp_flags"].append(tcp_flags)
        cols["start_time"].append(start_time)
        cols["end_time"].append(start_time if end_time is None else end_time)

    def __len__(self) -> int:
        return len(self.columns["src_addr"])


class FlowLog:
    """An immutable columnar collection of flow records."""

    def __init__(self, **columns: np.ndarray) -> None:
        sizes = set()
        self._columns: Dict[str, np.ndarray] = {}
        for name, dtype in _COLUMNS:
            if name not in columns:
                raise ValueError(f"missing flow column: {name}")
            arr = np.asarray(columns[name], dtype=dtype)
            arr.setflags(write=False)
            self._columns[name] = arr
            sizes.add(arr.size)
        if len(sizes) > 1:
            raise ValueError(f"flow columns have mismatched lengths: {sizes}")

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "FlowLog":
        return cls(**{name: np.asarray([], dtype=dtype) for name, dtype in _COLUMNS})

    @classmethod
    def from_batches(cls, batches: Iterable[FlowBatch]) -> "FlowLog":
        """Consolidate accumulated batches into one log."""
        batches = list(batches)
        merged = {}
        for name, dtype in _COLUMNS:
            parts = [np.asarray(b.columns[name], dtype=dtype) for b in batches]
            merged[name] = np.concatenate(parts) if parts else np.asarray([], dtype=dtype)
        return cls(**merged)

    @classmethod
    def from_records(cls, records: Iterable[FlowRecord]) -> "FlowLog":
        batch = FlowBatch()
        for r in records:
            batch.add(
                r.src_addr, r.dst_addr, r.src_port, r.dst_port, r.protocol,
                r.packets, r.octets, r.tcp_flags, r.start_time, r.end_time,
            )
        return cls.from_batches([batch])

    def concat(self, other: "FlowLog") -> "FlowLog":
        return FlowLog(
            **{
                name: np.concatenate([self._columns[name], other._columns[name]])
                for name, _ in _COLUMNS
            }
        )

    # -- column access ------------------------------------------------------

    def column(self, name: str) -> np.ndarray:
        return self._columns[name]

    @property
    def src_addr(self) -> np.ndarray:
        return self._columns["src_addr"]

    @property
    def dst_addr(self) -> np.ndarray:
        return self._columns["dst_addr"]

    @property
    def src_port(self) -> np.ndarray:
        return self._columns["src_port"]

    @property
    def dst_port(self) -> np.ndarray:
        return self._columns["dst_port"]

    @property
    def protocol(self) -> np.ndarray:
        return self._columns["protocol"]

    @property
    def packets(self) -> np.ndarray:
        return self._columns["packets"]

    @property
    def octets(self) -> np.ndarray:
        return self._columns["octets"]

    @property
    def tcp_flags(self) -> np.ndarray:
        return self._columns["tcp_flags"]

    @property
    def start_time(self) -> np.ndarray:
        return self._columns["start_time"]

    @property
    def end_time(self) -> np.ndarray:
        return self._columns["end_time"]

    def __len__(self) -> int:
        return int(self.src_addr.size)

    def record(self, index: int) -> FlowRecord:
        """Scalar view of one flow."""
        c = self._columns
        return FlowRecord(
            src_addr=int(c["src_addr"][index]),
            dst_addr=int(c["dst_addr"][index]),
            src_port=int(c["src_port"][index]),
            dst_port=int(c["dst_port"][index]),
            protocol=int(c["protocol"][index]),
            packets=int(c["packets"][index]),
            octets=int(c["octets"][index]),
            tcp_flags=int(c["tcp_flags"][index]),
            start_time=float(c["start_time"][index]),
            end_time=float(c["end_time"][index]),
        )

    def __iter__(self) -> Iterator[FlowRecord]:
        return (self.record(i) for i in range(len(self)))

    # -- derived columns ----------------------------------------------------

    def payload_bytes(self) -> np.ndarray:
        """Estimated payload per flow (bytes beyond 40/packet, >= 0)."""
        raw = self.octets.astype(np.int64) - HEADER_BYTES_PER_PACKET * self.packets.astype(
            np.int64
        )
        return np.maximum(raw, 0)

    def payload_bearing_mask(self) -> np.ndarray:
        """The §6.1 payload-bearing predicate per flow."""
        return (
            (self.protocol == Protocol.TCP)
            & (self.payload_bytes() >= PAYLOAD_BEARING_MIN_BYTES)
            & ((self.tcp_flags & TCPFlags.ACK) != 0)
        )

    # -- filters --------------------------------------------------------------

    def select(self, mask: np.ndarray) -> "FlowLog":
        """A new log containing only flows where ``mask`` is True."""
        if mask.shape != (len(self),):
            raise ValueError("mask length does not match flow count")
        return FlowLog(**{name: arr[mask] for name, arr in self._columns.items()})

    def tcp_only(self) -> "FlowLog":
        return self.select(self.protocol == Protocol.TCP)

    def in_time_range(self, start: float, end: float) -> "FlowLog":
        """Flows starting within ``[start, end)``."""
        return self.select((self.start_time >= start) & (self.start_time < end))

    def from_sources(self, sources: np.ndarray) -> "FlowLog":
        """Flows whose source address is in the sorted array ``sources``."""
        if sources.size == 0:
            return self.select(np.zeros(len(self), dtype=bool))
        idx = np.clip(np.searchsorted(sources, self.src_addr), 0, sources.size - 1)
        return self.select(sources[idx] == self.src_addr)

    # -- aggregates --------------------------------------------------------------

    def unique_sources(self) -> np.ndarray:
        """Sorted unique source addresses."""
        return np.unique(self.src_addr)

    def unique_destinations(self) -> np.ndarray:
        """Sorted unique destination addresses."""
        return np.unique(self.dst_addr)

    def fanout_by_source(self) -> Dict[int, int]:
        """Distinct destination count per source address."""
        if len(self) == 0:
            return {}
        pairs = np.unique(
            np.stack([self.src_addr, self.dst_addr], axis=1), axis=0
        )
        sources, counts = np.unique(pairs[:, 0], return_counts=True)
        return {int(s): int(c) for s, c in zip(sources, counts)}

    def payload_bearing_sources(self) -> np.ndarray:
        """Sorted unique sources with at least one payload-bearing flow."""
        return np.unique(self.src_addr[self.payload_bearing_mask()])

    def __repr__(self) -> str:
        return f"FlowLog(flows={len(self)})"
