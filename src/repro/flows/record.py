"""NetFlow V5 style flow records.

The paper's §6 analysis runs over CISCO NetFlow V5 logs: "approximate
sessions consisting of a log of all identically addressed packets within a
limited time ... a compact representation of traffic, but do not contain
payload".  This module models the fields that analysis needs: endpoints,
ports, protocol, packet/byte counts, cumulative TCP flags, and times.

Payload is not carried in NetFlow, so the paper *estimates* it from byte
counts.  We reproduce that estimate: payload bytes = total bytes minus 40
bytes of IP+TCP header per packet.  TCP options inflate the estimate,
which is exactly the artifact the paper describes — "due to TCP options, a
3-packet SYN scan will often have 36 bytes of payload" — and why the
payload-bearing predicate also requires an ACK flag.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "Protocol",
    "TCPFlags",
    "HEADER_BYTES_PER_PACKET",
    "PAYLOAD_BEARING_MIN_BYTES",
    "FlowRecord",
]

#: Bytes of IP + TCP header assumed per packet when estimating payload.
HEADER_BYTES_PER_PACKET = 40

#: The paper's payload threshold: "at least 36 bytes of payload" (§6.1).
PAYLOAD_BEARING_MIN_BYTES = 36


class Protocol:
    """IP protocol numbers used by the generator and detectors."""

    ICMP = 1
    TCP = 6
    UDP = 17


class TCPFlags:
    """Cumulative TCP flag bits, as reported in NetFlow V5."""

    FIN = 0x01
    SYN = 0x02
    RST = 0x04
    PSH = 0x08
    ACK = 0x10
    URG = 0x20

    @staticmethod
    def has_ack(flags: int) -> bool:
        return bool(flags & TCPFlags.ACK)

    @staticmethod
    def describe(flags: int) -> str:
        """Render a flag mask as e.g. ``"SYN|ACK"``."""
        names = []
        for name in ("FIN", "SYN", "RST", "PSH", "ACK", "URG"):
            if flags & getattr(TCPFlags, name):
                names.append(name)
        return "|".join(names) if names else "-"


@dataclass(frozen=True)
class FlowRecord:
    """A single flow (scalar view; bulk storage lives in ``FlowLog``).

    Times are seconds since the simulation epoch.
    """

    src_addr: int
    dst_addr: int
    src_port: int
    dst_port: int
    protocol: int
    packets: int
    octets: int
    tcp_flags: int
    start_time: float
    end_time: float

    def __post_init__(self) -> None:
        if self.packets <= 0:
            raise ValueError(f"flow must carry at least one packet: {self.packets}")
        if self.octets < self.packets:
            raise ValueError("flow byte count below one byte per packet")
        if self.end_time < self.start_time:
            raise ValueError("flow ends before it starts")

    @property
    def payload_bytes(self) -> int:
        """Estimated payload: bytes beyond 40 per packet, floored at zero."""
        return max(0, self.octets - HEADER_BYTES_PER_PACKET * self.packets)

    @property
    def is_payload_bearing(self) -> bool:
        """The §6.1 predicate: TCP, >=36 bytes payload, and an ACK flag."""
        return (
            self.protocol == Protocol.TCP
            and self.payload_bytes >= PAYLOAD_BEARING_MIN_BYTES
            and TCPFlags.has_ack(self.tcp_flags)
        )

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time
