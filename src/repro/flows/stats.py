"""Traffic summary statistics over flow logs.

The paper's §6 reasons about its capture in aggregate terms — how many
flows carried payload, which sources dominated, what the unknown class's
traffic looked like.  This module packages those aggregate views: a
per-protocol profile, top talkers, destination-port histograms, the
payload-bearing breakdown, and hourly volume series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.flows.log import FlowLog
from repro.flows.record import Protocol
from repro.ipspace.addr import as_str

__all__ = ["TrafficProfile", "profile_flows", "top_talkers", "port_histogram",
           "hourly_volume"]

_PROTOCOL_NAMES = {Protocol.TCP: "tcp", Protocol.UDP: "udp", Protocol.ICMP: "icmp"}
_HOUR_SECONDS = 3600.0


@dataclass(frozen=True)
class TrafficProfile:
    """Aggregate description of one flow log."""

    flows: int
    packets: int
    octets: int
    unique_sources: int
    unique_destinations: int
    by_protocol: Dict[str, int]  # flow counts
    payload_bearing_flows: int
    payload_bearing_sources: int

    @property
    def payload_bearing_fraction(self) -> float:
        """Share of flows that carried payload (TCP, >=36B, ACK)."""
        return self.payload_bearing_flows / self.flows if self.flows else 0.0

    @property
    def mean_packets_per_flow(self) -> float:
        return self.packets / self.flows if self.flows else 0.0

    def rows(self) -> List[dict]:
        return [
            {"metric": "flows", "value": self.flows},
            {"metric": "packets", "value": self.packets},
            {"metric": "octets", "value": self.octets},
            {"metric": "unique_sources", "value": self.unique_sources},
            {"metric": "unique_destinations", "value": self.unique_destinations},
            {"metric": "payload_bearing_flows", "value": self.payload_bearing_flows},
            {
                "metric": "payload_bearing_fraction",
                "value": round(self.payload_bearing_fraction, 4),
            },
        ]


def profile_flows(flows: FlowLog) -> TrafficProfile:
    """Build the aggregate profile of a flow log."""
    by_protocol: Dict[str, int] = {}
    for value, count in zip(*np.unique(flows.protocol, return_counts=True)):
        name = _PROTOCOL_NAMES.get(int(value), f"proto{int(value)}")
        by_protocol[name] = int(count)
    payload_mask = flows.payload_bearing_mask()
    return TrafficProfile(
        flows=len(flows),
        packets=int(flows.packets.astype(np.int64).sum()),
        octets=int(flows.octets.astype(np.int64).sum()),
        unique_sources=int(flows.unique_sources().size),
        unique_destinations=int(flows.unique_destinations().size),
        by_protocol=by_protocol,
        payload_bearing_flows=int(payload_mask.sum()),
        payload_bearing_sources=int(flows.payload_bearing_sources().size),
    )


def top_talkers(flows: FlowLog, count: int = 10, by: str = "flows") -> List[dict]:
    """The ``count`` most active sources, ranked by flows or bytes."""
    if by not in ("flows", "octets"):
        raise ValueError(f"rank by 'flows' or 'octets', not {by!r}")
    if len(flows) == 0:
        return []
    sources, inverse = np.unique(flows.src_addr, return_inverse=True)
    flow_counts = np.bincount(inverse, minlength=sources.size)
    octet_sums = np.bincount(
        inverse, weights=flows.octets.astype(np.float64), minlength=sources.size
    )
    key = flow_counts if by == "flows" else octet_sums
    order = np.argsort(key)[::-1][:count]
    return [
        {
            "source": as_str(int(sources[i])),
            "flows": int(flow_counts[i]),
            "octets": int(octet_sums[i]),
        }
        for i in order
    ]


def port_histogram(flows: FlowLog, count: int = 10) -> List[dict]:
    """The ``count`` most contacted destination ports."""
    if len(flows) == 0:
        return []
    ports, counts = np.unique(flows.dst_port, return_counts=True)
    order = np.argsort(counts)[::-1][:count]
    return [
        {"dst_port": int(ports[i]), "flows": int(counts[i])}
        for i in order
    ]


def hourly_volume(flows: FlowLog) -> Dict[int, int]:
    """Flow count per absolute hour index (start_time // 3600)."""
    if len(flows) == 0:
        return {}
    hours = (flows.start_time // _HOUR_SECONDS).astype(np.int64)
    values, counts = np.unique(hours, return_counts=True)
    return {int(h): int(c) for h, c in zip(values, counts)}
