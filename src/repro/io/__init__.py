"""Serialisation: reports as address lists, flow logs as CSV."""

from repro.io.dataset import Dataset, load_dataset, save_dataset, save_scenario
from repro.io.flows import FLOW_COLUMNS, read_flows, write_flows
from repro.io.reports import read_address_list, read_report, write_report

__all__ = [
    "write_report",
    "read_report",
    "read_address_list",
    "FLOW_COLUMNS",
    "write_flows",
    "read_flows",
    "Dataset",
    "save_dataset",
    "load_dataset",
    "save_scenario",
]
