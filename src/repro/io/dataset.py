"""Dataset directories: persist and reload a whole study's artefacts.

A reproduction run produces a family of reports (Table 1/2) and a border
flow capture.  This module lays them out as a directory —

::

    dataset/
      manifest.json          # inventory + format version
      reports/<tag>.txt      # one file per report (repro.io.reports format)
      flows/october.csv      # flow captures (repro.io.flows format)

— so results can be shipped, diffed, or re-analysed without re-running
the simulation.  :func:`save_scenario` snapshots a
:class:`~repro.core.scenario.PaperScenario`; :func:`load_dataset` reloads
any dataset directory into plain reports and flow logs.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional

from repro.core.report import Report
from repro.flows.log import FlowLog
from repro.io.flows import read_flows, write_flows
from repro.io.reports import read_report, write_report

__all__ = ["Dataset", "save_scenario", "save_dataset", "load_dataset"]

FORMAT_VERSION = 1


@dataclass
class Dataset:
    """An in-memory dataset: tagged reports plus named flow captures."""

    reports: Dict[str, Report] = field(default_factory=dict)
    flows: Dict[str, FlowLog] = field(default_factory=dict)
    metadata: Dict[str, object] = field(default_factory=dict)

    def report(self, tag: str) -> Report:
        try:
            return self.reports[tag]
        except KeyError:
            raise KeyError(
                f"no report tagged {tag!r}; have {sorted(self.reports)}"
            ) from None

    def __repr__(self) -> str:
        return (
            f"Dataset(reports={sorted(self.reports)}, "
            f"flows={sorted(self.flows)})"
        )


def save_dataset(dataset: Dataset, directory) -> Path:
    """Write a dataset directory; returns its path."""
    root = Path(directory)
    (root / "reports").mkdir(parents=True, exist_ok=True)
    (root / "flows").mkdir(parents=True, exist_ok=True)

    manifest = {
        "format_version": FORMAT_VERSION,
        "metadata": dataset.metadata,
        "reports": {},
        "flows": {},
    }
    for tag, report in dataset.reports.items():
        filename = f"{_safe_name(tag)}.txt"
        write_report(report, root / "reports" / filename)
        manifest["reports"][tag] = {
            "file": f"reports/{filename}",
            "size": len(report),
        }
    for name, log in dataset.flows.items():
        filename = f"{_safe_name(name)}.csv"
        write_flows(log, root / "flows" / filename)
        manifest["flows"][name] = {
            "file": f"flows/{filename}",
            "records": len(log),
        }
    with open(root / "manifest.json", "w", encoding="ascii") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
    return root


def load_dataset(directory) -> Dataset:
    """Read a dataset directory written by :func:`save_dataset`."""
    root = Path(directory)
    manifest_path = root / "manifest.json"
    if not manifest_path.exists():
        raise FileNotFoundError(f"no manifest.json in {root}")
    with open(manifest_path, "r", encoding="ascii") as handle:
        manifest = json.load(handle)
    version = manifest.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(
            f"unsupported dataset format version: {version!r} "
            f"(this library reads {FORMAT_VERSION})"
        )

    dataset = Dataset(metadata=manifest.get("metadata", {}))
    for tag, info in manifest.get("reports", {}).items():
        report = read_report(root / info["file"])
        if len(report) != info.get("size", len(report)):
            raise ValueError(
                f"report {tag!r} size mismatch: manifest says "
                f"{info['size']}, file holds {len(report)}"
            )
        dataset.reports[tag] = report
    for name, info in manifest.get("flows", {}).items():
        log = read_flows(root / info["file"])
        if len(log) != info.get("records", len(log)):
            raise ValueError(
                f"flow capture {name!r} record-count mismatch: manifest "
                f"says {info['records']}, file holds {len(log)}"
            )
        dataset.flows[name] = log
    return dataset


def save_scenario(scenario, directory, include_flows: bool = True) -> Path:
    """Snapshot a built :class:`~repro.core.scenario.PaperScenario`."""
    dataset = Dataset(
        reports=dict(scenario.reports),
        flows={"october": scenario.october_traffic.flows} if include_flows else {},
        metadata={
            "seed": scenario.config.seed,
            "description": "uncleanliness reproduction scenario snapshot",
        },
    )
    return save_dataset(dataset, directory)


def _safe_name(name: str) -> str:
    """File-system safe version of a tag."""
    return "".join(c if c.isalnum() or c in "-_." else "_" for c in name)
