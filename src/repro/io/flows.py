"""Flow log serialisation.

Writes and reads flow logs in a CSV dialect modelled on the text export
of NetFlow toolchains (one record per line, fixed column order, dotted
quads for addresses).  Round-trips a :class:`~repro.flows.log.FlowLog`
exactly.
"""

from __future__ import annotations

import csv
import os
from typing import TextIO, Union

import numpy as np

from repro.flows.log import FlowLog
from repro.ipspace.addr import as_int, as_str

__all__ = ["FLOW_COLUMNS", "write_flows", "read_flows"]

#: Column order of the CSV dialect.
FLOW_COLUMNS = (
    "src_addr",
    "dst_addr",
    "src_port",
    "dst_port",
    "protocol",
    "packets",
    "octets",
    "tcp_flags",
    "start_time",
    "end_time",
)

_ADDRESS_COLUMNS = {"src_addr", "dst_addr"}
_FLOAT_COLUMNS = {"start_time", "end_time"}


def write_flows(flows: FlowLog, destination: Union[str, os.PathLike, TextIO]) -> None:
    """Write a flow log as CSV with a header row."""
    if hasattr(destination, "write"):
        _write(flows, destination)
        return
    with open(destination, "w", encoding="ascii", newline="") as handle:
        _write(flows, handle)


def _write(flows: FlowLog, handle: TextIO) -> None:
    writer = csv.writer(handle)
    writer.writerow(FLOW_COLUMNS)
    columns = [flows.column(name) for name in FLOW_COLUMNS]
    for row in zip(*columns):
        rendered = []
        for name, value in zip(FLOW_COLUMNS, row):
            if name in _ADDRESS_COLUMNS:
                rendered.append(as_str(int(value)))
            elif name in _FLOAT_COLUMNS:
                rendered.append(repr(float(value)))
            else:
                rendered.append(str(int(value)))
        writer.writerow(rendered)


def read_flows(source: Union[str, os.PathLike, TextIO]) -> FlowLog:
    """Read a flow log written by :func:`write_flows`."""
    if hasattr(source, "read"):
        return _read(source)
    with open(source, "r", encoding="ascii", newline="") as handle:
        return _read(handle)


def _read(handle: TextIO) -> FlowLog:
    reader = csv.reader(handle)
    header = next(reader, None)
    if header is None or tuple(header) != FLOW_COLUMNS:
        raise ValueError(f"unexpected flow CSV header: {header}")
    columns = {name: [] for name in FLOW_COLUMNS}
    for row in reader:
        if not row:
            continue
        if len(row) != len(FLOW_COLUMNS):
            raise ValueError(f"malformed flow row: {row}")
        for name, value in zip(FLOW_COLUMNS, row):
            if name in _ADDRESS_COLUMNS:
                columns[name].append(as_int(value))
            elif name in _FLOAT_COLUMNS:
                columns[name].append(float(value))
            else:
                columns[name].append(int(value))
    return FlowLog(**{name: np.asarray(values) for name, values in columns.items()})
