"""Report serialisation.

Reports travel between organisations as flat text — one address per line —
with whatever metadata the sender thought to attach.  This module reads
and writes that format with a small header block so reports round-trip
with their Table 1 metadata intact, and also reads bare address lists
(comments and blank lines ignored) as provided feeds tend to arrive.
"""

from __future__ import annotations

import datetime
import os
from typing import Iterable, List, Optional, TextIO, Tuple, Union

from repro.core.report import DataClass, Report, ReportType
from repro.ipspace.addr import as_int, as_str

__all__ = ["write_report", "read_report", "read_address_list"]

_HEADER_PREFIX = "#:"


def write_report(report: Report, destination: Union[str, os.PathLike, TextIO]) -> None:
    """Write a report as a header block plus one dotted-quad per line."""
    if hasattr(destination, "write"):
        _write(report, destination)
        return
    with open(destination, "w", encoding="ascii") as handle:
        _write(report, handle)


def _write(report: Report, handle: TextIO) -> None:
    handle.write(f"{_HEADER_PREFIX} tag={report.tag}\n")
    handle.write(f"{_HEADER_PREFIX} type={report.report_type}\n")
    handle.write(f"{_HEADER_PREFIX} class={report.data_class}\n")
    if report.period is not None:
        start, end = report.period
        handle.write(
            f"{_HEADER_PREFIX} period={start.isoformat()}..{end.isoformat()}\n"
        )
    for address in report.addresses:
        handle.write(as_str(int(address)) + "\n")


def read_report(source: Union[str, os.PathLike, TextIO]) -> Report:
    """Read a report written by :func:`write_report`.

    Files without a header block are read as bare address lists and
    tagged ``"imported"``.
    """
    if hasattr(source, "read"):
        lines = source.read().splitlines()
    else:
        with open(source, "r", encoding="ascii") as handle:
            lines = handle.read().splitlines()

    meta = {"tag": "imported", "type": ReportType.PROVIDED, "class": DataClass.NONE}
    period: Optional[Tuple[datetime.date, datetime.date]] = None
    addresses: List[int] = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#") and not line.startswith(_HEADER_PREFIX):
            continue
        if line.startswith(_HEADER_PREFIX):
            key, _, value = line[len(_HEADER_PREFIX):].strip().partition("=")
            key = key.strip()
            value = value.strip()
            if key == "period":
                start_text, _, end_text = value.partition("..")
                period = (
                    datetime.date.fromisoformat(start_text),
                    datetime.date.fromisoformat(end_text),
                )
            elif key in meta:
                meta[key] = value
            continue
        addresses.append(as_int(line))

    return Report(
        tag=meta["tag"],
        addresses=addresses,
        report_type=meta["type"],
        data_class=meta["class"],
        period=period,
    )


def read_address_list(lines: Iterable[str], tag: str = "imported") -> Report:
    """Build a report from an iterable of address strings.

    Blank lines and ``#`` comments are skipped, as in real feed dumps.
    """
    addresses = []
    for raw in lines:
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        addresses.append(as_int(line))
    return Report(tag=tag, addresses=addresses, report_type=ReportType.PROVIDED)
