"""IPv4 address-space substrate.

Provides address arithmetic (:mod:`repro.ipspace.addr`), CIDR blocks and
the paper's masking function :math:`C_n` (:mod:`repro.ipspace.cidr`),
batched trial-matrix prefix kernels (:mod:`repro.ipspace.kernels`), the
2006-era IANA /8 allocation table (:mod:`repro.ipspace.iana`), and
reserved-space filtering (:mod:`repro.ipspace.reserved`).
"""

from repro.ipspace.addr import (
    MAX_ADDRESS,
    AddressLike,
    as_array,
    as_int,
    as_str,
    block_size,
    first_octet,
    format_array,
    prefix_mask,
)
from repro.ipspace.cidr import (
    CIDRBlock,
    block_count,
    contains,
    mask_address,
    mask_array,
    unique_blocks,
)
from repro.ipspace.clusters import PrefixTable, synthesize_table
from repro.ipspace.kernels import (
    block_counts_2d,
    intersection_counts_2d,
    member_counts_2d,
    sorted_rows,
)
from repro.ipspace.iana import Status, allocated_octets, is_allocated
from repro.ipspace.structure import StructureProfile, profile_addresses
from repro.ipspace.reserved import (
    RESERVED_BLOCKS,
    filter_reserved,
    is_reserved,
    reserved_mask,
)

__all__ = [
    "AddressLike",
    "MAX_ADDRESS",
    "as_int",
    "as_str",
    "as_array",
    "format_array",
    "prefix_mask",
    "block_size",
    "first_octet",
    "CIDRBlock",
    "mask_address",
    "mask_array",
    "unique_blocks",
    "block_count",
    "contains",
    "sorted_rows",
    "block_counts_2d",
    "intersection_counts_2d",
    "member_counts_2d",
    "Status",
    "allocated_octets",
    "is_allocated",
    "RESERVED_BLOCKS",
    "is_reserved",
    "reserved_mask",
    "filter_reserved",
    "PrefixTable",
    "synthesize_table",
    "StructureProfile",
    "profile_addresses",
]
