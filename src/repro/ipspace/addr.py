"""IPv4 address arithmetic.

Addresses are represented as unsigned 32-bit integers (``int`` for scalar
work, ``numpy.uint32`` arrays for bulk work).  This module provides the
conversions between that representation, dotted-quad strings, and
:mod:`ipaddress` objects, plus the small amount of bit arithmetic the rest
of the library needs.

The integer representation is the natural one for this paper: the CIDR
masking function :math:`C_n` (paper Eq. 1) is a single AND against a prefix
mask, and reports of hundreds of thousands of addresses stay cheap as numpy
arrays.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Union

import numpy as np

__all__ = [
    "AddressLike",
    "MAX_ADDRESS",
    "as_int",
    "as_str",
    "as_array",
    "format_array",
    "prefix_mask",
    "block_size",
    "first_octet",
]

#: Anything the public API accepts as a single IPv4 address.
AddressLike = Union[int, str, ipaddress.IPv4Address]

#: The largest representable IPv4 address, 255.255.255.255.
MAX_ADDRESS = 0xFFFFFFFF


def as_int(address: AddressLike) -> int:
    """Convert a single address to its integer form.

    Accepts an ``int`` (validated for range), a dotted-quad string, or an
    :class:`ipaddress.IPv4Address`.

    >>> as_int("127.1.135.14")
    2130806542
    >>> as_int(0)
    0
    """
    if isinstance(address, bool):
        # Guard against a surprising bool -> int coercion.
        raise TypeError("bool is not a valid IPv4 address")
    if isinstance(address, (int, np.integer)):
        value = int(address)
        if not 0 <= value <= MAX_ADDRESS:
            raise ValueError(f"address out of IPv4 range: {value!r}")
        return value
    if isinstance(address, str):
        return int(ipaddress.IPv4Address(address))
    if isinstance(address, ipaddress.IPv4Address):
        return int(address)
    raise TypeError(f"not an IPv4 address: {address!r}")


def as_str(address: AddressLike) -> str:
    """Convert a single address to dotted-quad form.

    >>> as_str(2130806542)
    '127.1.135.14'
    """
    return str(ipaddress.IPv4Address(as_int(address)))


def as_array(addresses: Iterable[AddressLike]) -> np.ndarray:
    """Convert an iterable of addresses to a ``uint32`` numpy array.

    A numpy integer array passes through with only a range check and a
    dtype cast, so bulk paths stay cheap.
    """
    if isinstance(addresses, np.ndarray) and addresses.dtype.kind in "iu":
        arr = addresses.astype(np.int64, copy=False)
        if arr.size and (arr.min() < 0 or arr.max() > MAX_ADDRESS):
            raise ValueError("array contains values outside IPv4 range")
        return addresses.astype(np.uint32, copy=False)
    values = [as_int(a) for a in addresses]
    return np.asarray(values, dtype=np.uint32)


def format_array(addresses: np.ndarray) -> list:
    """Format a ``uint32`` array as a list of dotted-quad strings."""
    return [as_str(int(a)) for a in addresses]


def prefix_mask(prefix_len: int) -> int:
    """The network mask for a prefix length, as an integer.

    >>> hex(prefix_mask(24))
    '0xffffff00'
    >>> prefix_mask(0)
    0
    """
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    if prefix_len == 0:
        return 0
    return (MAX_ADDRESS << (32 - prefix_len)) & MAX_ADDRESS


def block_size(prefix_len: int) -> int:
    """Number of addresses in a block with the given prefix length.

    >>> block_size(24)
    256
    """
    if not 0 <= prefix_len <= 32:
        raise ValueError(f"prefix length out of range: {prefix_len}")
    return 1 << (32 - prefix_len)


def first_octet(address: AddressLike) -> int:
    """The leading octet of an address (its /8 index).

    >>> first_octet("62.4.0.1")
    62
    """
    return as_int(address) >> 24
