"""CIDR blocks and the masking function :math:`C_n`.

The paper models networks as homogeneously sized CIDR blocks and defines a
masking function :math:`C_n(i)` that maps an address *i* to the unique
*n*-bit block containing it (Eq. 1), plus an inclusion relation
:math:`i \\sqsubset S` (Eq. 2).  This module implements both, for scalars
and for ``uint32`` arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.ipspace.addr import (
    AddressLike,
    as_array,
    as_int,
    as_str,
    block_size,
    prefix_mask,
)

__all__ = [
    "CIDRBlock",
    "mask_address",
    "mask_array",
    "unique_blocks",
    "block_count",
    "contains",
]


@dataclass(frozen=True, order=True)
class CIDRBlock:
    """An immutable CIDR block, e.g. ``127.1.0.0/16``.

    ``network`` is the integer form of the lowest address in the block and
    is always pre-masked: constructing ``CIDRBlock(2130806542, 16)``
    produces the canonical ``127.1.0.0/16``.
    """

    network: int
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        masked = as_int(self.network) & prefix_mask(self.prefix_len)
        object.__setattr__(self, "network", masked)

    @classmethod
    def containing(cls, address: AddressLike, prefix_len: int) -> "CIDRBlock":
        """The block :math:`C_n(i)` containing ``address``.

        >>> CIDRBlock.containing("127.1.135.14", 16)
        CIDRBlock('127.1.0.0/16')
        """
        return cls(as_int(address), prefix_len)

    @classmethod
    def parse(cls, text: str) -> "CIDRBlock":
        """Parse ``"a.b.c.d/n"`` notation.

        >>> CIDRBlock.parse("10.0.0.0/8").prefix_len
        8
        """
        try:
            network_text, prefix_text = text.split("/")
        except ValueError:
            raise ValueError(f"not CIDR notation: {text!r}") from None
        return cls(as_int(network_text), int(prefix_text))

    @property
    def first_address(self) -> int:
        """Lowest address in the block, as an integer."""
        return self.network

    @property
    def last_address(self) -> int:
        """Highest address in the block, as an integer."""
        return self.network + block_size(self.prefix_len) - 1

    @property
    def num_addresses(self) -> int:
        """Total addresses the block spans."""
        return block_size(self.prefix_len)

    def contains(self, address: AddressLike) -> bool:
        """Whether ``address`` falls inside this block."""
        return as_int(address) & prefix_mask(self.prefix_len) == self.network

    def subblock_of(self, other: "CIDRBlock") -> bool:
        """Whether this block is contained in (or equal to) ``other``."""
        return (
            self.prefix_len >= other.prefix_len
            and self.network & prefix_mask(other.prefix_len) == other.network
        )

    def addresses(self) -> Iterator[int]:
        """Iterate every address in the block (use only for small blocks)."""
        return iter(range(self.first_address, self.last_address + 1))

    def __str__(self) -> str:
        return f"{as_str(self.network)}/{self.prefix_len}"

    def __repr__(self) -> str:
        return f"CIDRBlock('{self}')"


def mask_address(address: AddressLike, prefix_len: int) -> int:
    """Scalar :math:`C_n(i)`: the masked network integer for ``address``.

    >>> from repro.ipspace.addr import as_str
    >>> as_str(mask_address("127.1.135.14", 16))
    '127.1.0.0'
    """
    return as_int(address) & prefix_mask(prefix_len)


def _as_addresses(addresses) -> np.ndarray:
    """Accept a raw address array/iterable or anything report-shaped.

    Objects exposing a ``.addresses`` array (:class:`repro.core.report.
    Report`) are unwrapped by duck-typing, so the canonical block
    functions below serve both layers without this substrate importing
    :mod:`repro.core`.
    """
    return getattr(addresses, "addresses", addresses)


def mask_array(addresses: np.ndarray, prefix_len: int) -> np.ndarray:
    """Vectorised :math:`C_n` over a ``uint32`` array.

    Returns an array of the same shape holding masked network integers.
    """
    arr = as_array(_as_addresses(addresses))
    return arr & np.uint32(prefix_mask(prefix_len))


def unique_blocks(addresses: Iterable[AddressLike], prefix_len: int) -> np.ndarray:
    """The set :math:`C_n(S)` (Eq. 1) as a sorted array of network ints.

    ``addresses`` may be an address array/iterable or a report.
    """
    return np.unique(mask_array(addresses, prefix_len))


def block_count(addresses: Iterable[AddressLike], prefix_len: int) -> int:
    """:math:`|C_n(S)|`: how many distinct *n*-bit blocks cover ``S``.

    The canonical implementation — ``addresses`` may be an address
    array/iterable or a report (``repro.core.cidr.block_count`` is a
    deprecated alias of this function).
    """
    return int(unique_blocks(addresses, prefix_len).size)


def contains(addresses: np.ndarray, block_set: np.ndarray, prefix_len: int) -> np.ndarray:
    """Vectorised inclusion relation :math:`i \\sqsubset S` (Eq. 2).

    ``block_set`` must be a sorted array of masked network integers at
    ``prefix_len`` (as produced by :func:`unique_blocks`).  Returns a
    boolean array marking which of ``addresses`` fall in any block.
    """
    masked = mask_array(addresses, prefix_len)
    if block_set.size == 0:
        return np.zeros(masked.shape, dtype=bool)
    idx = np.searchsorted(block_set, masked)
    idx = np.clip(idx, 0, block_set.size - 1)
    return block_set[idx] == masked
