"""Network-aware clustering: heterogeneous prefixes with longest-match.

The paper's §4.1 considers and rejects the alternative to homogeneous
CIDR blocks: "heterogeneous partitioning such as network-aware clustering
[Krishnamurthy & Wang], can result in network populations that differ in
size by several orders of magnitude".  This module supplies that
alternative so the rejection can be evaluated rather than asserted:

* :class:`PrefixTable` — a routing-table-like set of heterogeneous
  prefixes with longest-prefix-match lookup (scalar and vectorised);
* :func:`synthesize_table` — a BGP-flavoured table over a
  :class:`~repro.sim.internet.SyntheticInternet`: most /16s are announced
  whole, some are deaggregated into a mix of /17../24 more-specifics,
  mimicking the size spread of real announcements.

The cluster analogue of :math:`|C_n(S)|` is
:meth:`PrefixTable.cluster_count`; the ablation in
:mod:`repro.experiments.ablation` compares its population dispersion and
density verdicts against the paper's homogeneous blocks.

Since the AS-substrate refactor this module also quantifies *how
clustered* uncleanliness is at each aggregation level:
:func:`within_group_icc` is the one-way ANOVA intraclass correlation of
a per-/24 statistic under an arbitrary grouping, and
:func:`as_clustering_summary` applies it at the /16 and announcing-AS
levels of a :class:`~repro.sim.internet.SyntheticInternet` — the
statistic behind the claim that AS-structured worlds cluster dirt by
operator while flat worlds do not.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.ipspace.addr import AddressLike, as_array, as_int, prefix_mask
from repro.ipspace.cidr import CIDRBlock

__all__ = [
    "PrefixTable",
    "as_clustering_summary",
    "synthesize_table",
    "within_group_icc",
]


class PrefixTable:
    """An immutable set of heterogeneous prefixes with LPM lookup.

    Lookup semantics follow routing: an address maps to the most specific
    prefix containing it, or to no cluster at all if nothing matches.
    """

    def __init__(self, prefixes: Iterable[CIDRBlock]) -> None:
        blocks = sorted(set(prefixes))
        if not blocks:
            raise ValueError("a prefix table needs at least one prefix")
        self.prefixes: List[CIDRBlock] = blocks
        # Per-length sorted network arrays, plus the index of each network
        # back into self.prefixes, for vectorised longest-match.
        self._by_length: Dict[int, np.ndarray] = {}
        self._index_by_length: Dict[int, np.ndarray] = {}
        for length in sorted({b.prefix_len for b in blocks}):
            members = [
                (b.network, i) for i, b in enumerate(blocks) if b.prefix_len == length
            ]
            nets = np.asarray([m[0] for m in members], dtype=np.uint32)
            idx = np.asarray([m[1] for m in members], dtype=np.int64)
            order = np.argsort(nets)
            self._by_length[length] = nets[order]
            self._index_by_length[length] = idx[order]

    def __len__(self) -> int:
        return len(self.prefixes)

    def lookup(self, address: AddressLike) -> Optional[CIDRBlock]:
        """Longest-prefix match for one address (None if unrouted)."""
        value = as_int(address)
        for length in sorted(self._by_length, reverse=True):
            nets = self._by_length[length]
            masked = value & prefix_mask(length)
            position = int(np.searchsorted(nets, masked))
            if position < nets.size and nets[position] == masked:
                return self.prefixes[int(self._index_by_length[length][position])]
        return None

    def lookup_array(self, addresses: Iterable[AddressLike]) -> np.ndarray:
        """Vectorised LPM: index into :attr:`prefixes` per address, -1 if none."""
        arr = as_array(addresses)
        result = np.full(arr.shape, -1, dtype=np.int64)
        unmatched = np.ones(arr.shape, dtype=bool)
        for length in sorted(self._by_length, reverse=True):
            if not unmatched.any():
                break
            nets = self._by_length[length]
            masked = arr & np.uint32(prefix_mask(length))
            position = np.clip(np.searchsorted(nets, masked), 0, nets.size - 1)
            hit = unmatched & (nets[position] == masked)
            result[hit] = self._index_by_length[length][position[hit]]
            unmatched &= ~hit
        return result

    def cluster_count(self, addresses: Iterable[AddressLike]) -> int:
        """Distinct clusters covering the addresses (unrouted excluded).

        The heterogeneous analogue of :math:`|C_n(S)|`.
        """
        matches = self.lookup_array(addresses)
        return int(np.unique(matches[matches >= 0]).size)

    def cluster_sizes(self) -> np.ndarray:
        """Address-span of every prefix (the dispersion the paper flags)."""
        return np.asarray([b.num_addresses for b in self.prefixes], dtype=np.int64)

    def coverage_fraction(self, addresses: Iterable[AddressLike]) -> float:
        """Fraction of addresses that match some prefix."""
        arr = as_array(addresses)
        if arr.size == 0:
            return 0.0
        return float((self.lookup_array(arr) >= 0).mean())

    def __repr__(self) -> str:
        lengths = sorted(self._by_length)
        return f"PrefixTable(prefixes={len(self)}, lengths={lengths[0]}..{lengths[-1]})"


def synthesize_table(
    internet,
    rng: np.random.Generator,
    deaggregation_probability: float = 0.3,
) -> PrefixTable:
    """A BGP-flavoured heterogeneous prefix table for a synthetic Internet.

    Each occupied /16 is either announced whole (the common case) or
    deaggregated: recursively split into halves, each half announced at
    its own length down to at most /24.  The result spans /16../24
    prefixes whose address spans differ by up to 256x — the "several
    orders of magnitude" population spread of §4.1.
    """
    if not 0 <= deaggregation_probability <= 1:
        raise ValueError("deaggregation_probability must be in [0, 1]")

    slash16s = np.unique(internet.net24 & np.uint32(prefix_mask(16)))
    prefixes: List[CIDRBlock] = []

    def announce(network: int, length: int) -> None:
        if length >= 24 or rng.random() >= deaggregation_probability:
            prefixes.append(CIDRBlock(network, length))
            return
        half = 1 << (32 - (length + 1))
        announce(network, length + 1)
        announce(network + half, length + 1)

    for base in slash16s:
        announce(int(base), 16)
    return PrefixTable(prefixes)


# -- clustering statistics ---------------------------------------------------


def within_group_icc(groups, values) -> float:
    """One-way ANOVA intraclass correlation, ICC(1), of ``values`` under
    the grouping ``groups``.

    ICC(1) = (MS_between - MS_within) / (MS_between + (k0 - 1) MS_within)
    with ``k0`` the ANOVA-standard effective group size for unbalanced
    designs.  It is ~0 when group membership explains none of the
    variance (values as good as shuffled), approaches 1 when values are
    constant within groups but differ between them, and can dip slightly
    negative by sampling noise.

    Degenerate designs carry no between-group signal and return 0.0
    exactly: a single group (a one-AS world), all-singleton groups
    (every AS announcing one prefix — no within-group variance to
    compare), or constant values.
    """
    groups = np.asarray(groups)
    values = np.asarray(values, dtype=np.float64)
    if groups.shape != values.shape:
        raise ValueError(
            f"groups and values must align: {groups.shape} vs {values.shape}"
        )
    n = values.size
    if n == 0:
        raise ValueError("need at least one observation")
    _, inverse, counts = np.unique(
        groups, return_inverse=True, return_counts=True
    )
    g = counts.size
    if g < 2 or n <= g:
        return 0.0
    grand = values.mean()
    means = np.bincount(inverse, weights=values) / counts
    ms_between = float((counts * (means - grand) ** 2).sum()) / (g - 1)
    ms_within = float(((values - means[inverse]) ** 2).sum()) / (n - g)
    k0 = (n - float((counts.astype(np.float64) ** 2).sum()) / n) / (g - 1)
    denominator = ms_between + (k0 - 1.0) * ms_within
    if denominator <= 0.0:
        return 0.0
    return float((ms_between - ms_within) / denominator)


def as_clustering_summary(internet) -> Dict[str, float]:
    """How strongly per-/24 uncleanliness clusters at each aggregation
    level of a :class:`~repro.sim.internet.SyntheticInternet`.

    Returns three intraclass correlations:

    * ``icc_net16`` — /24s grouped by containing /16.  High in every
      world: the paper's §4.2 spatial correlation.
    * ``icc_as`` — /24s grouped by announcing AS.  In the flat world
      every /16 is its own stub AS, so this degenerates to
      ``icc_net16``.
    * ``icc_as16`` — the discriminating statistic: per-/16 *mean*
      uncleanliness grouped by AS.  Only an AS substrate makes distinct
      /16s of one operator resemble each other, so this is positive in
      AS-correlated worlds and exactly 0.0 in flat worlds (where the
      grouping is all singletons).
    """
    n16 = internet.slash16.size
    counts24 = np.bincount(internet.net16_index, minlength=n16)
    mean16 = (
        np.bincount(
            internet.net16_index, weights=internet.uncleanliness, minlength=n16
        )
        / np.maximum(counts24, 1)
    )
    return {
        "icc_as": within_group_icc(internet.as_of_net24, internet.uncleanliness),
        "icc_as16": within_group_icc(internet.topology.as_of_net16, mean16),
        "icc_net16": within_group_icc(
            internet.net16_index, internet.uncleanliness
        ),
        "num_as": float(internet.num_as),
        "num_net16": float(n16),
        "flat": float(internet.topology.flat),
    }
