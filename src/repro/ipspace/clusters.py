"""Network-aware clustering: heterogeneous prefixes with longest-match.

The paper's §4.1 considers and rejects the alternative to homogeneous
CIDR blocks: "heterogeneous partitioning such as network-aware clustering
[Krishnamurthy & Wang], can result in network populations that differ in
size by several orders of magnitude".  This module supplies that
alternative so the rejection can be evaluated rather than asserted:

* :class:`PrefixTable` — a routing-table-like set of heterogeneous
  prefixes with longest-prefix-match lookup (scalar and vectorised);
* :func:`synthesize_table` — a BGP-flavoured table over a
  :class:`~repro.sim.internet.SyntheticInternet`: most /16s are announced
  whole, some are deaggregated into a mix of /17../24 more-specifics,
  mimicking the size spread of real announcements.

The cluster analogue of :math:`|C_n(S)|` is
:meth:`PrefixTable.cluster_count`; the ablation in
:mod:`repro.experiments.ablation` compares its population dispersion and
density verdicts against the paper's homogeneous blocks.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.ipspace.addr import AddressLike, as_array, as_int, prefix_mask
from repro.ipspace.cidr import CIDRBlock

__all__ = ["PrefixTable", "synthesize_table"]


class PrefixTable:
    """An immutable set of heterogeneous prefixes with LPM lookup.

    Lookup semantics follow routing: an address maps to the most specific
    prefix containing it, or to no cluster at all if nothing matches.
    """

    def __init__(self, prefixes: Iterable[CIDRBlock]) -> None:
        blocks = sorted(set(prefixes))
        if not blocks:
            raise ValueError("a prefix table needs at least one prefix")
        self.prefixes: List[CIDRBlock] = blocks
        # Per-length sorted network arrays, plus the index of each network
        # back into self.prefixes, for vectorised longest-match.
        self._by_length: Dict[int, np.ndarray] = {}
        self._index_by_length: Dict[int, np.ndarray] = {}
        for length in sorted({b.prefix_len for b in blocks}):
            members = [
                (b.network, i) for i, b in enumerate(blocks) if b.prefix_len == length
            ]
            nets = np.asarray([m[0] for m in members], dtype=np.uint32)
            idx = np.asarray([m[1] for m in members], dtype=np.int64)
            order = np.argsort(nets)
            self._by_length[length] = nets[order]
            self._index_by_length[length] = idx[order]

    def __len__(self) -> int:
        return len(self.prefixes)

    def lookup(self, address: AddressLike) -> Optional[CIDRBlock]:
        """Longest-prefix match for one address (None if unrouted)."""
        value = as_int(address)
        for length in sorted(self._by_length, reverse=True):
            nets = self._by_length[length]
            masked = value & prefix_mask(length)
            position = int(np.searchsorted(nets, masked))
            if position < nets.size and nets[position] == masked:
                return self.prefixes[int(self._index_by_length[length][position])]
        return None

    def lookup_array(self, addresses: Iterable[AddressLike]) -> np.ndarray:
        """Vectorised LPM: index into :attr:`prefixes` per address, -1 if none."""
        arr = as_array(addresses)
        result = np.full(arr.shape, -1, dtype=np.int64)
        unmatched = np.ones(arr.shape, dtype=bool)
        for length in sorted(self._by_length, reverse=True):
            if not unmatched.any():
                break
            nets = self._by_length[length]
            masked = arr & np.uint32(prefix_mask(length))
            position = np.clip(np.searchsorted(nets, masked), 0, nets.size - 1)
            hit = unmatched & (nets[position] == masked)
            result[hit] = self._index_by_length[length][position[hit]]
            unmatched &= ~hit
        return result

    def cluster_count(self, addresses: Iterable[AddressLike]) -> int:
        """Distinct clusters covering the addresses (unrouted excluded).

        The heterogeneous analogue of :math:`|C_n(S)|`.
        """
        matches = self.lookup_array(addresses)
        return int(np.unique(matches[matches >= 0]).size)

    def cluster_sizes(self) -> np.ndarray:
        """Address-span of every prefix (the dispersion the paper flags)."""
        return np.asarray([b.num_addresses for b in self.prefixes], dtype=np.int64)

    def coverage_fraction(self, addresses: Iterable[AddressLike]) -> float:
        """Fraction of addresses that match some prefix."""
        arr = as_array(addresses)
        if arr.size == 0:
            return 0.0
        return float((self.lookup_array(arr) >= 0).mean())

    def __repr__(self) -> str:
        lengths = sorted(self._by_length)
        return f"PrefixTable(prefixes={len(self)}, lengths={lengths[0]}..{lengths[-1]})"


def synthesize_table(
    internet,
    rng: np.random.Generator,
    deaggregation_probability: float = 0.3,
) -> PrefixTable:
    """A BGP-flavoured heterogeneous prefix table for a synthetic Internet.

    Each occupied /16 is either announced whole (the common case) or
    deaggregated: recursively split into halves, each half announced at
    its own length down to at most /24.  The result spans /16../24
    prefixes whose address spans differ by up to 256x — the "several
    orders of magnitude" population spread of §4.1.
    """
    if not 0 <= deaggregation_probability <= 1:
        raise ValueError("deaggregation_probability must be in [0, 1]")

    slash16s = np.unique(internet.net24 & np.uint32(prefix_mask(16)))
    prefixes: List[CIDRBlock] = []

    def announce(network: int, length: int) -> None:
        if length >= 24 or rng.random() >= deaggregation_probability:
            prefixes.append(CIDRBlock(network, length))
            return
        half = 1 << (32 - (length + 1))
        announce(network, length + 1)
        announce(network + half, length + 1)

    for base in slash16s:
        announce(int(base), 16)
    return PrefixTable(prefixes)
