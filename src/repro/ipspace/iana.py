"""The IANA IPv4 /8 allocation table, circa October 2006.

The paper's *naive* density estimator "selects addresses evenly from across
all /8's which are listed as populated by IANA" (§4.2, citing the IANA IPv4
address-space registry).  This module embeds an approximation of that
registry as of the paper's study period (October 2006), so the naive
estimator can be reproduced without network access.

The table is an approximation reconstructed from the public registry's
history: individual borderline /8s (blocks allocated to RIRs within weeks
of the study window) may differ from the registry snapshot the authors
used, but the overall count (~100 populated /8s out of 256) and the
class-D/E and private exclusions match, which is what the estimator's
shape depends on.
"""

from __future__ import annotations

from typing import FrozenSet

__all__ = [
    "Status",
    "STATUS_BY_OCTET",
    "allocated_octets",
    "is_allocated",
]


class Status:
    """Allocation status labels for a /8 in the 2006 registry."""

    ALLOCATED = "allocated"  # assigned to an RIR or legacy holder
    UNALLOCATED = "unallocated"  # held by IANA, not yet assigned
    RESERVED = "reserved"  # special-purpose (0/8, 127/8, class D/E)
    PRIVATE = "private"  # RFC 1918 (10/8)


def _build_table() -> dict:
    """Construct the per-/8 status table.

    Strategy: start from "unallocated" and mark the known allocated and
    reserved ranges.  Legacy class A holders, the class B "various
    registries" space, the class C space, and RIR allocations made before
    October 2006 count as allocated.
    """
    table = {octet: Status.UNALLOCATED for octet in range(256)}

    # Special-purpose space.
    table[0] = Status.RESERVED  # "this network"
    table[10] = Status.PRIVATE  # RFC 1918
    table[127] = Status.RESERVED  # loopback
    for octet in range(224, 256):  # class D (multicast) and class E
        table[octet] = Status.RESERVED

    # Legacy class A assignments and early-RIR allocations present in the
    # registry by October 2006.
    legacy_class_a = {
        3, 4, 6, 8, 9, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22,
        24, 25, 26, 28, 29, 30, 32, 33, 34, 35, 38, 40, 43, 44, 45, 47,
        48, 51, 52, 53, 54, 55, 56, 57,
    }
    rir_allocations = {
        41,  # AfriNIC (2005)
        58, 59, 60, 61,  # APNIC
        62,  # RIPE
        63, 64, 65, 66, 67, 68, 69, 70, 71, 72, 73, 74, 75, 76,  # ARIN
        77, 78, 79, 80, 81, 82, 83, 84, 85, 86, 87, 88, 89, 90, 91,  # RIPE
        121, 122, 123, 124, 125, 126,  # APNIC (January 2006)
        189, 190,  # LACNIC (2005-2006)
        193, 194, 195, 196,  # RIPE / legacy
        198, 199, 200, 201, 202, 203, 204, 205, 206, 207, 208, 209,
        210, 211, 212, 213, 216, 217, 218, 219, 220, 221, 222,
    }
    # The legacy class B space ("various registries") and remaining legacy
    # class C space administered by RIRs.
    various_registries = set(range(128, 173)) | {192, 214, 215}

    for octet in legacy_class_a | rir_allocations | various_registries:
        table[octet] = Status.ALLOCATED
    return table


#: Mapping of first octet -> :class:`Status` label.
STATUS_BY_OCTET = _build_table()


def allocated_octets() -> FrozenSet[int]:
    """The set of first octets whose /8 is populated per the 2006 registry.

    This is the sample space for the paper's naive density estimator.
    """
    return frozenset(
        octet
        for octet, status in STATUS_BY_OCTET.items()
        if status == Status.ALLOCATED
    )


def is_allocated(octet: int) -> bool:
    """Whether the /8 with the given first octet was allocated in 2006."""
    if not 0 <= octet <= 255:
        raise ValueError(f"octet out of range: {octet}")
    return STATUS_BY_OCTET[octet] == Status.ALLOCATED
