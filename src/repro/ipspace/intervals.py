"""Precomputed interval index over IPv4 space for O(log n) lookups.

The streaming query surface answers ``score(ip)`` / ``is_blocked(ip)``
against the *current* blocklist and score table.  Both are sets of
disjoint CIDR blocks, i.e. sorted non-overlapping inclusive address
intervals, so a single ``searchsorted`` against the interval starts
resolves any address: find the last interval starting at or below the
address, then check the address against that interval's end.

The index is frozen at build time (rebuilt per ingested day by the
stream layer, which is cheap — thousands of blocks — compared to the
per-query cost it removes) and handles the paper's edge geometry:
/32 blocks are one-address intervals, reserved or unobserved ranges are
simply absent (lookups miss), and an empty blocklist is an index of
zero intervals that rejects everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.ipspace.addr import AddressLike, as_array, as_int, block_size

__all__ = ["IntervalIndex"]


@dataclass(frozen=True)
class IntervalIndex:
    """Sorted disjoint inclusive ``[start, end]`` intervals with values.

    ``starts``/``ends`` are ``uint32`` arrays; ``values`` (optional)
    carries one float payload per interval — the block's uncleanliness
    score in the stream layer.  Addresses outside every interval look
    up as misses (``False`` membership, default value).
    """

    starts: np.ndarray
    ends: np.ndarray
    values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        starts = np.asarray(self.starts, dtype=np.uint32)
        ends = np.asarray(self.ends, dtype=np.uint32)
        if starts.shape != ends.shape or starts.ndim != 1:
            raise ValueError("starts and ends must be matching 1-D arrays")
        if np.any(ends < starts):
            raise ValueError("interval ends before it starts")
        if starts.size > 1:
            if np.any(starts[1:] <= starts[:-1]):
                raise ValueError("interval starts must be strictly increasing")
            if np.any(starts[1:].astype(np.int64) <= ends[:-1].astype(np.int64)):
                raise ValueError("intervals overlap")
        starts = starts.copy()
        ends = ends.copy()
        starts.setflags(write=False)
        ends.setflags(write=False)
        object.__setattr__(self, "starts", starts)
        object.__setattr__(self, "ends", ends)
        if self.values is not None:
            values = np.asarray(self.values, dtype=np.float64).copy()
            if values.shape != starts.shape:
                raise ValueError("values shape does not match intervals")
            values.setflags(write=False)
            object.__setattr__(self, "values", values)

    @classmethod
    def empty(cls) -> "IntervalIndex":
        """An index with no intervals (every lookup misses)."""
        return cls(
            starts=np.asarray([], dtype=np.uint32),
            ends=np.asarray([], dtype=np.uint32),
        )

    @classmethod
    def from_blocks(
        cls,
        networks: np.ndarray,
        prefix_len: int,
        values: Optional[np.ndarray] = None,
    ) -> "IntervalIndex":
        """Index the sorted masked ``networks`` of one prefix length.

        Same-prefix CIDR blocks are disjoint by construction; a /32
        block degenerates to a one-address interval (``start == end``).
        """
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        networks = np.asarray(networks, dtype=np.uint32)
        span = np.int64(block_size(prefix_len) - 1)
        ends = (networks.astype(np.int64) + span).astype(np.uint32)
        return cls(starts=networks, ends=ends, values=values)

    def __len__(self) -> int:
        return int(self.starts.size)

    def covered_addresses(self) -> int:
        """Total addresses inside any interval."""
        if self.starts.size == 0:
            return 0
        spans = self.ends.astype(np.int64) - self.starts.astype(np.int64) + 1
        return int(spans.sum())

    # -- lookups ----------------------------------------------------------

    def _slots(self, addresses: np.ndarray) -> np.ndarray:
        """Candidate interval per address: last interval starting <= it."""
        return np.searchsorted(self.starts, addresses, side="right") - 1

    def lookup(self, addresses) -> np.ndarray:
        """Boolean membership mask for an address array."""
        addresses = as_array(addresses)
        if self.starts.size == 0:
            return np.zeros(addresses.shape, dtype=bool)
        slots = self._slots(addresses)
        clipped = np.maximum(slots, 0)
        return (slots >= 0) & (addresses <= self.ends[clipped])

    def contains(self, address: AddressLike) -> bool:
        """Whether one address falls inside any interval."""
        return bool(self.lookup(np.asarray([as_int(address)], dtype=np.uint32))[0])

    def values_at(self, addresses, default: float = 0.0) -> np.ndarray:
        """Per-address interval values; ``default`` outside every interval."""
        if self.values is None:
            raise ValueError("index was built without values")
        addresses = as_array(addresses)
        out = np.full(addresses.shape, float(default), dtype=np.float64)
        if self.starts.size == 0:
            return out
        slots = self._slots(addresses)
        clipped = np.maximum(slots, 0)
        hit = (slots >= 0) & (addresses <= self.ends[clipped])
        out[hit] = self.values[clipped[hit]]
        return out

    def value_of(self, address: AddressLike, default: float = 0.0) -> float:
        """The value of the interval containing one address."""
        return float(
            self.values_at(np.asarray([as_int(address)], dtype=np.uint32), default)[0]
        )

    def __repr__(self) -> str:
        return (
            f"IntervalIndex(intervals={len(self)}, "
            f"addresses={self.covered_addresses()}, "
            f"values={self.values is not None})"
        )
