"""Batched prefix-aggregation kernels over trial matrices.

The statistical layer evaluates the same block-level quantities —
:math:`|C_n(S)|` (Eq. 1/3) and :math:`|C_n(S) \\cap C_n(T)|`
(Eqs. 4-5) — over *ensembles* of equal-cardinality address sets: the
paper's 1000 random control subsets.  These kernels compute those
quantities for every trial and every prefix length in a few full-matrix
numpy passes instead of a per-trial Python loop.

All kernels take a ``(trials, cardinality)`` ``uint32`` matrix whose
**rows are sorted ascending**.  One row-sort pays for every prefix
length: prefix masking is monotone (``x <= y`` implies
``x & m <= y & m`` for any prefix mask ``m``), so a row sorted at /32
stays sorted after masking at any shorter prefix and distinct blocks can
be counted with a single neighbour-comparison pass — the rectangular
analogue of the lexsort/segment machinery in
:mod:`repro.flows.kernels`, with the row axis playing the segment role.

Rows may contain duplicate addresses (a duplicate never starts a new
block, so unique-block counts come out right); empty matrices — zero
trials or zero cardinality — yield all-zero counts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ipspace.cidr import mask_array
from repro.obs import metrics as obs_metrics

__all__ = [
    "sorted_rows",
    "block_counts_2d",
    "intersection_counts_2d",
    "member_counts_2d",
]


def sorted_rows(matrix: np.ndarray) -> np.ndarray:
    """A row-sorted ``uint32`` copy of ``matrix`` (kernel precondition)."""
    rows = np.array(matrix, dtype=np.uint32, copy=True, ndmin=2)
    rows.sort(axis=1)
    return rows


def _check_matrix(rows: np.ndarray) -> np.ndarray:
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"trial matrix must be 2-D, got shape {rows.shape}")
    if rows.dtype != np.uint32:
        raise ValueError(f"trial matrix must be uint32, got {rows.dtype}")
    return rows


def _first_in_row(masked: np.ndarray) -> np.ndarray:
    """Mask marking each row's first occurrence of every distinct value.

    ``masked`` must be row-sorted; position 0 always starts a block, and
    any later position does iff it differs from its left neighbour.
    """
    first = np.empty(masked.shape, dtype=bool)
    first[:, :1] = True
    np.not_equal(masked[:, 1:], masked[:, :-1], out=first[:, 1:])
    return first


def block_counts_2d(
    rows: np.ndarray, prefixes: Sequence[int]
) -> np.ndarray:
    """:math:`|C_n(\\text{row})|` for every row and prefix length.

    ``rows`` is a row-sorted ``(trials, cardinality)`` ``uint32`` matrix;
    the result is ``(trials, len(prefixes))`` ``int64``.  This is the
    batched form of the Figure 2/3 Monte-Carlo statistic: all 17 prefixes
    of a 1000-trial ensemble cost 17 masked neighbour-comparison passes
    over one matrix.
    """
    rows = _check_matrix(rows)
    prefixes = tuple(prefixes)
    out = np.zeros((rows.shape[0], len(prefixes)), dtype=np.int64)
    if rows.size == 0:
        return out
    obs_metrics.inc("kernels.block_counts_2d.trials", rows.shape[0])
    for column, n in enumerate(prefixes):
        masked = mask_array(rows, n)
        out[:, column] = 1 + np.count_nonzero(
            masked[:, 1:] != masked[:, :-1], axis=1
        )
    return out


def intersection_counts_2d(
    rows: np.ndarray,
    blocks_by_prefix: Sequence[np.ndarray],
    prefixes: Sequence[int],
    weights_by_prefix: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Block intersections of every row with a fixed per-prefix block set.

    For each row ``S`` and prefix ``n`` (with ``blocks_by_prefix[j]`` the
    sorted unique masked networks of the fixed report at ``n``), computes
    :math:`|C_n(S) \\cap C_n(T)|` — the Eq. 4/5 quantity batched over the
    whole ensemble.  With ``weights_by_prefix`` (one weight per fixed
    block), each intersected block contributes its weight instead of 1:
    passing per-block address multiplicities turns the kernel into "how
    many of the fixed report's *addresses* fall inside the row's blocks"
    (the §6 null-model statistic).

    ``rows`` must be row-sorted; the result is
    ``(trials, len(prefixes))`` ``int64``.
    """
    rows = _check_matrix(rows)
    prefixes = tuple(prefixes)
    if len(blocks_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(blocks_by_prefix)} block sets for {len(prefixes)} prefixes"
        )
    if weights_by_prefix is not None and len(weights_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(weights_by_prefix)} weight sets for {len(prefixes)} prefixes"
        )
    out = np.zeros((rows.shape[0], len(prefixes)), dtype=np.int64)
    if rows.size == 0:
        return out
    obs_metrics.inc("kernels.intersection_counts_2d.trials", rows.shape[0])
    for column, n in enumerate(prefixes):
        blocks = np.asarray(blocks_by_prefix[column])
        if blocks.size == 0:
            continue
        masked = mask_array(rows, n)
        hit = _first_in_row(masked)
        idx = np.searchsorted(blocks, masked)
        np.minimum(idx, blocks.size - 1, out=idx)
        hit &= blocks[idx] == masked
        if weights_by_prefix is None:
            out[:, column] = np.count_nonzero(hit, axis=1)
        else:
            weights = np.asarray(weights_by_prefix[column], dtype=np.int64)
            out[:, column] = np.where(hit, weights[idx], 0).sum(axis=1)
    return out


def member_counts_2d(
    rows: np.ndarray,
    blocks_by_prefix: Sequence[np.ndarray],
    prefixes: Sequence[int],
) -> np.ndarray:
    """How many of each row's *elements* fall inside a fixed block set.

    Unlike :func:`intersection_counts_2d` this counts addresses with
    multiplicity (the Eq. 7-9 scoring and blocklist-coverage quantity),
    so rows need not be sorted or deduplicated.  ``blocks_by_prefix[j]``
    must be sorted unique masked networks at ``prefixes[j]``; the result
    is ``(trials, len(prefixes))`` ``int64``.
    """
    rows = _check_matrix(rows)
    prefixes = tuple(prefixes)
    if len(blocks_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(blocks_by_prefix)} block sets for {len(prefixes)} prefixes"
        )
    out = np.zeros((rows.shape[0], len(prefixes)), dtype=np.int64)
    if rows.size == 0:
        return out
    obs_metrics.inc("kernels.member_counts_2d.trials", rows.shape[0])
    for column, n in enumerate(prefixes):
        blocks = np.asarray(blocks_by_prefix[column])
        if blocks.size == 0:
            continue
        masked = mask_array(rows, n)
        idx = np.searchsorted(blocks, masked)
        np.minimum(idx, blocks.size - 1, out=idx)
        out[:, column] = np.count_nonzero(blocks[idx] == masked, axis=1)
    return out
