"""Batched prefix-aggregation kernels over trial matrices.

The statistical layer evaluates the same block-level quantities —
:math:`|C_n(S)|` (Eq. 1/3) and :math:`|C_n(S) \\cap C_n(T)|`
(Eqs. 4-5) — over *ensembles* of equal-cardinality address sets: the
paper's 1000 random control subsets.  These kernels compute those
quantities for every trial and every prefix length in a few full-matrix
numpy passes instead of a per-trial Python loop.

All kernels take a ``(trials, cardinality)`` ``uint32`` matrix whose
**rows are sorted ascending**.  One row-sort pays for every prefix
length: prefix masking is monotone (``x <= y`` implies
``x & m <= y & m`` for any prefix mask ``m``), so a row sorted at /32
stays sorted after masking at any shorter prefix and distinct blocks can
be counted with a single neighbour-comparison pass — the rectangular
analogue of the lexsort/segment machinery in
:mod:`repro.flows.kernels`, with the row axis playing the segment role.

Rows may contain duplicate addresses (a duplicate never starts a new
block, so unique-block counts come out right); empty matrices — zero
trials or zero cardinality — yield all-zero counts.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.ipspace.cidr import mask_array
from repro.obs import metrics as obs_metrics

__all__ = [
    "sorted_rows",
    "block_counts_2d",
    "intersection_counts_2d",
    "member_counts_2d",
    "merge_sorted",
    "merge_unique",
    "remove_sorted",
    "merge_sorted_rows",
    "block_counts_2d_merge",
    "intersection_counts_2d_merge",
]


def sorted_rows(matrix: np.ndarray) -> np.ndarray:
    """A row-sorted ``uint32`` copy of ``matrix`` (kernel precondition)."""
    rows = np.array(matrix, dtype=np.uint32, copy=True, ndmin=2)
    rows.sort(axis=1)
    return rows


def _check_matrix(rows: np.ndarray) -> np.ndarray:
    rows = np.asarray(rows)
    if rows.ndim != 2:
        raise ValueError(f"trial matrix must be 2-D, got shape {rows.shape}")
    if rows.dtype != np.uint32:
        raise ValueError(f"trial matrix must be uint32, got {rows.dtype}")
    return rows


def _first_in_row(masked: np.ndarray) -> np.ndarray:
    """Mask marking each row's first occurrence of every distinct value.

    ``masked`` must be row-sorted; position 0 always starts a block, and
    any later position does iff it differs from its left neighbour.
    """
    first = np.empty(masked.shape, dtype=bool)
    first[:, :1] = True
    np.not_equal(masked[:, 1:], masked[:, :-1], out=first[:, 1:])
    return first


def block_counts_2d(
    rows: np.ndarray, prefixes: Sequence[int]
) -> np.ndarray:
    """:math:`|C_n(\\text{row})|` for every row and prefix length.

    ``rows`` is a row-sorted ``(trials, cardinality)`` ``uint32`` matrix;
    the result is ``(trials, len(prefixes))`` ``int64``.  This is the
    batched form of the Figure 2/3 Monte-Carlo statistic: all 17 prefixes
    of a 1000-trial ensemble cost 17 masked neighbour-comparison passes
    over one matrix.
    """
    rows = _check_matrix(rows)
    prefixes = tuple(prefixes)
    out = np.zeros((rows.shape[0], len(prefixes)), dtype=np.int64)
    if rows.size == 0:
        return out
    obs_metrics.inc("kernels.block_counts_2d.trials", rows.shape[0])
    for column, n in enumerate(prefixes):
        masked = mask_array(rows, n)
        out[:, column] = 1 + np.count_nonzero(
            masked[:, 1:] != masked[:, :-1], axis=1
        )
    return out


def intersection_counts_2d(
    rows: np.ndarray,
    blocks_by_prefix: Sequence[np.ndarray],
    prefixes: Sequence[int],
    weights_by_prefix: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Block intersections of every row with a fixed per-prefix block set.

    For each row ``S`` and prefix ``n`` (with ``blocks_by_prefix[j]`` the
    sorted unique masked networks of the fixed report at ``n``), computes
    :math:`|C_n(S) \\cap C_n(T)|` — the Eq. 4/5 quantity batched over the
    whole ensemble.  With ``weights_by_prefix`` (one weight per fixed
    block), each intersected block contributes its weight instead of 1:
    passing per-block address multiplicities turns the kernel into "how
    many of the fixed report's *addresses* fall inside the row's blocks"
    (the §6 null-model statistic).

    ``rows`` must be row-sorted; the result is
    ``(trials, len(prefixes))`` ``int64``.
    """
    rows = _check_matrix(rows)
    prefixes = tuple(prefixes)
    if len(blocks_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(blocks_by_prefix)} block sets for {len(prefixes)} prefixes"
        )
    if weights_by_prefix is not None and len(weights_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(weights_by_prefix)} weight sets for {len(prefixes)} prefixes"
        )
    out = np.zeros((rows.shape[0], len(prefixes)), dtype=np.int64)
    if rows.size == 0:
        return out
    obs_metrics.inc("kernels.intersection_counts_2d.trials", rows.shape[0])
    for column, n in enumerate(prefixes):
        blocks = np.asarray(blocks_by_prefix[column])
        if blocks.size == 0:
            continue
        masked = mask_array(rows, n)
        hit = _first_in_row(masked)
        idx = np.searchsorted(blocks, masked)
        np.minimum(idx, blocks.size - 1, out=idx)
        hit &= blocks[idx] == masked
        if weights_by_prefix is None:
            out[:, column] = np.count_nonzero(hit, axis=1)
        else:
            weights = np.asarray(weights_by_prefix[column], dtype=np.int64)
            out[:, column] = np.where(hit, weights[idx], 0).sum(axis=1)
    return out


def member_counts_2d(
    rows: np.ndarray,
    blocks_by_prefix: Sequence[np.ndarray],
    prefixes: Sequence[int],
) -> np.ndarray:
    """How many of each row's *elements* fall inside a fixed block set.

    Unlike :func:`intersection_counts_2d` this counts addresses with
    multiplicity (the Eq. 7-9 scoring and blocklist-coverage quantity),
    so rows need not be sorted or deduplicated.  ``blocks_by_prefix[j]``
    must be sorted unique masked networks at ``prefixes[j]``; the result
    is ``(trials, len(prefixes))`` ``int64``.
    """
    rows = _check_matrix(rows)
    prefixes = tuple(prefixes)
    if len(blocks_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(blocks_by_prefix)} block sets for {len(prefixes)} prefixes"
        )
    out = np.zeros((rows.shape[0], len(prefixes)), dtype=np.int64)
    if rows.size == 0:
        return out
    obs_metrics.inc("kernels.member_counts_2d.trials", rows.shape[0])
    for column, n in enumerate(prefixes):
        blocks = np.asarray(blocks_by_prefix[column])
        if blocks.size == 0:
            continue
        masked = mask_array(rows, n)
        idx = np.searchsorted(blocks, masked)
        np.minimum(idx, blocks.size - 1, out=idx)
        out[:, column] = np.count_nonzero(blocks[idx] == masked, axis=1)
    return out


# -- sorted-merge incremental kernels ---------------------------------------
#
# The streaming layer never re-sorts: a day-batch arrives sorted, the
# rolling state is sorted, and a two-searchsorted merge places both in
# O((n+m) log) vectorised work.  Masking monotonicity (the module-doc
# invariant) carries over: a merged row is sorted at /32, hence sorted
# after masking at any prefix, so the incremental count kernels below
# only have to find which *batch* elements start blocks the existing
# rows did not already contain.


def merge_sorted(existing: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Merge two sorted 1-D arrays (duplicates kept), without re-sorting.

    Classic merge-path scatter: each element's output position is its
    own index plus the count of the *other* array's elements before it
    (ties broken existing-first, so the merge is stable).
    """
    existing = np.asarray(existing)
    batch = np.asarray(batch, dtype=existing.dtype)
    out = np.empty(existing.size + batch.size, dtype=existing.dtype)
    out[np.searchsorted(batch, existing, side="left")
        + np.arange(existing.size)] = existing
    out[np.searchsorted(existing, batch, side="right")
        + np.arange(batch.size)] = batch
    return out


def merge_unique(
    existing: np.ndarray, batch: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Merge a sorted-unique ``batch`` into a sorted-unique ``existing``.

    Returns ``(merged, fresh)`` where ``fresh`` marks the batch elements
    that were *not* already present — the per-day set delta every rolling
    report and block counter in the stream layer is driven by.
    """
    existing = np.asarray(existing)
    batch = np.asarray(batch, dtype=existing.dtype)
    if batch.size == 0:
        return existing, np.zeros(0, dtype=bool)
    if existing.size == 0:
        return batch.copy(), np.ones(batch.size, dtype=bool)
    idx = np.searchsorted(existing, batch)
    clipped = np.minimum(idx, existing.size - 1)
    fresh = ~((idx < existing.size) & (existing[clipped] == batch))
    if not fresh.any():
        return existing, fresh
    merged = np.insert(existing, idx[fresh], batch[fresh])
    return merged, fresh


def remove_sorted(existing: np.ndarray, victims: np.ndarray) -> np.ndarray:
    """Drop the (sorted-unique) ``victims`` present in sorted ``existing``."""
    existing = np.asarray(existing)
    victims = np.asarray(victims, dtype=existing.dtype)
    if existing.size == 0 or victims.size == 0:
        return existing
    idx = np.searchsorted(existing, victims)
    clipped = np.minimum(idx, existing.size - 1)
    present = (idx < existing.size) & (existing[clipped] == victims)
    if not present.any():
        return existing
    return np.delete(existing, idx[present])


def _rowwise_searchsorted(
    rows: np.ndarray, values: np.ndarray, side: str = "left"
) -> np.ndarray:
    """Per-row ``searchsorted``: positions of ``values[t]`` in ``rows[t]``.

    One flat searchsorted serves every row: promoting both operands to
    ``int64`` and adding ``row_index * 2**32`` makes rows disjoint
    key ranges, so a single sorted lookup resolves all trials at once.
    """
    trials, width = rows.shape
    offset = np.arange(trials, dtype=np.int64)[:, None] << np.int64(32)
    flat_rows = (rows.astype(np.int64) + offset).ravel()
    flat_values = (values.astype(np.int64) + offset).ravel()
    idx = np.searchsorted(flat_rows, flat_values, side=side)
    return idx.reshape(values.shape) - np.arange(trials)[:, None] * width


def merge_sorted_rows(rows: np.ndarray, batch: np.ndarray) -> np.ndarray:
    """Row-wise sorted merge: ``(T, k)`` + ``(T, j)`` → sorted ``(T, k+j)``.

    Both inputs must be row-sorted ``uint32``; the result is each row's
    sorted merge, computed with two rank-scatter passes instead of an
    ``O((k+j) log(k+j))`` re-sort per row — the incremental path a
    day-batch of new trial columns takes into an existing ensemble.
    """
    rows = _check_matrix(rows)
    batch = _check_matrix(batch)
    if rows.shape[0] != batch.shape[0]:
        raise ValueError(
            f"row-count mismatch: {rows.shape[0]} != {batch.shape[0]}"
        )
    trials, width = rows.shape
    out = np.empty((trials, width + batch.shape[1]), dtype=np.uint32)
    if out.size == 0:
        return out
    obs_metrics.inc("kernels.merge_sorted_rows.trials", trials)
    row_index = np.arange(trials)[:, None]
    pos_rows = _rowwise_searchsorted(batch, rows, side="left") + np.arange(width)
    pos_batch = (
        _rowwise_searchsorted(rows, batch, side="right")
        + np.arange(batch.shape[1])
    )
    out[row_index, pos_rows] = rows
    out[row_index, pos_batch] = batch
    return out


def _new_in_rows(rows_masked: np.ndarray, batch_masked: np.ndarray) -> np.ndarray:
    """Which batch cells start a block absent from the existing rows.

    Both operands are row-sorted masked matrices; a batch cell counts
    iff it is its row's first occurrence within the batch *and* not a
    member of the corresponding existing row.
    """
    new = _first_in_row(batch_masked)
    if rows_masked.shape[1] == 0:
        return new
    idx = _rowwise_searchsorted(rows_masked, batch_masked, side="left")
    clipped = np.minimum(idx, rows_masked.shape[1] - 1)
    member = (idx < rows_masked.shape[1]) & (
        np.take_along_axis(rows_masked, clipped, axis=1) == batch_masked
    )
    return new & ~member


def block_counts_2d_merge(
    prev_counts: np.ndarray,
    rows: np.ndarray,
    batch: np.ndarray,
    prefixes: Sequence[int],
) -> np.ndarray:
    """Update :func:`block_counts_2d` for ``merge_sorted_rows(rows, batch)``.

    ``prev_counts`` must be ``block_counts_2d(rows, prefixes)``; the
    incremental cost is proportional to the batch width, not the merged
    width — the whole point of folding day-batches instead of
    recounting the window.
    """
    rows = _check_matrix(rows)
    batch = _check_matrix(batch)
    prefixes = tuple(prefixes)
    out = np.array(prev_counts, dtype=np.int64, copy=True)
    if batch.size == 0:
        return out
    obs_metrics.inc("kernels.block_counts_2d_merge.trials", batch.shape[0])
    for column, n in enumerate(prefixes):
        fresh = _new_in_rows(mask_array(rows, n), mask_array(batch, n))
        out[:, column] += np.count_nonzero(fresh, axis=1)
    return out


def intersection_counts_2d_merge(
    prev_counts: np.ndarray,
    rows: np.ndarray,
    batch: np.ndarray,
    blocks_by_prefix: Sequence[np.ndarray],
    prefixes: Sequence[int],
    weights_by_prefix: Optional[Sequence[np.ndarray]] = None,
) -> np.ndarray:
    """Update :func:`intersection_counts_2d` after merging ``batch`` in.

    ``prev_counts`` must be the intersection counts of ``rows`` against
    the same fixed per-prefix block sets (and weights, if any); only
    blocks newly contributed by the batch can add to the counts, so the
    update touches batch-width cells per prefix.
    """
    rows = _check_matrix(rows)
    batch = _check_matrix(batch)
    prefixes = tuple(prefixes)
    if len(blocks_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(blocks_by_prefix)} block sets for {len(prefixes)} prefixes"
        )
    if weights_by_prefix is not None and len(weights_by_prefix) != len(prefixes):
        raise ValueError(
            f"{len(weights_by_prefix)} weight sets for {len(prefixes)} prefixes"
        )
    out = np.array(prev_counts, dtype=np.int64, copy=True)
    if batch.size == 0:
        return out
    obs_metrics.inc(
        "kernels.intersection_counts_2d_merge.trials", batch.shape[0]
    )
    for column, n in enumerate(prefixes):
        blocks = np.asarray(blocks_by_prefix[column])
        if blocks.size == 0:
            continue
        masked = mask_array(batch, n)
        hit = _new_in_rows(mask_array(rows, n), masked)
        idx = np.searchsorted(blocks, masked)
        np.minimum(idx, blocks.size - 1, out=idx)
        hit &= blocks[idx] == masked
        if weights_by_prefix is None:
            out[:, column] += np.count_nonzero(hit, axis=1)
        else:
            weights = np.asarray(weights_by_prefix[column], dtype=np.int64)
            out[:, column] += np.where(hit, weights[idx], 0).sum(axis=1)
    return out
