"""Reserved and otherwise non-routable address filtering.

The paper filters every report so that it contains only addresses that are
outside the observed network and not otherwise reserved ("e.g., all
addresses specified in RFC 1918 have been removed from reports", §3.2).
This module implements that filter.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.ipspace.addr import AddressLike, as_array, as_int
from repro.ipspace.cidr import CIDRBlock

__all__ = [
    "RESERVED_BLOCKS",
    "is_reserved",
    "reserved_mask",
    "filter_reserved",
]

#: Blocks that were reserved / special-purpose at the paper's study time.
RESERVED_BLOCKS: Tuple[CIDRBlock, ...] = (
    CIDRBlock.parse("0.0.0.0/8"),  # "this network"
    CIDRBlock.parse("10.0.0.0/8"),  # RFC 1918
    CIDRBlock.parse("127.0.0.0/8"),  # loopback
    CIDRBlock.parse("169.254.0.0/16"),  # link-local
    CIDRBlock.parse("172.16.0.0/12"),  # RFC 1918
    CIDRBlock.parse("192.0.2.0/24"),  # TEST-NET
    CIDRBlock.parse("192.168.0.0/16"),  # RFC 1918
    CIDRBlock.parse("198.18.0.0/15"),  # benchmarking
    CIDRBlock.parse("224.0.0.0/4"),  # multicast (class D)
    CIDRBlock.parse("240.0.0.0/4"),  # class E
)

# Pre-computed (first, last) integer ranges for the vectorised path.
_RANGES = np.asarray(
    [(b.first_address, b.last_address) for b in RESERVED_BLOCKS], dtype=np.uint32
)


def is_reserved(address: AddressLike) -> bool:
    """Whether a single address falls in any reserved block.

    >>> is_reserved("192.168.1.1")
    True
    >>> is_reserved("62.4.1.1")
    False
    """
    value = as_int(address)
    return any(block.contains(value) for block in RESERVED_BLOCKS)


def reserved_mask(addresses: Iterable[AddressLike]) -> np.ndarray:
    """Boolean array marking which addresses are reserved."""
    arr = as_array(addresses)
    mask = np.zeros(arr.shape, dtype=bool)
    for first, last in _RANGES:
        mask |= (arr >= first) & (arr <= last)
    return mask


def filter_reserved(addresses: Iterable[AddressLike]) -> np.ndarray:
    """Drop reserved addresses, returning the survivors as ``uint32``.

    This is the report-sanitisation step from §3.2.
    """
    arr = as_array(addresses)
    return arr[~reserved_mask(arr)]
