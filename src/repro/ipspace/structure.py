"""Address-structure profiling, after Kohler et al.

The paper's empirical control estimate exists because "IP addresses are
not evenly distributed across IPv4 space" (Kohler et al., cited in §4.2):
a uniform model badly over-disperses.  This module measures that
structure so the claim can be checked on any address set — including the
synthetic Internet itself, whose generator is validated against the two
qualitative signatures of real address populations:

* **sub-exponential aggregation growth** — for uniform addresses the
  number of occupied blocks doubles with every added prefix bit until
  saturation; real populations grow much more slowly (mass is
  concentrated in few blocks);
* **low occupancy entropy** — addresses are unevenly spread over the
  occupied blocks, so the normalised Shannon entropy of the per-block
  address counts sits well below 1 at the prefix lengths where structure
  lives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.ipspace.addr import AddressLike, as_array
from repro.ipspace.cidr import mask_array

__all__ = ["StructureProfile", "profile_addresses"]

#: Prefix lengths profiled by default (octet boundaries plus the paper's
#: analysis band).
DEFAULT_PREFIXES = tuple(range(8, 33, 2))


@dataclass(frozen=True)
class StructureProfile:
    """Aggregation structure of one address set."""

    address_count: int
    prefixes: tuple
    block_counts: Dict[int, int]
    occupancy_entropy: Dict[int, float]  # normalised, in [0, 1]

    def growth_ratios(self) -> Dict[int, float]:
        """Block-count growth per step between consecutive profiled
        prefixes, normalised to a per-bit rate (2.0 = uniform doubling)."""
        ratios = {}
        for a, b in zip(self.prefixes, self.prefixes[1:]):
            bits = b - a
            if self.block_counts[a] == 0:
                continue
            total = self.block_counts[b] / self.block_counts[a]
            ratios[a] = total ** (1.0 / bits)
        return ratios

    def mean_growth(self, lo: int = 16, hi: int = 24) -> float:
        """Mean per-bit growth over the unsaturated analysis band."""
        values = [
            ratio for prefix, ratio in self.growth_ratios().items()
            if lo <= prefix < hi
        ]
        if not values:
            raise ValueError(f"no profiled prefixes in [{lo}, {hi})")
        return float(np.mean(values))

    def mean_entropy(self, lo: int = 16, hi: int = 24) -> float:
        """Mean normalised occupancy entropy over the analysis band."""
        values = [
            self.occupancy_entropy[prefix]
            for prefix in self.prefixes
            if lo <= prefix < hi
        ]
        if not values:
            raise ValueError(f"no profiled prefixes in [{lo}, {hi})")
        return float(np.mean(values))

    def unsaturated_growth(self) -> Optional[float]:
        """Mean per-bit growth over the *collision-dominated* steps.

        Growth is only informative while the available blocks are scarce
        relative to the addresses (block count under a quarter of the
        address count); once each address sits in its own block the curve
        flattens for uniform and structured sets alike.  Returns None
        when no profiled step qualifies.
        """
        values = [
            ratio
            for prefix, ratio in self.growth_ratios().items()
            if self.block_counts[self._next_prefix(prefix)]
            < 0.25 * self.address_count
        ]
        if not values:
            return None
        return float(np.mean(values))

    def _next_prefix(self, prefix: int) -> int:
        position = self.prefixes.index(prefix)
        return self.prefixes[position + 1]

    def looks_uniform(self, growth_floor: float = 1.85, entropy_floor: float = 0.97) -> bool:
        """Uniform signature: near-doubling unsaturated growth AND
        near-max occupancy entropy at the shortest profiled prefix.

        Returns False when the profile has no unsaturated step to judge.
        """
        growth = self.unsaturated_growth()
        if growth is None:
            return False
        shortest = self.prefixes[0]
        return (
            growth >= growth_floor
            and self.occupancy_entropy[shortest] >= entropy_floor
        )

    def rows(self) -> list:
        growth = self.growth_ratios()
        return [
            {
                "prefix": n,
                "blocks": self.block_counts[n],
                "per_bit_growth": round(growth[n], 3) if n in growth else "-",
                "occupancy_entropy": round(self.occupancy_entropy[n], 3),
            }
            for n in self.prefixes
        ]


def profile_addresses(
    addresses: Iterable[AddressLike],
    prefixes: Sequence[int] = DEFAULT_PREFIXES,
) -> StructureProfile:
    """Profile the aggregation structure of an address set."""
    arr = np.unique(as_array(addresses))
    if arr.size == 0:
        raise ValueError("cannot profile an empty address set")
    prefixes = tuple(sorted(prefixes))

    block_counts: Dict[int, int] = {}
    entropy: Dict[int, float] = {}
    for n in prefixes:
        masked = mask_array(arr, n)
        _, counts = np.unique(masked, return_counts=True)
        block_counts[n] = int(counts.size)
        if counts.size <= 1:
            entropy[n] = 1.0 if counts.size == 1 else 0.0
            continue
        p = counts / counts.sum()
        h = float(-(p * np.log(p)).sum())
        entropy[n] = h / float(np.log(counts.size))
    return StructureProfile(
        address_count=int(arr.size),
        prefixes=prefixes,
        block_counts=block_counts,
        occupancy_entropy=entropy,
    )
