"""Zero-dependency observability: tracing, metrics, run manifests.

Three stdlib-only modules threaded through every layer of the
reproduction:

``repro.obs.trace``
    Nested :class:`~repro.obs.trace.Span` timing with a process-global
    tracer; disabled by default with a one-attribute-check no-op fast
    path, serialisable so worker-process spans merge into the
    supervisor's tree.
``repro.obs.metrics``
    Typed counters/gauges/histograms (fixed log-spaced buckets, so
    merges are deterministic), JSON and Prometheus-text export, and the
    structured :func:`~repro.obs.metrics.warn_event` channel.
``repro.obs.manifest``
    ``runs/<fingerprint>-<n>/manifest.json`` records tying every CLI
    run's output to its config fingerprint, seed, versions, metrics and
    span tree.

Nothing in this package imports from the rest of :mod:`repro` at import
time, so any layer — the engine, the store, the detectors — can import
it without cycles.
"""

import time as _time
from contextlib import contextmanager

try:
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX
    _resource = None


def _peak_rss_kb() -> int:
    """Process-lifetime peak resident set in KB (0 when unknown)."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return 0
    return int(_resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss)

from repro.obs import manifest, metrics, render, trace
from repro.obs.manifest import (
    MANIFEST_SCHEMA_VERSION,
    find_run,
    list_runs,
    load_manifest,
    new_run_dir,
    resolve_runs_dir,
    write_manifest,
)
from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    warn_event,
)
from repro.obs.trace import Span, Tracer, attach, coverage, span, tracer

__all__ = [
    "trace",
    "metrics",
    "manifest",
    "render",
    "Span",
    "Tracer",
    "span",
    "tracer",
    "attach",
    "coverage",
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BOUNDS",
    "MetricsRegistry",
    "warn_event",
    "MANIFEST_SCHEMA_VERSION",
    "resolve_runs_dir",
    "new_run_dir",
    "write_manifest",
    "load_manifest",
    "list_runs",
    "find_run",
    "instrument",
]


@contextmanager
def instrument(name: str, events=None, **attrs):
    """Span + duration histogram + optional throughput, in one line.

    Wraps a block in ``span(name)``, records the elapsed time into the
    ``<name>.seconds`` histogram, and — when ``events`` (a unit count:
    flows, queries, addresses) is given — bumps the ``<name>.events``
    counter and the ``<name>.events_per_sec`` gauge.  Metrics are always
    recorded; the span is free when tracing is disabled.
    """
    started = _time.perf_counter()
    with trace.span(name, **attrs):
        yield
    elapsed = _time.perf_counter() - started
    metrics.observe(f"{name}.seconds", elapsed)
    rss_kb = _peak_rss_kb()
    if rss_kb:
        # The process-lifetime high-water mark as of this stage's end —
        # a cheap per-stage memory trace (strictly non-decreasing).
        metrics.set_gauge(f"{name}.peak_rss_kb", rss_kb)
    if events is not None:
        events = int(events)
        metrics.inc(f"{name}.events", events)
        if elapsed > 0:
            metrics.set_gauge(f"{name}.events_per_sec", events / elapsed)
