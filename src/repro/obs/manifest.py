"""Run manifests: every CLI run leaves a traceable record on disk.

A manifest ties a produced table/figure back to its exact inputs:
``runs/<fingerprint>-<n>/manifest.json`` records the configuration
fingerprint, seed, tool versions, the metrics snapshot and the full
span tree of the run, and ``metrics.prom`` beside it carries the flat
Prometheus export.  ``uncleanliness trace <run>`` pretty-prints the
stored span tree; any figure in a paper draft can be traced to the
manifest of the run that drew it.

Location: ``./runs`` by default, ``$REPRO_RUNS_DIR`` overrides, and an
*empty* ``$REPRO_RUNS_DIR`` disables manifests entirely (the same
convention as ``$REPRO_CACHE_DIR``).  Manifest writing is best-effort:
an unwritable runs directory warns through the structured event channel
and never fails the run.
"""

from __future__ import annotations

import json
import logging
import os
import platform
import re
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "RUNS_ENV",
    "MANIFEST_SCHEMA_VERSION",
    "resolve_runs_dir",
    "new_run_dir",
    "write_manifest",
    "load_manifest",
    "list_runs",
    "find_run",
]

log = logging.getLogger("repro.obs.manifest")

#: Environment override for the runs directory; empty disables.
RUNS_ENV = "REPRO_RUNS_DIR"

#: Bump on any backwards-incompatible manifest layout change.
MANIFEST_SCHEMA_VERSION = 1

_RUN_DIR_RE = re.compile(r"^(?P<fp>[0-9a-f]+)-(?P<n>\d+)$")


def resolve_runs_dir(ensure: bool = False) -> Optional[Path]:
    """The run-manifest root, or ``None`` when disabled.

    ``$REPRO_RUNS_DIR`` overrides the default ``./runs``; an empty value
    disables manifests.  With ``ensure=True`` the directory is created,
    and an uncreatable directory degrades to ``None`` with a structured
    warning instead of failing the run.
    """
    env = os.environ.get(RUNS_ENV)
    if env is not None:
        if not env.strip():
            return None
        path = Path(env)
    else:
        path = Path("runs")
    if not ensure:
        return path
    try:
        path.mkdir(parents=True, exist_ok=True)
    except OSError as err:
        obs_metrics.warn_event(
            "runs.dir_unusable",
            f"runs directory unusable; skipping manifest: {err}",
            logger=log,
            dir=str(path),
        )
        return None
    return path


def new_run_dir(fingerprint: str, runs_dir: Optional[Path] = None) -> Optional[Path]:
    """Create ``<runs>/<fp12>-<n>`` with the next free ``n`` (from 1)."""
    root = runs_dir if runs_dir is not None else resolve_runs_dir(ensure=True)
    if root is None:
        return None
    prefix = fingerprint[:12]
    taken = []
    if root.is_dir():
        for entry in root.iterdir():
            match = _RUN_DIR_RE.match(entry.name)
            if match and match.group("fp") == prefix:
                taken.append(int(match.group("n")))
    serial = max(taken, default=0) + 1
    while True:
        candidate = root / f"{prefix}-{serial}"
        try:
            candidate.mkdir(parents=True, exist_ok=False)
            return candidate
        except FileExistsError:
            serial += 1
        except OSError as err:
            obs_metrics.warn_event(
                "runs.dir_unusable",
                f"cannot create run directory; skipping manifest: {err}",
                logger=log,
                dir=str(candidate),
            )
            return None


def _versions() -> Dict[str, Any]:
    import numpy

    try:  # late import: repro.__init__ imports layers that import us
        from repro import __version__ as repro_version
    except Exception:  # pragma: no cover - partial-init edge
        repro_version = "unknown"
    try:
        from repro.engine.store import STORE_FORMAT_VERSION
    except Exception:  # pragma: no cover - partial-init edge
        STORE_FORMAT_VERSION = None
    return {
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "repro": repro_version,
        "store_format": STORE_FORMAT_VERSION,
    }


def write_manifest(
    *,
    command: str,
    fingerprint: str,
    seed: Optional[int],
    argv: Optional[List[str]] = None,
    span: Optional[dict] = None,
    metrics: Optional[Dict[str, dict]] = None,
    exit_code: Optional[int] = None,
    extra: Optional[Dict[str, Any]] = None,
    runs_dir: Optional[Path] = None,
) -> Optional[Path]:
    """Write one run's manifest; returns its path, or ``None`` if disabled.

    Also writes the Prometheus text export of the current global
    metrics registry to ``metrics.prom`` in the same run directory.
    Best-effort: any IO failure warns and returns ``None``.
    """
    run_dir = new_run_dir(fingerprint, runs_dir=runs_dir)
    if run_dir is None:
        return None
    manifest = {
        "schema": MANIFEST_SCHEMA_VERSION,
        "command": command,
        "argv": list(argv) if argv is not None else None,
        "fingerprint": fingerprint,
        "seed": seed,
        "created_unix": time.time(),
        "versions": _versions(),
        "exit_code": exit_code,
        "metrics": metrics if metrics is not None else obs_metrics.registry().snapshot(),
        "span": span,
        "span_coverage": None if span is None else round(obs_trace.coverage(span), 4),
    }
    if extra:
        manifest.update(extra)
    path = run_dir / "manifest.json"
    try:
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
        (run_dir / "metrics.prom").write_text(
            obs_metrics.registry().to_prometheus()
        )
    except OSError as err:
        obs_metrics.warn_event(
            "runs.write_failed",
            f"could not write run manifest: {err}",
            logger=log,
            dir=str(run_dir),
        )
        return None
    return path


def load_manifest(path: Path) -> dict:
    """Parse a manifest from a file or a run directory."""
    path = Path(path)
    if path.is_dir():
        path = path / "manifest.json"
    return json.loads(path.read_text())


def list_runs(runs_dir: Optional[Path] = None) -> List[Path]:
    """Every run directory holding a manifest, oldest first."""
    root = runs_dir if runs_dir is not None else resolve_runs_dir()
    if root is None or not root.is_dir():
        return []
    runs = [
        entry
        for entry in root.iterdir()
        if entry.is_dir() and (entry / "manifest.json").is_file()
    ]
    return sorted(runs, key=lambda p: (p / "manifest.json").stat().st_mtime)


def find_run(token: str, runs_dir: Optional[Path] = None) -> Optional[Path]:
    """Resolve a user-supplied run selector to a run directory.

    Accepts ``latest``, a run directory name (``<fp12>-<n>``), a
    fingerprint prefix (newest matching run wins), or a filesystem path.
    """
    candidate = Path(token)
    if candidate.is_dir() and (candidate / "manifest.json").is_file():
        return candidate
    if candidate.is_file() and candidate.name == "manifest.json":
        return candidate.parent
    runs = list_runs(runs_dir)
    if not runs:
        return None
    if token in ("latest", ""):
        return runs[-1]
    for run in reversed(runs):
        if run.name == token or run.name.startswith(token):
            return run
    return None
