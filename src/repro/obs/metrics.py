"""Typed metrics: counters, gauges and deterministic-bucket histograms.

A process-global :class:`MetricsRegistry` collects the run's vital
signs — cache hit ratio, fault retries, flows/sec, events/sec,
per-stage bytes, RNG stream counts — and exports them as JSON (for the
run manifest) or a flat Prometheus-style text format (uploaded from
CI).

Histograms use **fixed log-spaced buckets** (quarter-decades from 1e-7
to 1e4) so histograms recorded in different processes or chunks merge
deterministically: merging is integer addition of bucket counts, and
the bucket layout never depends on the data.  Only the ``sum`` field is
floating-point; its last-ulp value can depend on merge order, which is
why determinism tests compare bucket counts exactly and sums
approximately.

The module also carries the **structured warning channel**
:func:`warn_event`: instead of a bare ``warnings.warn`` or an
unparseable prose log line, a warning increments the
``events.warn.<event>`` counter (assertable by tests and the chaos CI
legs) and emits one ``key=value``-structured log record through the
caller's logger.

Dependency-free (stdlib only); never imports from the rest of
:mod:`repro`.
"""

from __future__ import annotations

import json
import logging
import math
import re
import threading
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HISTOGRAM_BOUNDS",
    "MetricsRegistry",
    "registry",
    "set_registry",
    "reset",
    "inc",
    "observe",
    "set_gauge",
    "warn_event",
    "events_logger",
]

#: Quarter-decade log-spaced bucket upper bounds: 1e-7 .. 1e4 seconds
#: (or bytes, or whatever unit the histogram carries).  Fixed at import
#: time so every process lays buckets out identically and merges are
#: deterministic.
HISTOGRAM_BOUNDS: Tuple[float, ...] = tuple(
    10.0 ** (k / 4.0) for k in range(-28, 17)
)

_EVENTS_LOG = logging.getLogger("repro.obs.events")


class Counter:
    """A monotonically increasing integer."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Gauge:
    """A last-write-wins float (rates, sizes, levels)."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self.value}


class Histogram:
    """Fixed-bucket histogram; merging is deterministic integer math.

    ``counts[i]`` counts observations ``<= bounds[i]``; the final
    slot is the +Inf bucket.  ``sum``/``count``/``min``/``max`` ride
    along for summary statistics.
    """

    kind = "histogram"
    __slots__ = ("bounds", "counts", "sum", "count", "min", "max")

    def __init__(self, bounds: Sequence[float] = HISTOGRAM_BOUNDS) -> None:
        self.bounds: Tuple[float, ...] = tuple(bounds)
        if any(b2 <= b1 for b1, b2 in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0
        self.min = math.inf
        self.max = -math.inf

    def _bucket(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self.sum += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "Histogram") -> None:
        """Fold ``other`` in; bucket layouts must match exactly."""
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.sum += other.sum
        self.count += other.count
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def snapshot(self) -> dict:
        return {
            "type": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            # Sparse form: only occupied buckets, keyed by upper bound.
            "buckets": {
                ("+Inf" if i == len(self.bounds) else repr(self.bounds[i])): c
                for i, c in enumerate(self.counts)
                if c
            },
        }


class MetricsRegistry:
    """Name-keyed, get-or-create registry of typed metrics.

    Thread-safe creation; individual updates are GIL-atomic enough for
    the single-writer usage here (worker processes never share one).
    """

    def __init__(self) -> None:
        self._metrics: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind: str):
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    metric = factory()
                    self._metrics[name] = metric
        if metric.kind != kind:
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, "gauge")

    def histogram(
        self, name: str, bounds: Sequence[float] = HISTOGRAM_BOUNDS
    ) -> Histogram:
        return self._get_or_create(name, lambda: Histogram(bounds), "histogram")

    def get(self, name: str):
        """The metric registered under ``name``, or ``None``."""
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    # -- export -----------------------------------------------------------

    def snapshot(self) -> Dict[str, dict]:
        """``{name: metric snapshot}``, sorted by name (JSON-ready)."""
        return {name: self._metrics[name].snapshot() for name in self.names()}

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self, prefix: str = "repro") -> str:
        """Flat Prometheus-style text exposition of every metric."""
        lines: List[str] = []
        for name in self.names():
            metric = self._metrics[name]
            flat = _prom_name(f"{prefix}.{name}")
            if metric.kind in ("counter", "gauge"):
                lines.append(f"# TYPE {flat} {metric.kind}")
                lines.append(f"{flat} {_prom_value(metric.value)}")
            else:
                lines.append(f"# TYPE {flat} histogram")
                cumulative = 0
                for i, count in enumerate(metric.counts):
                    cumulative += count
                    le = (
                        "+Inf"
                        if i == len(metric.bounds)
                        else _prom_value(metric.bounds[i])
                    )
                    if count or le == "+Inf":
                        lines.append(
                            f'{flat}_bucket{{le="{le}"}} {cumulative}'
                        )
                lines.append(f"{flat}_sum {_prom_value(metric.sum)}")
                lines.append(f"{flat}_count {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


def _prom_name(name: str) -> str:
    flat = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return flat


def _prom_value(value) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def set_registry(new: MetricsRegistry) -> MetricsRegistry:
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = new
    return previous


def reset() -> None:
    """Drop every metric in the global registry (run/test boundaries)."""
    _REGISTRY.clear()


# -- terse module-level recording (what instrumented code calls) -----------


def inc(name: str, amount: int = 1) -> None:
    _REGISTRY.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    _REGISTRY.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    _REGISTRY.gauge(name).set(value)


def events_logger() -> logging.Logger:
    return _EVENTS_LOG


def warn_event(
    event: str,
    message: str,
    *,
    logger: Optional[logging.Logger] = None,
    **fields: Any,
) -> None:
    """Structured warning: counted in metrics, logged as ``key=value``.

    ``event`` is a dotted slug (``workers.malformed``); the counter
    ``events.warn.<event>`` makes the warning assertable by tests and
    the chaos CI legs.  ``logger`` defaults to ``repro.obs.events`` but
    call sites pass their module logger so existing log-capture
    expectations keep working.
    """
    inc(f"events.warn.{event}")
    suffix = " ".join(f"{k}={v}" for k, v in sorted(fields.items()))
    (logger or _EVENTS_LOG).warning(
        "%s%s", message, f" [{event} {suffix}]" if suffix else f" [{event}]"
    )
