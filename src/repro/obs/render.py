"""Terminal rendering of span trees and hotspot tables.

Used by ``uncleanliness trace <run>`` and the ``--profile`` flag.
Formatting is self-contained (no dependency on the experiment table
helpers) so :mod:`repro.obs` stays importable from every layer.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["render_span_tree", "hotspot_rows", "render_hotspots"]

_ATTR_ORDER = ("outcome", "key", "trials", "workers", "flows", "events")


def _ms(seconds: float) -> str:
    return f"{seconds * 1000.0:.1f}ms"


def _attr_summary(attrs: dict, limit: int = 3) -> str:
    if not attrs:
        return ""
    keys = [k for k in _ATTR_ORDER if k in attrs]
    keys += [k for k in sorted(attrs) if k not in keys]
    parts = [f"{k}={attrs[k]}" for k in keys[:limit]]
    if len(keys) > limit:
        parts.append("...")
    return "  [" + " ".join(parts) + "]"


def render_span_tree(span: dict, max_depth: int = 12) -> str:
    """An indented tree with total and self wall time per span."""
    lines: List[str] = []

    def walk(node: dict, depth: int) -> None:
        wall = float(node.get("wall", 0.0))
        children = node.get("children", ())
        self_wall = max(wall - sum(float(c.get("wall", 0.0)) for c in children), 0.0)
        lines.append(
            f"{'  ' * depth}{node.get('name', '?')}"
            f"  total={_ms(wall)} self={_ms(self_wall)}"
            f"{_attr_summary(node.get('attrs') or {})}"
        )
        if depth + 1 >= max_depth and children:
            lines.append(f"{'  ' * (depth + 1)}... ({len(children)} children)")
            return
        for child in children:
            walk(child, depth + 1)

    walk(span, 0)
    return "\n".join(lines)


def hotspot_rows(span: dict) -> List[dict]:
    """Spans aggregated by name, ranked by total *self* time."""
    agg: Dict[str, dict] = {}

    def walk(node: dict) -> None:
        wall = float(node.get("wall", 0.0))
        cpu = float(node.get("cpu", 0.0))
        children = node.get("children", ())
        self_wall = max(wall - sum(float(c.get("wall", 0.0)) for c in children), 0.0)
        row = agg.setdefault(
            node.get("name", "?"),
            {"name": node.get("name", "?"), "count": 0, "total_s": 0.0,
             "self_s": 0.0, "cpu_s": 0.0},
        )
        row["count"] += 1
        row["total_s"] += wall
        row["self_s"] += self_wall
        row["cpu_s"] += cpu
        for child in children:
            walk(child)

    walk(span)
    return sorted(agg.values(), key=lambda r: r["self_s"], reverse=True)


def render_hotspots(span: dict, top: int = 15) -> str:
    """A fixed-width top-N hotspot table for one span tree."""
    rows = hotspot_rows(span)[:top]
    total = max(float(span.get("wall", 0.0)), 1e-12)
    name_width = max([len(r["name"]) for r in rows] + [len("span")])
    header = (
        f"{'span'.ljust(name_width)}  {'count':>5}  {'total':>10}  "
        f"{'self':>10}  {'cpu':>10}  {'self%':>6}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['name'].ljust(name_width)}  {r['count']:>5}  "
            f"{_ms(r['total_s']):>10}  {_ms(r['self_s']):>10}  "
            f"{_ms(r['cpu_s']):>10}  {100.0 * r['self_s'] / total:>5.1f}%"
        )
    return "\n".join(lines)
