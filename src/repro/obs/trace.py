"""Tracing: nested spans with wall/CPU time and a process-global tracer.

A :class:`Span` is one named interval of work; spans nest, so a full run
produces a tree — ``cli.table2`` over ``experiment.table2`` over
``stage.traffic`` over ``flows.population.benign`` — that the run
manifest serialises and ``uncleanliness trace`` renders.

Tracing is **off by default** and the disabled path is engineered to be
a no-op: :func:`span` checks one attribute and returns a shared,
stateless handle, so instrumented hot paths (artifact-store gets, stage
resolves) cost a single function call when nobody is looking.  Enable it
with :func:`enable` / ``$REPRO_TRACE=1``; the CLI enables it for every
verb so run manifests always carry a span tree.

Spans created in worker processes cannot share the parent's tracer;
workers build their own :class:`Tracer`, serialise the finished span
with :meth:`Span.to_dict`, and the supervisor grafts it into the live
tree with :func:`attach` (see ``repro.core.sampling.monte_carlo``).

This module is dependency-free (stdlib only) and must never import from
the rest of :mod:`repro` — every layer imports *it*.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional

__all__ = [
    "Span",
    "Tracer",
    "tracer",
    "set_tracer",
    "span",
    "attach",
    "enable",
    "disable",
    "enabled",
    "coverage",
    "TRACE_ENV",
]

#: Environment switch: any value other than empty/``0`` enables tracing.
TRACE_ENV = "REPRO_TRACE"


class Span:
    """One named, timed interval with attributes and child spans.

    ``wall`` and ``cpu`` are durations in seconds (``time.perf_counter``
    and ``time.process_time`` deltas); ``self_wall`` subtracts the
    children, which is what the hotspot table ranks by.
    """

    __slots__ = ("name", "attrs", "children", "wall", "cpu", "_t0", "_c0")

    def __init__(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        self.name = name
        self.attrs: Dict[str, Any] = dict(attrs) if attrs else {}
        self.children: List["Span"] = []
        self.wall = 0.0
        self.cpu = 0.0
        self._t0 = 0.0
        self._c0 = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes after the span opened (e.g. an outcome)."""
        self.attrs.update(attrs)

    @property
    def child_wall(self) -> float:
        return sum(child.wall for child in self.children)

    @property
    def self_wall(self) -> float:
        return max(self.wall - self.child_wall, 0.0)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "wall": self.wall,
            "cpu": self.cpu,
            "attrs": self.attrs,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        sp = cls(str(data["name"]), data.get("attrs") or {})
        sp.wall = float(data.get("wall", 0.0))
        sp.cpu = float(data.get("cpu", 0.0))
        sp.children = [cls.from_dict(c) for c in data.get("children", ())]
        return sp

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Span({self.name!r}, wall={self.wall:.4f}s, "
            f"children={len(self.children)})"
        )


class _NoopSpan:
    """Shared stateless handle returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NOOP = _NoopSpan()


class Tracer:
    """Collects a span tree for one process.

    Not thread-safe by design: the engine, experiments and CLI are
    single-threaded, and worker *processes* get their own tracer whose
    finished spans are merged with :meth:`attach`.
    """

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        #: Finished top-level spans, oldest first.
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    @contextmanager
    def span(self, name: str, **attrs: Any):
        if not self.enabled:
            yield _NOOP
            return
        sp = Span(name, attrs)
        self._stack.append(sp)
        sp._c0 = time.process_time()
        sp._t0 = time.perf_counter()
        try:
            yield sp
        finally:
            sp.wall = time.perf_counter() - sp._t0
            sp.cpu = time.process_time() - sp._c0
            self._stack.pop()
            if self._stack:
                self._stack[-1].children.append(sp)
            else:
                self.roots.append(sp)

    def attach(self, span_dict: Optional[dict]) -> None:
        """Graft a serialised span (from a worker) into the live tree."""
        if span_dict is None or not self.enabled:
            return
        sp = Span.from_dict(span_dict)
        if self._stack:
            self._stack[-1].children.append(sp)
        else:
            self.roots.append(sp)

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def clear(self) -> None:
        self.roots.clear()
        self._stack.clear()


def _env_enabled() -> bool:
    value = os.environ.get(TRACE_ENV, "").strip()
    return value not in ("", "0", "false", "no")


_TRACER = Tracer(enabled=_env_enabled())


def tracer() -> Tracer:
    """The process-global tracer."""
    return _TRACER


def set_tracer(new: Tracer) -> Tracer:
    """Swap the global tracer; returns the previous one (for tests)."""
    global _TRACER
    previous = _TRACER
    _TRACER = new
    return previous


def span(name: str, **attrs: Any):
    """Open a span on the global tracer — the one instrumentation entry.

    The disabled fast path performs one attribute check and returns a
    shared no-op handle; nothing is allocated.
    """
    t = _TRACER
    if not t.enabled:
        return _NOOP
    return t.span(name, **attrs)


def attach(span_dict: Optional[dict]) -> None:
    """Graft a worker's serialised span into the global tracer."""
    _TRACER.attach(span_dict)


def enable() -> None:
    _TRACER.enabled = True


def disable() -> None:
    _TRACER.enabled = False


def enabled() -> bool:
    return _TRACER.enabled


def coverage(span_dict: dict) -> float:
    """Fraction of a span's wall time covered by its direct children.

    The manifest records this for the run's root span; a healthy
    instrumented run keeps it above 0.9 (all the time went *somewhere*
    we named).  A zero-duration root counts as fully covered.
    """
    wall = float(span_dict.get("wall", 0.0))
    if wall <= 0.0:
        return 1.0
    child = sum(float(c.get("wall", 0.0)) for c in span_dict.get("children", ()))
    return min(child / wall, 1.0)
