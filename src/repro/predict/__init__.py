"""Rival blocklist predictors behind one :class:`Predictor` protocol.

The package splits *predictor* from *evaluator*: models live here and
emit per-block scores through a single contract
(:mod:`repro.predict.protocol`), while the §5 temporal test, the §6
Table-3 blocking experiment and ROC analysis consume any conforming
model through :mod:`repro.predict.evaluate`.

Models
------
``uncleanliness``
    The paper's §7 multidimensional metric, adapting
    :class:`~repro.core.uncleanliness.UncleanlinessScorer` —
    bit-identical to calling the scorer directly.
``recommender``
    Soldo et al.'s implicit-recommendation predictor: EWMA time
    smoothing per feed-block cell plus a cosine victim-neighborhood
    model, with spatial expansion to adjacent blocks.
``graphcluster``
    Haider/Scheffer-style greedy single-link clustering of adjacent
    blocks; members inherit pooled cluster evidence.

Use the registry (``make_predictor("recommender", blend=0.7)``) or the
:mod:`repro.api` facade (``evaluate``, ``compare``).
"""

from repro.predict.evaluate import (
    ComparisonResult,
    ModelEvaluation,
    compare_predictors,
    evaluate_predictor,
)
from repro.predict.graphcluster import GraphClusterPredictor
from repro.predict.protocol import (
    BasePredictor,
    BlockRanking,
    NotFittedError,
    Predictor,
)
from repro.predict.recommender import RecommenderPredictor
from repro.predict.registry import (
    DEFAULT_PREDICTORS,
    list_predictors,
    make_predictor,
    predictor_summaries,
    register_predictor,
)
from repro.predict.uncleanliness import UncleanlinessPredictor

__all__ = [
    "Predictor",
    "BasePredictor",
    "BlockRanking",
    "NotFittedError",
    "UncleanlinessPredictor",
    "RecommenderPredictor",
    "GraphClusterPredictor",
    "DEFAULT_PREDICTORS",
    "register_predictor",
    "list_predictors",
    "make_predictor",
    "predictor_summaries",
    "ModelEvaluation",
    "ComparisonResult",
    "evaluate_predictor",
    "compare_predictors",
]
