"""Predictor-generic evaluation: §5, §6 and ROC for any model.

The evaluators here close the loop the protocol opens: any fitted
:class:`~repro.predict.protocol.Predictor` runs through the paper's own
machinery —

* the §5 temporal test (:func:`repro.core.prediction.
  prediction_test_blocks`) against the equal-cardinality Monte-Carlo
  null of :func:`repro.core.prediction.control_intersection_distribution`;
* the §6 Table-3 virtual block
  (:func:`repro.core.blocking.blocking_test_blocks`) over the
  candidate partition;
* a score-threshold ROC over the partition's hostile/innocent
  addresses (:func:`repro.core.roc.partition_roc`), giving the single
  AUC number the head-to-head tables rank by.

The crucial sharing property: the Monte-Carlo control distribution
depends only on the present blocks, the control report and the
cardinality budget — never on the predictor — so
:func:`compare_predictors` draws it once per distinct training
cardinality and reuses it across all rivals.  A comparison of three
models therefore costs one Monte-Carlo run plus three cheap
intersection/blocking passes, and the baseline adapter's numbers are
bit-identical to the legacy single-model path for any ``workers``
setting.

Evaluations are cached in the artifact store under a key that embeds
the predictor fingerprint next to the scenario/evaluation parameters
(:class:`EvaluationCodec`), so sweeps cache per-model and two rivals
over one scenario can never collide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import cidr as rcidr
from repro.core.blocking import (
    BLOCKING_PREFIXES,
    BlockingResult,
    BlockingRow,
    CandidatePartition,
    blocking_test_blocks,
)
from repro.core.prediction import (
    PredictionResult,
    control_intersection_distribution,
    prediction_test_blocks,
)
from repro.core.report import Report
from repro.core.roc import ROCCurve, partition_roc
from repro.core.stats import BoxplotSummary
from repro.engine.store import Codec
from repro.predict.protocol import BasePredictor

__all__ = [
    "ModelEvaluation",
    "ComparisonResult",
    "EvaluationCodec",
    "evaluate_predictor",
    "compare_predictors",
]

#: Prefix length of the score-threshold ROC (the paper's candidate
#: extraction granularity).
ROC_PREFIX = 24


@dataclass(frozen=True)
class ModelEvaluation:
    """One predictor's full scorecard over one scenario.

    Attributes
    ----------
    predictor_name, predictor_fingerprint, params:
        Identity of the evaluated model (the fingerprint keys caches).
    training_cardinality:
        Address budget of the training union — the equal-cardinality
        constraint the Monte-Carlo null was drawn under.
    prediction:
        §5 temporal test of the model's predicted blocks.
    blocking:
        §6 Table-3 result over the model's blocks (``None`` when no
        candidate partition was supplied).
    roc:
        Score-threshold ROC over hostile vs innocent candidates at
        ``/24`` (``None`` without a partition or with a degenerate
        class split).
    """

    predictor_name: str
    predictor_fingerprint: str
    params: dict
    training_cardinality: int
    prediction: PredictionResult
    blocking: Optional[BlockingResult] = None
    roc: Optional[ROCCurve] = None

    def roc_auc(self) -> Optional[float]:
        return self.roc.auc() if self.roc is not None else None

    def summary_row(self) -> dict:
        """One line of the head-to-head table."""
        window = self.prediction.predictive_range()
        auc = self.roc_auc()
        row = {
            "predictor": self.predictor_name,
            "fingerprint": self.predictor_fingerprint[:12],
            "predictive_range": (
                f"{window[0]}-{window[1]}" if window else "none"
            ),
            "roc_auc": round(auc, 4) if auc is not None else None,
        }
        if self.blocking is not None:
            at24 = self.blocking.row(ROC_PREFIX)
            row["tp_rate@24"] = round(at24.tp_rate, 4)
            row["fp_rate@24"] = round(at24.fp_rate, 4)
        return row


@dataclass(frozen=True)
class ComparisonResult:
    """Head-to-head evaluations of rival predictors over one scenario."""

    present_tag: str
    prefixes: Tuple[int, ...]
    subsets: int
    evaluations: Tuple[ModelEvaluation, ...]

    def evaluation(self, name: str) -> ModelEvaluation:
        for ev in self.evaluations:
            if ev.predictor_name == name:
                return ev
        raise KeyError(f"no evaluation for predictor {name!r}")

    def names(self) -> List[str]:
        return [ev.predictor_name for ev in self.evaluations]

    def summary_table(self) -> List[dict]:
        """One row per model: predictive range, AUC, Table-3 rates."""
        return [ev.summary_row() for ev in self.evaluations]

    def auc_ranking(self) -> List[Tuple[str, Optional[float]]]:
        """(name, AUC) best-first; models without a ROC sort last."""
        pairs = [(ev.predictor_name, ev.roc_auc()) for ev in self.evaluations]
        return sorted(
            pairs, key=lambda pair: -1.0 if pair[1] is None else pair[1],
            reverse=True,
        )

    def manifest(self) -> dict:
        """Provenance block for run manifests: every model's fingerprint
        and parameters next to the evaluation's knobs."""
        return {
            "present": self.present_tag,
            "prefixes": list(self.prefixes),
            "subsets": self.subsets,
            "predictors": [
                {
                    "name": ev.predictor_name,
                    "fingerprint": ev.predictor_fingerprint,
                    "params": ev.params,
                    "roc_auc": ev.roc_auc(),
                }
                for ev in self.evaluations
            ],
        }


def _predicted_blocks(
    predictor: BasePredictor, prefixes: Sequence[int]
) -> Tuple[np.ndarray, ...]:
    """The model's predicted block set per prefix (all ranked blocks —
    thresholding is the ROC's job, set membership is the §5/§6 one)."""
    return tuple(predictor.score_blocks(n).blocks for n in prefixes)


def _past_tag(predictor: BasePredictor) -> str:
    """Label the §5 "past" side by the training feeds, so a single-feed
    fit reads exactly like the legacy report-vs-report test."""
    return "+".join(sorted(predictor.training))


def evaluate_predictor(
    predictor: BasePredictor,
    present: Report,
    control: Report,
    rng: np.random.Generator,
    partition: Optional[CandidatePartition] = None,
    prefixes: Sequence[int] = tuple(rcidr.PREFIX_RANGE),
    blocking_prefixes: Sequence[int] = BLOCKING_PREFIXES,
    subsets: int = 1000,
    workers: Optional[int] = None,
    control_values: Optional[Dict[int, np.ndarray]] = None,
) -> ModelEvaluation:
    """Run one fitted predictor through the paper's evaluations.

    ``control_values`` injects a precomputed §5 null distribution (from
    :func:`repro.core.prediction.control_intersection_distribution`
    with this predictor's training cardinality); when omitted it is
    drawn here from ``rng``.  When a §6 ``partition`` is supplied the
    Table-3 block and the hostile-vs-innocent ROC are evaluated too.
    """
    if not predictor.fitted:
        raise ValueError(
            f"predictor {predictor.name!r} must be fitted before evaluation"
        )
    prefixes = tuple(prefixes)
    present_blocks = tuple(rcidr.cidr_set(present, n) for n in prefixes)
    if control_values is None:
        control_values = control_intersection_distribution(
            present_blocks,
            control,
            predictor.training_cardinality,
            subsets,
            rng,
            prefixes,
            workers=workers,
        )
    prediction = prediction_test_blocks(
        _predicted_blocks(predictor, prefixes),
        present_blocks,
        control_values,
        prefixes,
        past_tag=_past_tag(predictor),
        present_tag=present.tag,
    )

    blocking = None
    roc = None
    if partition is not None:
        blocking_prefixes = tuple(blocking_prefixes)
        blocking = blocking_test_blocks(
            partition,
            _predicted_blocks(predictor, blocking_prefixes),
            blocking_prefixes,
        )
        ranking = predictor.score_blocks(ROC_PREFIX)
        if len(partition.hostile) and len(partition.innocent):
            roc = partition_roc(
                ranking.scores_of(partition.hostile.addresses),
                ranking.scores_of(partition.innocent.addresses),
            )
    return ModelEvaluation(
        predictor_name=predictor.name,
        predictor_fingerprint=predictor.fingerprint(),
        params=predictor.params(),
        training_cardinality=predictor.training_cardinality,
        prediction=prediction,
        blocking=blocking,
        roc=roc,
    )


def compare_predictors(
    predictors: Sequence[BasePredictor],
    present: Report,
    control: Report,
    rng: np.random.Generator,
    partition: Optional[CandidatePartition] = None,
    prefixes: Sequence[int] = tuple(rcidr.PREFIX_RANGE),
    blocking_prefixes: Sequence[int] = BLOCKING_PREFIXES,
    subsets: int = 1000,
    workers: Optional[int] = None,
) -> ComparisonResult:
    """Head-to-head evaluation of rival fitted predictors.

    The §5 Monte-Carlo null is drawn once per distinct training
    cardinality (in first-use order, so the RNG consumption — and hence
    every number — is reproducible for a given predictor order) and
    shared across all models with that budget.  Predictors fitted on
    the same feeds therefore add only cheap intersection, blocking and
    ROC passes each.
    """
    if not predictors:
        raise ValueError("at least one predictor is required")
    names = [p.name for p in predictors]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate predictor names in comparison: {names}")
    prefixes = tuple(prefixes)
    present_blocks = tuple(rcidr.cidr_set(present, n) for n in prefixes)
    shared: Dict[int, Dict[int, np.ndarray]] = {}
    evaluations = []
    for predictor in predictors:
        if not predictor.fitted:
            raise ValueError(
                f"predictor {predictor.name!r} must be fitted before "
                "comparison"
            )
        size = predictor.training_cardinality
        if size not in shared:
            shared[size] = control_intersection_distribution(
                present_blocks,
                control,
                size,
                subsets,
                rng,
                prefixes,
                workers=workers,
            )
        evaluations.append(
            evaluate_predictor(
                predictor,
                present,
                control,
                rng,
                partition=partition,
                prefixes=prefixes,
                blocking_prefixes=blocking_prefixes,
                subsets=subsets,
                workers=workers,
                control_values=shared[size],
            )
        )
    return ComparisonResult(
        present_tag=present.tag,
        prefixes=prefixes,
        subsets=subsets,
        evaluations=tuple(evaluations),
    )


def _summary_from_dict(data: dict) -> BoxplotSummary:
    """Inverse of :meth:`BoxplotSummary.as_dict` (which shortens the
    min/max key names)."""
    return BoxplotSummary(
        minimum=float(data["min"]),
        q05=float(data["q05"]),
        q25=float(data["q25"]),
        median=float(data["median"]),
        q75=float(data["q75"]),
        q95=float(data["q95"]),
        maximum=float(data["max"]),
        mean=float(data["mean"]),
        count=int(data["count"]),
    )


class EvaluationCodec(Codec):
    """Persists a :class:`ModelEvaluation` in the artifact store.

    The scorecard is small structured data: everything lands in the
    JSON sidecar except the ROC arrays, which ride the npz payload.
    Cache keys must embed the predictor fingerprint (the api layer
    does), and the fingerprint is also stored and round-tripped so a
    hit can be cross-checked against the model that asked.
    """

    name = "model-evaluation"

    def to_payload(self, value: ModelEvaluation):
        arrays = {"format": np.array([1], dtype=np.int64)}
        if value.roc is not None:
            arrays["roc_thresholds"] = value.roc.thresholds
            arrays["roc_tpr"] = value.roc.tpr
            arrays["roc_fpr"] = value.roc.fpr
        pred = value.prediction
        meta = {
            "predictor_name": value.predictor_name,
            "predictor_fingerprint": value.predictor_fingerprint,
            "params": value.params,
            "training_cardinality": value.training_cardinality,
            "prediction": {
                "past_tag": pred.past_tag,
                "present_tag": pred.present_tag,
                "prefixes": list(pred.prefixes),
                "observed": {str(n): pred.observed[n] for n in pred.prefixes},
                "control": {
                    str(n): pred.control[n].as_dict() for n in pred.prefixes
                },
                "exceedance": {
                    str(n): pred.exceedance[n] for n in pred.prefixes
                },
            },
            "blocking": None if value.blocking is None else [
                row.as_dict() for row in value.blocking.rows
            ],
        }
        return arrays, meta

    def from_payload(self, arrays, meta) -> ModelEvaluation:
        pmeta = meta["prediction"]
        prefixes = tuple(int(n) for n in pmeta["prefixes"])
        prediction = PredictionResult(
            past_tag=pmeta["past_tag"],
            present_tag=pmeta["present_tag"],
            prefixes=prefixes,
            observed={n: int(pmeta["observed"][str(n)]) for n in prefixes},
            control={
                n: _summary_from_dict(pmeta["control"][str(n)])
                for n in prefixes
            },
            exceedance={
                n: float(pmeta["exceedance"][str(n)]) for n in prefixes
            },
        )
        blocking = None
        if meta["blocking"] is not None:
            blocking = BlockingResult(
                rows=tuple(
                    BlockingRow(
                        prefix=int(row["n"]),
                        true_positives=int(row["TP(n)"]),
                        false_positives=int(row["FP(n)"]),
                        population=int(row["pop(n)"]),
                        unknown=int(row["unknown"]),
                    )
                    for row in meta["blocking"]
                )
            )
        roc = None
        if "roc_thresholds" in arrays:
            roc = ROCCurve(
                thresholds=arrays["roc_thresholds"],
                tpr=arrays["roc_tpr"],
                fpr=arrays["roc_fpr"],
            )
        return ModelEvaluation(
            predictor_name=meta["predictor_name"],
            predictor_fingerprint=meta["predictor_fingerprint"],
            params=meta["params"],
            training_cardinality=int(meta["training_cardinality"]),
            prediction=prediction,
            blocking=blocking,
            roc=roc,
        )
