"""Haider/Scheffer-style greedy graph-clustering predictor.

Haider and Scheffer ("Finding Botnets Using Minimal Graph Clusterings",
ICML 2012) infer botnets by clustering attacking hosts whose behaviour
co-occurs, scoring each cluster as a unit: evidence against any member
raises suspicion of every member.  The transfer to address-block
prediction: infected populations occupy *runs* of adjacent CIDR blocks
(the same spatial concentration the uncleanliness paper measures), so
blocks near strong evidence deserve that evidence's score.

The adaptation is a greedy single-link clustering over the sorted
training blocks, vectorised end to end:

1. Blocks at ``prefix_len`` are sorted (they already are) and a cluster
   boundary is drawn wherever the gap to the previous block exceeds
   ``merge_gap`` block widths, or the ``prefix_len - 8`` parent prefix
   changes — single-link merge without ever materialising a graph.
2. Each cluster pools its members' evidence ``sum(log1p(count))`` and
   scores ``1 - exp(-evidence / tau)`` — the same saturating form as
   the uncleanliness scorer, so rival scores share one axis.
3. Isolated singleton clusters below ``min_support`` addresses are
   damped by ``singleton_penalty``: one lone address is weak evidence
   of a population (the minimal-clustering intuition that a botnet
   explanation must cover multiple observations).
4. Every member block inherits its cluster's score, so a weak block
   inside a strong run outranks a strong block standing alone —
   exactly where this model's ranking departs from per-block
   uncleanliness.

Departures from Haider/Scheffer are catalogued in DESIGN.md: the
clustering is spatial single-link over address gaps rather than a
minimal clustering over attack co-occurrence graphs, and there is no
Bayesian model selection over the number of clusters.

Deterministic by construction — pure numpy, no RNG anywhere.
"""

from __future__ import annotations

import numpy as np

from repro.ipspace.addr import block_size
from repro.ipspace.cidr import mask_array
from repro.predict.protocol import BasePredictor, BlockRanking

__all__ = ["GraphClusterPredictor"]


class GraphClusterPredictor(BasePredictor):
    """Greedy single-link block clustering (Haider/Scheffer style).

    Parameters
    ----------
    merge_gap:
        Maximum gap, in block widths, bridged when merging adjacent
        blocks into one cluster (1 = only touching-or-one-hole runs).
    min_support:
        Minimum addresses a singleton cluster needs to escape damping.
    singleton_penalty:
        Multiplier applied to under-supported singleton clusters,
        in ``[0, 1]``.
    tau:
        Evidence scale of the saturating cluster score.
    """

    name = "graphcluster"

    def __init__(
        self,
        merge_gap: int = 1,
        min_support: int = 2,
        singleton_penalty: float = 0.5,
        tau: float = 4.0,
    ) -> None:
        super().__init__()
        if merge_gap < 0:
            raise ValueError("merge_gap must be non-negative")
        if min_support < 1:
            raise ValueError("min_support must be at least 1")
        if not 0.0 <= singleton_penalty <= 1.0:
            raise ValueError("singleton_penalty must lie in [0, 1]")
        if tau <= 0:
            raise ValueError("tau must be positive")
        self.merge_gap = int(merge_gap)
        self.min_support = int(min_support)
        self.singleton_penalty = float(singleton_penalty)
        self.tau = float(tau)

    def params(self) -> dict:
        return {
            "merge_gap": self.merge_gap,
            "min_support": self.min_support,
            "singleton_penalty": self.singleton_penalty,
            "tau": self.tau,
        }

    # -- model ------------------------------------------------------------

    def cluster_ids(self, prefix_len: int) -> np.ndarray:
        """Cluster label per sorted training block (0..n_clusters-1).

        Exposed for inspection and tests; :meth:`score_blocks` uses the
        same labelling.
        """
        blocks, _ = self._block_counts(prefix_len)
        return self._cluster(blocks, prefix_len)

    def _block_counts(self, prefix_len: int):
        masked = mask_array(self.training_addresses, prefix_len)
        return np.unique(masked, return_counts=True)

    def _cluster(self, blocks: np.ndarray, prefix_len: int) -> np.ndarray:
        """Single-link labels: a boundary wherever the gap exceeds
        ``merge_gap`` block widths or the parent prefix changes."""
        if blocks.size == 0:
            return np.zeros(0, dtype=np.int64)
        step = np.int64(block_size(prefix_len))
        wide = blocks.astype(np.int64)
        gaps = np.diff(wide)
        parent_len = max(prefix_len - 8, 0)
        parents = mask_array(blocks, parent_len)
        boundary = (gaps > self.merge_gap * step) | (
            parents[1:] != parents[:-1]
        )
        labels = np.zeros(blocks.size, dtype=np.int64)
        labels[1:] = np.cumsum(boundary)
        return labels

    def _score_blocks(self, prefix_len: int) -> BlockRanking:
        blocks, counts = self._block_counts(prefix_len)
        labels = self._cluster(blocks, prefix_len)
        if blocks.size == 0:
            return BlockRanking(prefix_len=prefix_len, blocks=blocks,
                                scores=np.zeros(0, dtype=np.float64))
        starts = np.flatnonzero(np.diff(labels, prepend=-1))
        evidence = np.add.reduceat(np.log1p(counts.astype(np.float64)),
                                   starts)
        support = np.add.reduceat(counts.astype(np.int64), starts)
        sizes = np.diff(np.append(starts, blocks.size))
        cluster_scores = 1.0 - np.exp(-evidence / self.tau)
        weak = (sizes == 1) & (support < self.min_support)
        cluster_scores[weak] *= self.singleton_penalty
        return BlockRanking(
            prefix_len=prefix_len,
            blocks=blocks,
            scores=cluster_scores[labels],
        )
