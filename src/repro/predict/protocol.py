"""The :class:`Predictor` protocol: rival blocklist models, one contract.

The paper evaluates exactly one predictor — CIDR-aggregated
uncleanliness (§5-§7) — but its evaluation machinery (equal-cardinality
Monte-Carlo controls, Table-3 hit counting, ROC analysis) is generic in
the *predicted block set*, not in how it was produced.  This module
fixes the seam: a predictor is anything that

* ``fit(reports, window)`` — learns from a mapping of tagged past
  :class:`~repro.core.report.Report`\\ s (the training feeds) and an
  optional :class:`~repro.sim.timeline.Window` anchoring "now";
* ``score_blocks(prefix_len)`` — returns a :class:`BlockRanking`:
  per-CIDR-block scores in ``[0, 1]`` at any prefix length;
* ``rank(prefix_len, count)`` — the blocks in descending-score order
  (ties broken by ascending block, so rankings are total and
  deterministic);
* ``fingerprint()`` — a stable content hash of the model *and* what it
  was fitted on, which keys every evaluation cache.

Predictors are deterministic by contract: no RNG anywhere, identical
inputs give bit-identical scores.  The evaluators in
:mod:`repro.predict.evaluate` consume only this surface, which is what
lets the §5/§6 experiments run head-to-head over rival models
(:mod:`repro.predict.recommender`, :mod:`repro.predict.graphcluster`)
with the adapted paper model (:mod:`repro.predict.uncleanliness`) as
the baseline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.report import Report
from repro.engine.fingerprint import fingerprint as _fingerprint
from repro.ipspace.addr import AddressLike
from repro.ipspace.cidr import CIDRBlock, mask_address
from repro.sim.timeline import Window, day_to_date

try:  # Protocol is typing-only; runtime dispatch uses the base class.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover - python < 3.8
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


__all__ = [
    "PREDICT_VERSION",
    "NotFittedError",
    "BlockRanking",
    "Predictor",
    "BasePredictor",
]

#: Bump when the fingerprint canonical form (not a model) changes, so
#: stale cached evaluations miss instead of aliasing.
PREDICT_VERSION = 1


class NotFittedError(ValueError):
    """A score/rank call on a predictor that has not been fitted."""


@dataclass(frozen=True)
class BlockRanking:
    """Per-block scores at one prefix length — a predictor's output.

    ``blocks`` is a sorted ``uint32`` array of masked network addresses
    and ``scores`` the aligned float scores in ``[0, 1]``.  The ranking
    order is *total*: descending score, ties broken by ascending block,
    so two predictors producing the same scores rank identically.
    """

    prefix_len: int
    blocks: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        blocks = np.ascontiguousarray(self.blocks, dtype=np.uint32)
        scores = np.ascontiguousarray(self.scores, dtype=np.float64)
        if blocks.shape != scores.shape or blocks.ndim != 1:
            raise ValueError(
                f"blocks {blocks.shape} and scores {scores.shape} must be "
                "aligned 1-D arrays"
            )
        if blocks.size and np.any(np.diff(blocks.astype(np.int64)) <= 0):
            raise ValueError("blocks must be strictly increasing")
        blocks.setflags(write=False)
        scores.setflags(write=False)
        object.__setattr__(self, "blocks", blocks)
        object.__setattr__(self, "scores", scores)

    def __len__(self) -> int:
        return int(self.blocks.size)

    # -- lookups ---------------------------------------------------------

    def score_of(self, address: AddressLike) -> float:
        """Score of the block containing ``address`` (0 if unranked)."""
        net = np.uint32(mask_address(address, self.prefix_len))
        idx = int(np.searchsorted(self.blocks, net))
        if idx < self.blocks.size and self.blocks[idx] == net:
            return float(self.scores[idx])
        return 0.0

    def scores_of(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`score_of` over a ``uint32`` address array."""
        from repro.ipspace.cidr import mask_array

        nets = mask_array(np.asarray(addresses, dtype=np.uint32),
                          self.prefix_len)
        idx = np.searchsorted(self.blocks, nets)
        idx = np.minimum(idx, max(self.blocks.size - 1, 0))
        out = np.zeros(nets.shape, dtype=np.float64)
        if self.blocks.size:
            hit = self.blocks[idx] == nets
            out[hit] = self.scores[idx[hit]]
        return out

    # -- ordering --------------------------------------------------------

    def order(self) -> np.ndarray:
        """Indices into ``blocks`` in ranking order (score desc, block asc)."""
        return np.lexsort((self.blocks, -self.scores))

    def ranked_blocks(self, count: Optional[int] = None) -> np.ndarray:
        """The block networks in ranking order, optionally truncated."""
        ranked = self.blocks[self.order()]
        if count is not None:
            ranked = ranked[: max(int(count), 0)]
        return ranked

    def support(self, min_score: float = 0.0) -> np.ndarray:
        """Sorted block networks scoring strictly above ``min_score`` —
        the predicted block *set* the §5/§6 evaluators intersect."""
        return self.blocks[self.scores > min_score]

    def top(self, count: int) -> List[dict]:
        """The ``count`` best blocks as display rows."""
        order = self.order()[: max(int(count), 0)]
        return [
            {
                "block": str(CIDRBlock(int(self.blocks[i]), self.prefix_len)),
                "score": round(float(self.scores[i]), 4),
            }
            for i in order
        ]

    def blocklist(self, threshold: float) -> List[CIDRBlock]:
        """Blocks whose score meets ``threshold`` — a deployable list."""
        chosen = self.blocks[self.scores >= threshold]
        return [CIDRBlock(int(net), self.prefix_len) for net in chosen]


@runtime_checkable
class Predictor(Protocol):
    """Structural type of a blocklist predictor (see module docstring)."""

    name: str

    def fit(
        self, reports: Mapping[str, Report], window: Optional[Window] = None
    ) -> "Predictor":  # pragma: no cover - protocol
        ...

    def score_blocks(self, prefix_len: int) -> BlockRanking:  # pragma: no cover
        ...

    def rank(
        self, prefix_len: int = 24, count: Optional[int] = None
    ) -> np.ndarray:  # pragma: no cover - protocol
        ...

    def fingerprint(self) -> str:  # pragma: no cover - protocol
        ...


def _report_digest(report: Report) -> str:
    """Content hash of one training report (addresses + identity)."""
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(report.addresses).tobytes())
    return digest.hexdigest()[:24]


class BasePredictor:
    """Shared plumbing for concrete predictors.

    Subclasses set a class-level ``name``, implement ``params()``
    (plain-data hyperparameters — these feed the fingerprint) and
    ``_score_blocks(prefix_len)`` (the model itself, reading
    ``self.training`` / ``self.window``).  The base class owns fit-state
    validation, per-prefix ranking caching, ranking order and the
    content fingerprint, so every model fingerprints and caches the
    same way.
    """

    name = "base"

    def __init__(self) -> None:
        self._training: Optional[Tuple[Tuple[str, Report], ...]] = None
        self._window: Optional[Window] = None
        self._rankings: Dict[int, BlockRanking] = {}
        self._training_addresses: Optional[np.ndarray] = None

    # -- subclass surface -------------------------------------------------

    def params(self) -> dict:
        """Hyperparameters as plain data (fingerprinted)."""
        return {}

    def _score_blocks(self, prefix_len: int) -> BlockRanking:
        raise NotImplementedError

    # -- protocol ---------------------------------------------------------

    def fit(
        self, reports: Mapping[str, Report], window: Optional[Window] = None
    ) -> "BasePredictor":
        """Learn from tagged past reports; returns ``self``.

        ``reports`` must be non-empty; tags are ordered lexically so the
        fitted state (and fingerprint) is independent of mapping order.
        ``window`` anchors "now" for models with temporal decay; the
        window's end day is the prediction horizon.
        """
        if not reports:
            raise ValueError("at least one training report is required")
        for tag, report in reports.items():
            if not isinstance(report, Report):
                raise TypeError(
                    f"training report {tag!r} is {type(report).__name__}, "
                    "expected Report"
                )
            if len(report) == 0:
                raise ValueError(f"training report {tag!r} is empty")
        self._training = tuple(sorted(reports.items()))
        self._window = window
        self._rankings = {}
        self._training_addresses = None
        return self

    @property
    def fitted(self) -> bool:
        return self._training is not None

    @property
    def training(self) -> Dict[str, Report]:
        """The fitted training reports (tag-sorted)."""
        self._require_fitted()
        return dict(self._training)

    @property
    def window(self) -> Optional[Window]:
        return self._window

    @property
    def training_addresses(self) -> np.ndarray:
        """Union of all training addresses (computed lazily, cached) —
        the equal-cardinality budget the §5 control draws must match."""
        self._require_fitted()
        if self._training_addresses is None:
            arrays = [report.addresses for _, report in self._training]
            union = arrays[0] if len(arrays) == 1 else np.unique(
                np.concatenate(arrays)
            )
            self._training_addresses = union
        return self._training_addresses

    @property
    def training_cardinality(self) -> int:
        return int(self.training_addresses.size)

    def score_blocks(self, prefix_len: int) -> BlockRanking:
        """Per-block scores at ``prefix_len`` (cached per prefix)."""
        self._require_fitted()
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        ranking = self._rankings.get(prefix_len)
        if ranking is None:
            ranking = self._score_blocks(prefix_len)
            self._rankings[prefix_len] = ranking
        return ranking

    def rank(
        self, prefix_len: int = 24, count: Optional[int] = None
    ) -> np.ndarray:
        """Blocks in ranking order (score desc, block asc)."""
        return self.score_blocks(prefix_len).ranked_blocks(count)

    def fingerprint(self) -> str:
        """Content hash of the model, its parameters and its training.

        Two predictors agree iff they share the model name and version,
        every hyperparameter, the training window, and the exact
        training report contents — the key under which evaluations are
        cached (so rival models over one scenario never collide).
        """
        identity = {
            "predict_version": PREDICT_VERSION,
            "predictor": self.name,
            "params": self.params(),
            "window": self._window,
            "reports": None if self._training is None else [
                [tag, _report_digest(report), len(report),
                 report.period]
                for tag, report in self._training
            ],
        }
        return _fingerprint(identity)

    # -- helpers ----------------------------------------------------------

    def _require_fitted(self) -> None:
        if self._training is None:
            raise NotFittedError(
                f"{type(self).__name__} must be fit(reports, window) "
                "before scoring"
            )

    def _reference_date(self):
        """The "now" the temporal models decay towards: the window's end
        date, else the newest training-period end, else ``None``."""
        if self._window is not None:
            return day_to_date(self._window.end_day)
        ends = [
            report.period[1]
            for _, report in (self._training or ())
            if report.period is not None
        ]
        return max(ends) if ends else None

    def __repr__(self) -> str:
        state = "unfitted"
        if self._training is not None:
            tags = ",".join(tag for tag, _ in self._training)
            state = f"fitted on [{tags}]"
        return f"{type(self).__name__}(name={self.name!r}, {state})"
