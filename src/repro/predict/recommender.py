"""Soldo-style implicit-recommendation predictor.

Soldo, Le and Markopoulou ("Predictive Blacklisting as an Implicit
Recommendation System", INFOCOM 2010) treat blacklist prediction as a
recommender problem: victims are "users", attacker sources are "items",
and the rating matrix holds time-smoothed attack intensities.  Their
predictor combines an exponentially-weighted time-series model per
victim-attacker cell with a neighborhood model over victims that attack
in common, plus cross-victim propagation to sources a victim has not
seen yet.

This adaptation keeps each of those stages, scaled to the repo's data
model (tagged :class:`~repro.core.report.Report` feeds standing in for
victim logs, CIDR blocks standing in for attacker sources):

1. **EWMA time smoothing** — each feed's per-block ``log1p`` address
   count is decayed by ``0.5 ** (age / halflife_days)``, where age is
   the gap between the feed's report-period end and the prediction
   window's end ("now").  Fresh feeds dominate, stale feeds fade.
2. **Victim neighborhood (CF)** — feeds are blended with their cosine
   neighbors over the shared-block co-occurrence matrix, so a block a
   similar feed keeps reporting is recommended to feeds that have not
   seen it (the implicit-recommendation step).
3. **Spatial smoothing** — intensities are shrunk toward the mean of
   the observed sibling blocks under the same ``prefix_len - 8``
   parent, encoding the paper-under-reproduction's own finding that
   unclean blocks cluster spatially.
4. **Adjacent expansion** — immediately adjacent unobserved sibling
   blocks inherit a ``spatial``-damped mean of their observed
   neighbors, so the predicted set is a strict superset of the
   training footprint (the hallmark that distinguishes this model from
   the uncleanliness baseline, whose support is exactly the training
   blocks).

Departures from Soldo et al. are catalogued in DESIGN.md: no SVD
latent factors (their third model family), victims are whole feeds
rather than individual contributors, and the recommendation is a
single global blocklist rather than per-victim lists.

Deterministic by construction — pure numpy, no RNG anywhere.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ipspace.addr import block_size
from repro.ipspace.cidr import mask_array
from repro.predict.protocol import BasePredictor, BlockRanking

__all__ = ["RecommenderPredictor"]

#: Evidence scale of the final saturating transform (matches the
#: uncleanliness scorer's ``counts / 4`` convention so rival scores are
#: comparable on one axis).
_EVIDENCE_SCALE = 4.0


class RecommenderPredictor(BasePredictor):
    """Implicit-recommendation blocklist predictor (Soldo et al. style).

    Parameters
    ----------
    halflife_days:
        EWMA half-life for report-age decay; a feed whose period ended
        one half-life before the window end contributes at 50% weight.
    blend:
        Weight of the victim-neighborhood (CF) term against each feed's
        own time-smoothed intensities, in ``[0, 1]``.
    spatial:
        Strength of parent-prefix spatial smoothing and of the adjacent
        block expansion, in ``[0, 1]``.
    expand:
        When true (default), adjacent unobserved sibling blocks enter
        the ranking with damped scores; when false the support equals
        the observed training blocks.
    """

    name = "recommender"

    def __init__(
        self,
        halflife_days: float = 30.0,
        blend: float = 0.5,
        spatial: float = 0.25,
        expand: bool = True,
    ) -> None:
        super().__init__()
        if halflife_days <= 0:
            raise ValueError("halflife_days must be positive")
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must lie in [0, 1]")
        if not 0.0 <= spatial <= 1.0:
            raise ValueError("spatial must lie in [0, 1]")
        self.halflife_days = float(halflife_days)
        self.blend = float(blend)
        self.spatial = float(spatial)
        self.expand = bool(expand)

    def params(self) -> dict:
        return {
            "halflife_days": self.halflife_days,
            "blend": self.blend,
            "spatial": self.spatial,
            "expand": self.expand,
        }

    # -- model ------------------------------------------------------------

    def _feed_decay(self, tag: str) -> float:
        """EWMA weight of one feed: ``0.5 ** (age / halflife)``."""
        reference = self._reference_date()
        report = self.training[tag]
        if reference is None or report.period is None:
            return 1.0
        age_days = max((reference - report.period[1]).days, 0)
        return float(0.5 ** (age_days / self.halflife_days))

    def _intensity_matrix(
        self, prefix_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(blocks, V): V[f, b] = decayed log1p address count of feed f
        in block b, over the union block axis."""
        training = self.training
        tags = sorted(training)
        per_feed: List[Tuple[np.ndarray, np.ndarray]] = []
        for tag in tags:
            masked = mask_array(training[tag].addresses, prefix_len)
            feed_blocks, counts = np.unique(masked, return_counts=True)
            per_feed.append((feed_blocks, counts))
        blocks = np.unique(np.concatenate([fb for fb, _ in per_feed]))
        matrix = np.zeros((len(tags), blocks.size), dtype=np.float64)
        for row, (tag, (feed_blocks, counts)) in enumerate(zip(tags, per_feed)):
            idx = np.searchsorted(blocks, feed_blocks)
            matrix[row, idx] = self._feed_decay(tag) * np.log1p(counts)
        return blocks, matrix

    @staticmethod
    def _neighborhood(matrix: np.ndarray) -> np.ndarray:
        """Row-normalised cosine similarity over feeds (the victim
        neighborhood of the CF step)."""
        norms = np.sqrt((matrix * matrix).sum(axis=1))
        norms = np.maximum(norms, np.finfo(np.float64).tiny)
        unit = matrix / norms[:, np.newaxis]
        similarity = unit @ unit.T
        row_sums = np.maximum(similarity.sum(axis=1),
                              np.finfo(np.float64).tiny)
        return similarity / row_sums[:, np.newaxis]

    def _smooth_spatial(
        self, blocks: np.ndarray, intensity: np.ndarray, prefix_len: int
    ) -> np.ndarray:
        """Shrink each block toward its parent-prefix sibling mean."""
        if self.spatial == 0.0 or blocks.size == 0:
            return intensity
        parent_len = max(prefix_len - 8, 0)
        parents = mask_array(blocks, parent_len)
        _, inverse, counts = np.unique(
            parents, return_inverse=True, return_counts=True
        )
        sums = np.bincount(inverse, weights=intensity)
        parent_mean = sums[inverse] / counts[inverse]
        return (1.0 - self.spatial) * intensity + self.spatial * parent_mean

    def _expand_adjacent(
        self, blocks: np.ndarray, intensity: np.ndarray, prefix_len: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Add unobserved sibling blocks adjacent to observed ones.

        A candidate is ``block ± block_size`` inside the same
        ``prefix_len - 8`` parent; its intensity is ``spatial`` times
        the mean of its observed adjacent neighbors.  Returns the
        merged (blocks, intensity) arrays, still sorted.
        """
        if not self.expand or self.spatial == 0.0 or prefix_len == 0:
            return blocks, intensity
        step = np.int64(block_size(prefix_len))
        parent_len = max(prefix_len - 8, 0)
        wide = blocks.astype(np.int64)
        candidates = np.concatenate([wide - step, wide + step])
        sources = np.concatenate([wide, wide])
        valid = (candidates >= 0) & (candidates <= np.int64(0xFFFFFFFF))
        candidates, sources = candidates[valid], sources[valid]
        same_parent = mask_array(
            candidates.astype(np.uint32), parent_len
        ) == mask_array(sources.astype(np.uint32), parent_len)
        candidates = candidates[same_parent]
        unseen = np.setdiff1d(
            candidates.astype(np.uint32), blocks, assume_unique=False
        )
        if unseen.size == 0:
            return blocks, intensity
        # Mean observed intensity over each candidate's two neighbors.
        neighbor_sum = np.zeros(unseen.size, dtype=np.float64)
        neighbor_count = np.zeros(unseen.size, dtype=np.int64)
        for offset in (-step, step):
            neighbor = (unseen.astype(np.int64) + offset)
            in_range = (neighbor >= 0) & (neighbor <= np.int64(0xFFFFFFFF))
            pos = np.searchsorted(blocks, neighbor.astype(np.uint32))
            pos = np.minimum(pos, blocks.size - 1)
            hit = in_range & (blocks[pos] == neighbor.astype(np.uint32))
            neighbor_sum[hit] += intensity[pos[hit]]
            neighbor_count[hit] += 1
        inherited = self.spatial * neighbor_sum / np.maximum(neighbor_count, 1)
        merged_blocks = np.concatenate([blocks, unseen])
        merged_intensity = np.concatenate([intensity, inherited])
        order = np.argsort(merged_blocks, kind="stable")
        return merged_blocks[order], merged_intensity[order]

    def _score_blocks(self, prefix_len: int) -> BlockRanking:
        blocks, matrix = self._intensity_matrix(prefix_len)
        # Neighborhood blend: each feed mixed with its cosine neighbors,
        # then summed into one global intensity per block.
        neighborhood = self._neighborhood(matrix)
        blended = (1.0 - self.blend) * matrix + self.blend * (
            neighborhood @ matrix
        )
        intensity = blended.sum(axis=0)
        intensity = self._smooth_spatial(blocks, intensity, prefix_len)
        blocks, intensity = self._expand_adjacent(blocks, intensity, prefix_len)
        scores = 1.0 - np.exp(-intensity / _EVIDENCE_SCALE)
        return BlockRanking(
            prefix_len=prefix_len, blocks=blocks, scores=scores
        )
