"""Predictor registry: names to constructors.

The registry is the single place a predictor is given a public name;
``repro.api.make_predictor`` / ``list_predictors`` and the CLI
``compare`` verb all resolve through it.  Registration is explicit (no
import-time scanning) so the set of models is auditable at a glance.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.predict.graphcluster import GraphClusterPredictor
from repro.predict.protocol import BasePredictor
from repro.predict.recommender import RecommenderPredictor
from repro.predict.uncleanliness import UncleanlinessPredictor

__all__ = [
    "DEFAULT_PREDICTORS",
    "register_predictor",
    "list_predictors",
    "make_predictor",
    "predictor_summaries",
]

_REGISTRY: Dict[str, Callable[..., BasePredictor]] = {}

#: The models every head-to-head comparison runs by default, in
#: presentation order (paper baseline first).
DEFAULT_PREDICTORS = ("uncleanliness", "recommender", "graphcluster")


def register_predictor(
    name: str, factory: Callable[..., BasePredictor]
) -> None:
    """Register ``factory`` under ``name`` (overwrites are rejected)."""
    if name in _REGISTRY:
        raise ValueError(f"predictor {name!r} is already registered")
    _REGISTRY[name] = factory


def list_predictors() -> List[str]:
    """Registered predictor names, sorted."""
    return sorted(_REGISTRY)


def make_predictor(name: str, **params) -> BasePredictor:
    """Construct a registered predictor by name.

    Hyperparameters pass through to the model constructor; unknown
    names raise with the available choices spelled out.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown predictor {name!r}; available: {list_predictors()}"
        ) from None
    return factory(**params)


def predictor_summaries() -> List[dict]:
    """One display row per registered predictor (name, class, defaults)."""
    rows = []
    for name in list_predictors():
        model = _REGISTRY[name]()
        rows.append(
            {
                "predictor": name,
                "class": type(model).__name__,
                "params": model.params(),
            }
        )
    return rows


register_predictor("uncleanliness", UncleanlinessPredictor)
register_predictor("recommender", RecommenderPredictor)
register_predictor("graphcluster", GraphClusterPredictor)
