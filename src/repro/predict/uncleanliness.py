"""The paper's model behind the protocol: adapted ``UncleanlinessScorer``.

This is a thin adapter, deliberately so: the scoring math stays in
:class:`repro.core.uncleanliness.UncleanlinessScorer` and the adapter
only maps the protocol's tag-keyed training reports onto the scorer's
class-keyed input.  Reports sharing a
:class:`~repro.core.report.DataClass` are unioned into one evidence
dimension (the scorer counts *addresses* per class, exactly as §7
describes); reports with no data class contribute under their own tag
with weight 1.  Because the delegation is total, the adapter's scores
are bit-identical to calling the scorer directly — pinned by the
equivalence tests and the <5% overhead guard in
``benchmarks/bench_predictors.py``.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.report import DataClass, Report
from repro.core.uncleanliness import _DEFAULT_WEIGHTS, UncleanlinessScorer
from repro.predict.protocol import BasePredictor, BlockRanking

__all__ = ["UncleanlinessPredictor"]


class UncleanlinessPredictor(BasePredictor):
    """CIDR-aggregated multidimensional uncleanliness (§7), as a
    :class:`~repro.predict.protocol.Predictor`.

    Parameters
    ----------
    weights:
        Optional per-class weight overrides.  When omitted, the paper
        defaults apply and any class outside them weighs 1.0 — so
        fitting on arbitrary tagged feeds never rejects a class the
        scorer has no weight for.
    """

    name = "uncleanliness"

    def __init__(self, weights: Optional[Mapping[str, float]] = None) -> None:
        super().__init__()
        self._weights = dict(weights) if weights is not None else None

    def params(self) -> dict:
        return {"weights": self._weights}

    def _class_reports(self) -> Dict[str, Report]:
        """Training reports regrouped by evidence class.

        Same-class reports are unioned (address counts per block are
        what the scorer consumes; a union is the lossless merge).  Tag
        order within a class is already lexical from ``fit``, so the
        merged report — and therefore the scores — are order-independent.
        """
        grouped: Dict[str, Report] = {}
        for tag, report in sorted(self.training.items()):
            cls = report.data_class
            if not cls or cls == DataClass.NONE:
                cls = tag
            if cls in grouped:
                grouped[cls] = grouped[cls].union(report, tag=cls)
            else:
                grouped[cls] = report
        return grouped

    def _effective_weights(self, classes) -> Dict[str, float]:
        if self._weights is not None:
            base = dict(self._weights)
        else:
            base = dict(_DEFAULT_WEIGHTS)
        for cls in classes:
            base.setdefault(cls, 1.0)
        return base

    def _score_blocks(self, prefix_len: int) -> BlockRanking:
        reports = self._class_reports()
        scorer = UncleanlinessScorer(
            prefix_len=prefix_len,
            weights=self._effective_weights(reports),
        )
        scored = scorer.score(reports)
        return BlockRanking(
            prefix_len=prefix_len,
            blocks=scored.blocks,
            scores=scored.scores,
        )
