"""The scenario-pack library.

A :class:`ScenarioPack` is a named, pure transformation of a
:class:`~repro.core.scenario.ScenarioConfig`: packs compose adversarial
worlds — attack waves, DHCP churn, prefix reassignment, slow-scanner
floods, sinkhole takedowns — purely by setting config fields, so every
pack flows through the staged artifact engine and inherits
content-addressed caching, fault injection, manifests and observability
for free.

::

    from repro.api import run_pack, evaluate

    run = run_pack("attack-wave", small=True)
    result = evaluate(run, metric="prediction")
"""

from repro.scenarios.packs import (
    BUILTIN_PACK_NAMES,
    ScenarioPack,
    get_pack,
    list_packs,
    pack_names,
    register_pack,
)

__all__ = [
    "BUILTIN_PACK_NAMES",
    "ScenarioPack",
    "get_pack",
    "list_packs",
    "pack_names",
    "register_pack",
]
