"""Registry and built-in definitions of the scenario packs.

Each pack is a *pure function* from a base :class:`ScenarioConfig` to a
variant: no RNGs, no IO, no hidden state.  Because a pack's output is
just a config, its fingerprint keys the artifact store exactly like any
hand-built config — warm reruns of a pack skip simulation, chaos CI
exercises it unchanged, and two packs sharing a base differ only where
their fields differ.

The ``paper-default`` pack is the identity: its config fingerprints
identically to the plain default, which is what makes "run everything
through a pack" safe — the default world is never rebuilt or re-keyed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional

from repro.core.scenario import ScenarioConfig
from repro.sim.asys import ASConfig
from repro.sim.timeline import PAPER_WINDOWS

__all__ = [
    "BUILTIN_PACK_NAMES",
    "ScenarioPack",
    "get_pack",
    "list_packs",
    "pack_names",
    "register_pack",
]


@dataclass(frozen=True)
class ScenarioPack:
    """A named, pure ``ScenarioConfig -> ScenarioConfig`` transform."""

    name: str
    description: str
    transform: Callable[[ScenarioConfig], ScenarioConfig]

    def build(
        self,
        base: Optional[ScenarioConfig] = None,
        *,
        small: bool = False,
        seed: Optional[int] = None,
    ) -> ScenarioConfig:
        """The pack's config over ``base`` (default: the paper config).

        ``small=True`` starts from :meth:`ScenarioConfig.small`;
        ``seed`` overrides the base seed.  The result is validated, so a
        mis-parameterised pack fails here with a clear ``ValueError``
        rather than deep inside generation.
        """
        if base is None:
            base = ScenarioConfig.small() if small else ScenarioConfig()
        elif small:
            raise ValueError("pass either a base config or small=True, not both")
        if seed is not None:
            base = replace(base, seed=seed)
        config = self.transform(base)
        config.validate()
        return config


_PACKS: Dict[str, ScenarioPack] = {}


def register_pack(pack: ScenarioPack) -> ScenarioPack:
    """Add a pack to the registry (rejecting duplicate names)."""
    if pack.name in _PACKS:
        raise ValueError(f"pack {pack.name!r} is already registered")
    _PACKS[pack.name] = pack
    return pack


def get_pack(name: str) -> ScenarioPack:
    """Look up a registered pack by name."""
    try:
        return _PACKS[name]
    except KeyError:
        raise KeyError(
            f"no scenario pack named {name!r}; have {pack_names()}"
        ) from None


def pack_names() -> List[str]:
    """Registered pack names, sorted."""
    return sorted(_PACKS)


def list_packs() -> List[ScenarioPack]:
    """Registered packs, sorted by name."""
    return [_PACKS[name] for name in pack_names()]


# -- built-in packs ----------------------------------------------------------


def _scaled_asys(base: ScenarioConfig) -> ASConfig:
    """An :class:`ASConfig` sized to the base world.

    The default 120 ASes are calibrated against the paper-scale 950
    /16s (~8 prefixes per operator, heavy-tailed).  Smaller worlds keep
    that density — ``num_as`` scales with ``num_slash16`` — so a
    ``small`` base still has multi-prefix operators instead of
    degenerating to one AS per /16.
    """
    default = ASConfig()
    scaled = round(base.internet.num_slash16 * default.num_as / 950)
    return replace(default, num_as=max(2, min(default.num_as, scaled)))


def _paper_default(base: ScenarioConfig) -> ScenarioConfig:
    return base


def _attack_wave(base: ScenarioConfig) -> ScenarioConfig:
    """Correlated compromise bursts over an AS-structured Internet, with
    diurnal traffic cycles (Chen et al.'s spatiotemporal attack
    patterns): arrivals surge on a four-week wave and border flows bunch
    around an afternoon peak."""
    return replace(
        base,
        internet=replace(base.internet, asys=_scaled_asys(base)),
        botnet=replace(
            base.botnet,
            wave_amplitude=0.9,
            wave_period_days=28.0,
            wave_phase_days=7.0,
        ),
        traffic=replace(
            base.traffic, diurnal_amplitude=0.5, diurnal_peak_hour=14.0
        ),
    )


def _dhcp_churn(base: ScenarioConfig) -> ScenarioConfig:
    """NAT/DHCP churn: half the /16s are dynamic pools whose compromised
    machines re-appear under a fresh address in the same /16 every
    ~20-day lease — /24-granular predictions rot while /16 aggregates
    survive."""
    return replace(
        base,
        internet=replace(base.internet, dynamic_fraction=0.5),
        botnet=replace(base.botnet, rebind_days=20.0),
    )


def _prefix_reassignment(base: ScenarioConfig) -> ScenarioConfig:
    """A quarter of the /16s changes announcing AS mid-year (day 200,
    between the May test reports and the October training feeds): the
    moved prefixes take on their new operator's uncleanliness and
    cleanup regime, so pre-move observations mislead."""
    return replace(
        base,
        internet=replace(
            base.internet,
            asys=_scaled_asys(base),
            reassignment_day=200,
            reassignment_fraction=0.25,
        ),
    )


def _slow_scanner_flood(base: ScenarioConfig) -> ScenarioConfig:
    """The observed network is flooded by under-the-radar scanners: most
    bots probe below the scan detector's hourly calibration and the
    uncatalogued suspicious population quadruples, starving the observed
    feeds while the unknown class balloons (§6.2 taken to its limit)."""
    return replace(
        base,
        traffic=replace(
            base.traffic,
            slow_scanner_fraction=0.85,
            scan_participation=0.05,
            suspicious_hosts=base.traffic.suspicious_hosts * 4,
        ),
    )


def _sinkhole_takedown(base: ScenarioConfig) -> ScenarioConfig:
    """Two C&C channels are seized and sinkholed into the observed
    network (member bots phone home across the border), and a week into
    October the provided bot feed goes dark — then floods five months of
    stale sightings, republishing long-cleaned machines as current."""
    dark_from = PAPER_WINDOWS.OCTOBER.start_day + 7
    return replace(
        base,
        traffic=replace(base.traffic, sinkholed_channels=(0, 1)),
        bot_feed_dark_from_day=dark_from,
        bot_feed_stale_days=150,
    )


register_pack(ScenarioPack(
    name="paper-default",
    description="The paper's flat world, untouched (identity transform; "
                "fingerprints identically to the plain default config).",
    transform=_paper_default,
))
register_pack(ScenarioPack(
    name="attack-wave",
    description="AS-structured Internet with four-week compromise waves "
                "and diurnal traffic cycles.",
    transform=_attack_wave,
))
register_pack(ScenarioPack(
    name="dhcp-churn",
    description="Half the /16s are DHCP/NAT pools; bots rebind to fresh "
                "addresses every ~20 days.",
    transform=_dhcp_churn,
))
register_pack(ScenarioPack(
    name="prefix-reassignment",
    description="25% of /16s change announcing AS on day 200, switching "
                "uncleanliness and cleanup regime.",
    transform=_prefix_reassignment,
))
register_pack(ScenarioPack(
    name="slow-scanner-flood",
    description="Scanners drop below the detector floor and the "
                "uncatalogued suspicious population quadruples.",
    transform=_slow_scanner_flood,
))
register_pack(ScenarioPack(
    name="sinkhole-takedown",
    description="Two C&C channels sinkholed into the vantage; the bot "
                "feed goes dark mid-October then floods stale addresses.",
    transform=_sinkhole_takedown,
))

#: The names every deployment ships with (CI's pack smoke iterates this).
BUILTIN_PACK_NAMES = tuple(pack_names())
