"""Simulation substrate: the synthetic Internet and its actors."""

from repro.sim.botnet import BotnetConfig, BotnetSimulation
from repro.sim.dynamics import DynamicsConfig, UncleanlinessProcess
from repro.sim.internet import InternetConfig, SyntheticInternet
from repro.sim.phishing import PhishingConfig, PhishingSimulation
from repro.sim.validation import CheckResult, validate_botnet
from repro.sim.timeline import (
    DAY_SECONDS,
    EPOCH,
    PAPER_WINDOWS,
    Window,
    date_to_day,
    day_to_date,
)

__all__ = [
    "InternetConfig",
    "SyntheticInternet",
    "BotnetConfig",
    "BotnetSimulation",
    "DynamicsConfig",
    "UncleanlinessProcess",
    "PhishingConfig",
    "PhishingSimulation",
    "Window",
    "EPOCH",
    "DAY_SECONDS",
    "PAPER_WINDOWS",
    "date_to_day",
    "day_to_date",
    "CheckResult",
    "validate_botnet",
]
