"""The autonomous-system layer of the synthetic Internet.

The paper's core claim is that uncleanliness clusters *spatially* because
networks are operated by organizations (§1's institution A/B story, the
/16-level aggregation of §4).  A flat prefix tree cannot represent who
operates a prefix, so this module adds the missing level: a CAIDA-like
population of autonomous systems, each announcing a heavy-tailed number
of /16 prefixes, arranged in provider/customer tiers, and each carrying
an operator posture — a base uncleanliness and a cleanup tempo — that
every prefix it announces inherits.

Topology shape follows the well-known AS-level measurements (cf. the
CAIDA AS-relationship datasets used by the seed-emulator BGP examples):

* a small clique of **transit** ASes at the top, a **mid** tier of
  regional providers homed on the transit clique, and a long tail of
  **stub** ASes homed on the mid tier;
* per-AS announced-prefix counts are Pareto-tailed — a few hypergiants
  announce many prefixes, most stubs announce one;
* operator posture is *tier-correlated*: transit operators run clean,
  professionally-staffed networks with fast cleanup; stubs are, on
  average, dirtier and slower, with customers partially inheriting the
  posture of their provider (shared tooling, shared abuse desk).

The flat (paper-default) world is represented by :func:`flat_topology`,
which is **RNG-free**: every occupied /16 becomes its own single-prefix
stub AS with a neutral cleanup tempo, so the substrate refactor leaves
the default world's random draws — and therefore its artifacts —
bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "ASConfig",
    "ASTopology",
    "TIER_TRANSIT",
    "TIER_MID",
    "TIER_STUB",
    "flat_topology",
    "generate_topology",
]

#: Tier codes, ordered top-down.
TIER_TRANSIT, TIER_MID, TIER_STUB = 0, 1, 2


@dataclass(frozen=True)
class ASConfig:
    """Generation parameters for the AS layer.

    The defaults give roughly one AS per eight occupied /16s with a
    5%/25%/70% transit/mid/stub split — small enough that within-AS
    correlation is measurable at reproduction scale, heavy-tailed enough
    that a handful of ASes dominate the announced space.
    """

    #: Number of autonomous systems announcing the occupied /16s.
    num_as: int = 120

    #: Fraction of ASes in the transit clique / mid tier (rest are stubs).
    transit_fraction: float = 0.05
    mid_fraction: float = 0.25

    #: Pareto tail index of per-AS announced-prefix counts (smaller =
    #: heavier tail; 1.2 reproduces the hypergiant skew).
    prefix_tail: float = 1.2

    #: Mean base uncleanliness per tier (transit, mid, stub).
    tier_uncleanliness: Tuple[float, float, float] = (0.03, 0.09, 0.20)

    #: Lognormal sigma of per-AS deviation around its tier mean.
    uncleanliness_spread: float = 0.55

    #: How strongly a customer's posture regresses toward its provider's
    #: (0 = independent, 1 = the provider's posture verbatim).
    provider_mix: float = 0.35

    #: Mean cleanup lag in days per tier (transit, mid, stub): how long a
    #: compromise survives before the operator remediates, relative to
    #: :attr:`reference_cleanup_days`.
    tier_cleanup_days: Tuple[float, float, float] = (4.0, 12.0, 30.0)

    #: Lognormal sigma of per-AS cleanup-lag deviation within a tier.
    cleanup_spread: float = 0.4

    #: Cleanup lag that maps to a duration factor of exactly 1.0; the
    #: flat world implicitly runs every network at this tempo.
    reference_cleanup_days: float = 15.0

    #: Beta concentration of per-/16 base uncleanliness around its AS
    #: mean (higher = tighter within-AS clustering).
    concentration: float = 12.0

    def validate(self) -> None:
        if self.num_as <= 0:
            raise ValueError("num_as must be positive")
        if not 0 <= self.transit_fraction <= 1:
            raise ValueError("transit_fraction must be in [0, 1]")
        if not 0 <= self.mid_fraction <= 1:
            raise ValueError("mid_fraction must be in [0, 1]")
        if self.transit_fraction + self.mid_fraction > 1:
            raise ValueError(
                "transit_fraction + mid_fraction must not exceed 1"
            )
        if self.prefix_tail <= 0:
            raise ValueError("prefix_tail must be positive")
        if len(self.tier_uncleanliness) != 3:
            raise ValueError("tier_uncleanliness needs one mean per tier")
        if any(not 0 < u < 1 for u in self.tier_uncleanliness):
            raise ValueError("tier_uncleanliness means must be in (0, 1)")
        if self.uncleanliness_spread < 0:
            raise ValueError("uncleanliness_spread must be non-negative")
        if not 0 <= self.provider_mix <= 1:
            raise ValueError("provider_mix must be in [0, 1]")
        if len(self.tier_cleanup_days) != 3:
            raise ValueError("tier_cleanup_days needs one mean per tier")
        if any(d <= 0 for d in self.tier_cleanup_days):
            raise ValueError("tier_cleanup_days must be positive")
        if self.cleanup_spread < 0:
            raise ValueError("cleanup_spread must be non-negative")
        if self.reference_cleanup_days <= 0:
            raise ValueError("reference_cleanup_days must be positive")
        if self.concentration <= 0:
            raise ValueError("concentration must be positive")


@dataclass(frozen=True)
class ASTopology:
    """The realised AS layer (columnar over ASes and occupied /16s)."""

    #: Per-AS tier code (TIER_TRANSIT / TIER_MID / TIER_STUB).
    tier: np.ndarray

    #: Per-AS provider index; -1 for the transit clique.
    provider: np.ndarray

    #: Per-AS mean base uncleanliness of announced prefixes.
    base_uncleanliness: np.ndarray

    #: Per-AS mean compromise-cleanup lag in days.
    cleanup_days: np.ndarray

    #: Announcing AS of each occupied /16 (index into the per-AS arrays).
    as_of_net16: np.ndarray

    #: Whether this is the degenerate flat world (one stub per /16).
    flat: bool

    def __post_init__(self) -> None:
        for arr in (self.tier, self.provider, self.base_uncleanliness,
                    self.cleanup_days, self.as_of_net16):
            arr.setflags(write=False)

    @property
    def num_as(self) -> int:
        return int(self.tier.size)

    @property
    def num_prefixes(self) -> int:
        return int(self.as_of_net16.size)

    def prefixes_of(self, as_index: int) -> np.ndarray:
        """Occupied-/16 indices announced by one AS."""
        return np.nonzero(self.as_of_net16 == as_index)[0]

    def duration_factor(self, reference_days: float) -> np.ndarray:
        """Per-AS compromise-duration multiplier relative to a reference
        tempo: an AS with twice the reference cleanup lag keeps its bots
        alive twice as long."""
        return self.cleanup_days / reference_days

    def __repr__(self) -> str:
        return (
            f"ASTopology(ases={self.num_as}, prefixes={self.num_prefixes}, "
            f"flat={self.flat})"
        )


def flat_topology(num_slash16: int) -> ASTopology:
    """The degenerate topology of the paper-default flat world.

    RNG-free by construction: every occupied /16 is its own stub AS with
    a neutral cleanup tempo, so building it consumes no random draws and
    the flat world's artifacts stay bit-identical to the pre-AS substrate.
    """
    if num_slash16 <= 0:
        raise ValueError("num_slash16 must be positive")
    n = int(num_slash16)
    return ASTopology(
        tier=np.full(n, TIER_STUB, dtype=np.int8),
        provider=np.full(n, -1, dtype=np.int64),
        base_uncleanliness=np.zeros(n, dtype=np.float64),
        cleanup_days=np.full(n, np.nan, dtype=np.float64),
        as_of_net16=np.arange(n, dtype=np.int64),
        flat=True,
    )


def generate_topology(
    config: ASConfig, num_slash16: int, rng: np.random.Generator
) -> ASTopology:
    """Draw a CAIDA-like AS topology announcing ``num_slash16`` prefixes.

    Draw order (fixed; the substrate's bit-identity contract covers only
    the flat world, but a stable order keeps AS worlds reproducible):
    tier thresholds need no draws; then provider homing, per-AS posture,
    per-AS cleanup lag, per-AS prefix weights, and finally the prefix→AS
    assignment.
    """
    config.validate()
    if num_slash16 <= 0:
        raise ValueError("num_slash16 must be positive")
    n_as = min(config.num_as, num_slash16)

    # Tier split: the first ASes (by index) form the transit clique.
    n_transit = max(1, int(round(n_as * config.transit_fraction)))
    n_mid = max(1, int(round(n_as * config.mid_fraction)))
    n_transit = min(n_transit, n_as)
    n_mid = min(n_mid, n_as - n_transit)
    tier = np.full(n_as, TIER_STUB, dtype=np.int8)
    tier[:n_transit] = TIER_TRANSIT
    tier[n_transit:n_transit + n_mid] = TIER_MID

    # Provider homing: mids home on transit, stubs home on mids (or on
    # transit when there is no mid tier).
    provider = np.full(n_as, -1, dtype=np.int64)
    mid_idx = np.arange(n_transit, n_transit + n_mid)
    if mid_idx.size:
        provider[mid_idx] = rng.integers(0, n_transit, size=mid_idx.size)
    stub_idx = np.arange(n_transit + n_mid, n_as)
    if stub_idx.size:
        home_pool = mid_idx if mid_idx.size else np.arange(n_transit)
        provider[stub_idx] = rng.choice(home_pool, size=stub_idx.size)

    # Operator posture: tier mean, lognormal per-AS spread, then a pull
    # toward the provider's posture (top-down so the pull chains).
    tier_means = np.asarray(config.tier_uncleanliness, dtype=np.float64)
    base = tier_means[tier] * rng.lognormal(
        -config.uncleanliness_spread**2 / 2,
        config.uncleanliness_spread,
        size=n_as,
    )
    if config.provider_mix > 0:
        for idx in np.concatenate([mid_idx, stub_idx]):
            base[idx] = (
                (1.0 - config.provider_mix) * base[idx]
                + config.provider_mix * base[provider[idx]]
            )
    base = np.clip(base, 1e-4, 0.995)

    # Cleanup tempo: same tier-correlated shape.
    tier_cleanup = np.asarray(config.tier_cleanup_days, dtype=np.float64)
    cleanup = tier_cleanup[tier] * rng.lognormal(
        -config.cleanup_spread**2 / 2, config.cleanup_spread, size=n_as
    )
    cleanup = np.maximum(cleanup, 0.5)

    # Prefix→AS assignment: Pareto-tailed per-AS weights, every AS gets
    # at least one prefix (round-robin head), the rest proportionally.
    weights = rng.pareto(config.prefix_tail, size=n_as) + 1.0
    as_of_net16 = np.empty(num_slash16, dtype=np.int64)
    head = min(n_as, num_slash16)
    as_of_net16[:head] = rng.permutation(n_as)[:head]
    if num_slash16 > head:
        probs = weights / weights.sum()
        as_of_net16[head:] = rng.choice(
            n_as, size=num_slash16 - head, p=probs
        )

    return ASTopology(
        tier=tier,
        provider=provider,
        base_uncleanliness=base,
        cleanup_days=cleanup,
        as_of_net16=as_of_net16,
        flat=False,
    )
