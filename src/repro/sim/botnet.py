"""Discrete-time botnet ecosystem simulator.

Models the paper's generative assumptions (§1):

* **Opportunistic acquisition**: attackers compromise whatever is
  vulnerable; the probability that a compromise lands (and persists) in a
  network is driven by that network's uncleanliness, not by attacker
  choice.  New compromises arrive as a Poisson process over the whole
  study year and land in /24s weighted by
  ``population x uncleanliness^affinity``.
* **Defender-determined persistence**: how long a bot survives is a
  property of the victim network — clean institutions detect and reimage
  quickly, unclean ones don't (§1's institution A/B story).  Compromise
  durations are exponential with mean increasing in uncleanliness.  This
  is what produces *temporal* uncleanliness.
* **Botnet structure**: each compromise joins one of a set of C&C
  channels; a "provided bot report" is the membership of one or more
  channels during an observation window (how the paper's IRC-monitoring
  feed works).
* **Tasking**: while alive, a bot may be tasked with scanning and/or
  spamming; those activities are what the observed network's detectors
  see.

Everything is columnar over compromise events and deterministic given the
RNG.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.engine.fingerprint import addendum_field
from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import Window

if False:  # pragma: no cover - import for type checkers only
    from repro.sim.dynamics import UncleanlinessProcess

__all__ = ["BotnetConfig", "BotnetSimulation"]


@dataclass(frozen=True)
class BotnetConfig:
    """Parameters of the botnet ecosystem."""

    #: Simulation horizon in days (day 0 = 2006-01-01).
    horizon_days: int = 334  # through 2006-11-30

    #: Mean new compromises per day across the whole Internet.
    daily_compromises: float = 650.0

    #: Uncleanliness affinity of successful compromise (see
    #: :meth:`SyntheticInternet.compromise_weights`).
    affinity: float = 1.7

    #: Compromise duration: mean = base + gain * uncleanliness (days).
    base_duration_days: float = 3.0
    duration_gain_days: float = 45.0

    #: Number of distinct C&C channels (botnets).
    num_channels: int = 12

    #: Per-bot probability of being tasked as a scanner / spammer.
    scanner_fraction: float = 0.55
    spammer_fraction: float = 0.65

    #: Blacklist evasion strength (Ramachandran et al., cited in §2): the
    #: degree to which attackers avoid compromising hosts inside networks
    #: they know to be blocklisted.  0 = indifferent (the default; the
    #: paper's attackers are opportunistic), 1 = never touch listed /24s.
    #: Only has an effect when the simulation is given ``avoided_blocks``.
    evasion_strength: float = 0.0

    #: Attack-wave modulation of the arrival process (Chen et al.,
    #: "Spatiotemporal patterns and predictability of cyberattacks"):
    #: daily compromise intensity becomes
    #: ``1 + wave_amplitude * cos(2*pi*(day - wave_phase_days)/period)``.
    #: 0.0 keeps the paper's homogeneous Poisson arrivals.  All fields
    #: below are fingerprint addenda (omitted at default).
    wave_amplitude: float = addendum_field(default=0.0)
    wave_period_days: float = addendum_field(default=28.0)
    wave_phase_days: float = addendum_field(default=0.0)

    #: DHCP/NAT lease length in days for compromises inside dynamic
    #: pools (InternetConfig.dynamic_fraction): the infected machine
    #: re-appears under a fresh address in the same /16 every lease
    #: epoch.  0 disables rebinding.
    rebind_days: float = addendum_field(default=0.0)

    def validate(self) -> None:
        if not 0 <= self.evasion_strength <= 1:
            raise ValueError("evasion_strength must be in [0, 1]")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        if self.daily_compromises <= 0:
            raise ValueError("daily_compromises must be positive")
        if self.affinity < 0:
            raise ValueError("affinity must be non-negative")
        if self.base_duration_days < 0 or self.duration_gain_days < 0:
            raise ValueError("duration parameters must be non-negative")
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        for name in ("scanner_fraction", "spammer_fraction"):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1]")
        if not 0 <= self.wave_amplitude < 1:
            raise ValueError("wave_amplitude must be in [0, 1)")
        if self.wave_period_days <= 0:
            raise ValueError("wave_period_days must be positive")
        if self.rebind_days < 0:
            raise ValueError("rebind_days must be non-negative")


class BotnetSimulation:
    """The realised compromise history: one row per compromise event."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: BotnetConfig,
        rng: np.random.Generator,
        avoided_blocks: Optional[np.ndarray] = None,
        dynamics: Optional["UncleanlinessProcess"] = None,
    ) -> None:
        """``avoided_blocks`` is a sorted array of /24 network integers
        (e.g. a published blocklist) that blacklist-aware attackers
        deprioritise by ``config.evasion_strength``.  ``dynamics``
        substitutes a time-varying uncleanliness field
        (:class:`repro.sim.dynamics.UncleanlinessProcess`) for the
        internet's static one: compromises then land and persist
        according to the field in force at their start day.
        """
        config.validate()
        self.internet = internet
        self.config = config
        self.dynamics = dynamics
        if dynamics is not None and dynamics.config.horizon_days < config.horizon_days:
            raise ValueError("dynamics horizon shorter than botnet horizon")
        self.avoided_blocks = (
            np.unique(np.asarray(avoided_blocks, dtype=np.uint32))
            if avoided_blocks is not None
            else None
        )
        self._generate(rng)

    def _apply_evasion(self, weights: np.ndarray) -> np.ndarray:
        cfg = self.config
        if self.avoided_blocks is not None and cfg.evasion_strength > 0:
            listed = np.isin(self.internet.net24, self.avoided_blocks)
            weights = np.where(
                listed, weights * (1.0 - cfg.evasion_strength), weights
            )
        return weights

    def _draw_start_days(self, total: int, rng: np.random.Generator) -> np.ndarray:
        """Compromise start days: uniform, or wave-modulated when the
        attack-wave knobs are set (gated so the default path's draw
        sequence is untouched)."""
        cfg = self.config
        if cfg.wave_amplitude <= 0:
            return rng.integers(0, cfg.horizon_days, size=total, dtype=np.int64)
        days = np.arange(cfg.horizon_days, dtype=np.float64)
        intensity = 1.0 + cfg.wave_amplitude * np.cos(
            2.0 * np.pi * (days - cfg.wave_phase_days) / cfg.wave_period_days
        )
        return rng.choice(
            cfg.horizon_days, size=total, p=intensity / intensity.sum()
        ).astype(np.int64)

    def _generate(self, rng: np.random.Generator) -> None:
        cfg = self.config
        total = rng.poisson(cfg.daily_compromises * cfg.horizon_days)
        if total == 0:
            raise RuntimeError("botnet simulation produced no compromises")

        if self.dynamics is None:
            weights = self._apply_evasion(
                self.internet.compromise_weights(cfg.affinity)
            )
            wsum = weights.sum()
            if wsum <= 0:
                raise RuntimeError("internet has no compromisable population")
            probs = weights / wsum
            self.network_index = rng.choice(
                self.internet.num_networks, size=total, p=probs
            )
        else:
            self.network_index = np.empty(total, dtype=np.int64)

        if self.dynamics is None:
            populations = self.internet.population[self.network_index].astype(np.float64)
            slots = (rng.random(total) * populations).astype(np.uint32)
            self.address = self.internet.net24[self.network_index] + (
                self.internet.host_offsets(slots)
            )
            self.start_day = self._draw_start_days(total, rng)
            unclean = self.internet.uncleanliness[self.network_index]
        else:
            # Time-varying field: draw start days first, then place each
            # epoch's compromises under that epoch's weights.
            self.start_day = self._draw_start_days(total, rng)
            epoch_days = self.dynamics.config.epoch_days
            epochs = self.start_day // epoch_days
            for epoch in np.unique(epochs):
                members = np.nonzero(epochs == epoch)[0]
                weights = self._apply_evasion(
                    self.dynamics.compromise_weights(
                        int(epoch) * epoch_days, cfg.affinity
                    )
                )
                wsum = weights.sum()
                if wsum <= 0:
                    raise RuntimeError(
                        f"no compromisable population in epoch {epoch}"
                    )
                self.network_index[members] = rng.choice(
                    self.internet.num_networks, size=members.size, p=weights / wsum
                )
            populations = self.internet.population[self.network_index].astype(np.float64)
            slots = (rng.random(total) * populations).astype(np.uint32)
            self.address = self.internet.net24[self.network_index] + (
                self.internet.host_offsets(slots)
            )
            unclean = self.dynamics.uncleanliness[
                self.start_day // epoch_days, self.network_index
            ]

        # Operator regime: the announcing AS's cleanup tempo scales the
        # compromise duration (all ones in the flat world, a bit-exact
        # multiplication); a mid-window prefix reassignment switches the
        # uncleanliness + tempo regime for events starting after it.
        duration_factor = self.internet.duration_factor[self.network_index]
        if self.dynamics is None and self.internet.reassignment_day >= 0:
            post = self.start_day >= self.internet.reassignment_day
            unclean = np.where(
                post,
                self.internet.uncleanliness_after[self.network_index],
                unclean,
            )
            duration_factor = np.where(
                post,
                self.internet.duration_factor_after[self.network_index],
                duration_factor,
            )

        mean_duration = (
            cfg.base_duration_days + cfg.duration_gain_days * unclean
        ) * duration_factor
        durations = np.maximum(1, rng.exponential(mean_duration).astype(np.int64))
        self.end_day = np.minimum(self.start_day + durations, cfg.horizon_days - 1)

        self.channel = rng.integers(0, cfg.num_channels, size=total, dtype=np.int64)
        self.is_scanner = rng.random(total) < cfg.scanner_fraction
        self.is_spammer = rng.random(total) < cfg.spammer_fraction

        if cfg.rebind_days > 0 and bool(self.internet.dynamic.any()):
            self._apply_rebinding(rng)

        for arr in (
            self.network_index,
            self.address,
            self.start_day,
            self.end_day,
            self.channel,
            self.is_scanner,
            self.is_spammer,
        ):
            arr.setflags(write=False)

    def _apply_rebinding(self, rng: np.random.Generator) -> None:
        """Split dynamic-pool compromises into DHCP lease segments.

        Each segment is a separate event row carrying a fresh address
        drawn inside the same /16's occupied pool; channel membership
        and tasking ride along with the machine, not the address.
        """
        from repro.sim.dynamics import rebind_segments

        owners, network_index, address, start_day, end_day = rebind_segments(
            self.internet,
            self.network_index,
            self.address,
            self.start_day,
            self.end_day,
            self.config.rebind_days,
            rng,
        )
        self.network_index = network_index
        self.address = address
        self.start_day = start_day
        self.end_day = end_day
        self.channel = self.channel[owners]
        self.is_scanner = self.is_scanner[owners]
        self.is_spammer = self.is_spammer[owners]

    # -- queries ---------------------------------------------------------

    @property
    def num_events(self) -> int:
        return int(self.address.size)

    def active_mask(self, window: Window) -> np.ndarray:
        """Events whose compromise interval overlaps ``window``."""
        return (self.start_day <= window.end_day) & (self.end_day >= window.start_day)

    def active_addresses(
        self,
        window: Window,
        channels: Optional[Sequence[int]] = None,
        scanners_only: bool = False,
        spammers_only: bool = False,
    ) -> np.ndarray:
        """Unique addresses of bots active during ``window``."""
        mask = self.active_mask(window)
        if channels is not None:
            mask &= np.isin(self.channel, np.asarray(list(channels)))
        if scanners_only:
            mask &= self.is_scanner
        if spammers_only:
            mask &= self.is_spammer
        return np.unique(self.address[mask])

    def channel_members(self, channel: int, window: Window) -> np.ndarray:
        """C&C channel membership during ``window`` (the IRC-feed view)."""
        if not 0 <= channel < self.config.num_channels:
            raise ValueError(f"no such channel: {channel}")
        return self.active_addresses(window, channels=[channel])

    def daily_active_count(self, day: int) -> int:
        """Number of live bots on one day."""
        window = Window(day, day)
        return int(self.active_mask(window).sum())

    def event_indices(self, window: Window) -> np.ndarray:
        """Indices of events overlapping ``window`` (for flow generation)."""
        return np.nonzero(self.active_mask(window))[0]

    # -- interventions -----------------------------------------------------

    def with_cleanup(
        self,
        channel: int,
        report_day: int,
        mean_cleanup_days: float,
        rng: np.random.Generator,
    ) -> "BotnetSimulation":
        """A copy where a published bot report triggers cleanup.

        Figure 1 of the paper shows botnet scanning dropping noticeably
        after the bot report circulates: once addresses are published,
        their owners (or upstreams) remediate.  This truncates the
        compromise interval of every bot in ``channel`` still alive on
        ``report_day`` to ``report_day`` plus an exponential lag.
        """
        clone = object.__new__(BotnetSimulation)
        clone.internet = self.internet
        clone.config = self.config
        clone.avoided_blocks = self.avoided_blocks
        clone.dynamics = self.dynamics
        for name in (
            "network_index",
            "address",
            "start_day",
            "channel",
            "is_scanner",
            "is_spammer",
        ):
            setattr(clone, name, getattr(self, name))
        end_day = self.end_day.copy()
        affected = (
            (self.channel == channel)
            & (self.start_day <= report_day)
            & (self.end_day > report_day)
        )
        count = int(affected.sum())
        if count:
            lags = np.maximum(
                1, rng.exponential(mean_cleanup_days, size=count).astype(np.int64)
            )
            end_day[affected] = np.minimum(
                end_day[affected], report_day + lags
            )
        end_day.setflags(write=False)
        clone.end_day = end_day
        return clone

    def __repr__(self) -> str:
        return (
            f"BotnetSimulation(events={self.num_events}, "
            f"channels={self.config.num_channels}, "
            f"horizon={self.config.horizon_days}d)"
        )
