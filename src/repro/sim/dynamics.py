"""Time-varying uncleanliness.

The base simulator treats uncleanliness as a static per-/24 field, which
bakes in the paper's temporal hypothesis (networks stay unclean).  This
module makes the field a *process* so the hypothesis can be probed rather
than assumed.

Model: the field is piecewise constant over epochs.  In each epoch every
network either **keeps** its structural uncleanliness (with probability
``stability`` — the institution's enduring posture) or takes a
**transient** value drawn by permuting the structural field (plus
optional lognormal jitter).  Permutation preserves the cross-sectional
distribution exactly, so *spatial* clustering is identical at every
stability — only the field's *memory* changes:

* ``stability=1`` — the paper's world: a network's dirt level never
  moves, so months-old reports stay predictive.
* ``stability=0`` — hygiene reshuffles every epoch: at any instant dirt
  still clusters somewhere (spatial uncleanliness survives) but past
  reports point at yesterday's dirty networks (temporal uncleanliness
  collapses).

The field-stability ablation in :mod:`repro.experiments.ablation` sweeps
``stability`` and measures exactly that collapse.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.sim.internet import SyntheticInternet

__all__ = ["DynamicsConfig", "UncleanlinessProcess", "rebind_segments"]


def rebind_segments(
    internet: SyntheticInternet,
    network_index: np.ndarray,
    address: np.ndarray,
    start_day: np.ndarray,
    end_day: np.ndarray,
    rebind_days: float,
    rng: np.random.Generator,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Split dynamic-pool compromise events into DHCP lease segments.

    Lease epochs of length ``rebind_days`` are anchored at day 0; an
    event inside a dynamic /16 (``internet.dynamic``) spanning epochs
    ``k0..k1`` becomes one segment per epoch, clipped to the original
    interval.  The first segment keeps the original address; every later
    segment re-draws a live host inside the *same /16's* occupied /24
    pool — the machine stays compromised, its address moves.  Events in
    static space pass through as single segments.

    Returns ``(owners, network_index, address, start_day, end_day)``
    where ``owners`` maps each output segment to its input event (use it
    to expand per-event columns such as channel or tasking flags).

    Fully vectorised: epoch arithmetic, the segment fan-out and the
    address re-draws are all flat array operations — no per-event Python
    loop, so a million-event churn world costs a handful of kernels.
    """
    if rebind_days <= 0:
        raise ValueError("rebind_days must be positive")
    lease = max(1, int(round(rebind_days)))
    dynamic = internet.dynamic[network_index]

    k0 = start_day // lease
    k1 = end_day // lease
    n_seg = np.where(dynamic, k1 - k0 + 1, 1).astype(np.int64)

    total = int(n_seg.sum())
    owners = np.repeat(np.arange(network_index.size, dtype=np.int64), n_seg)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(
        np.cumsum(n_seg) - n_seg, n_seg
    )
    seg_k = k0[owners] + offsets

    seg_start = np.maximum(start_day[owners], seg_k * lease)
    seg_end = np.minimum(end_day[owners], (seg_k + 1) * lease - 1)

    seg_net = network_index[owners].copy()
    seg_addr = address[owners].copy()

    # Later segments of dynamic events re-draw /24 + host slot within
    # the /16's occupied pool.
    redraw = (offsets > 0) & dynamic[owners]
    count = int(redraw.sum())
    if count:
        starts16, ends16 = internet.slash16_bounds()
        net16 = internet.net16_index[network_index[owners[redraw]]]
        pool = (ends16 - starts16)[net16].astype(np.float64)
        new_net = starts16[net16] + (rng.random(count) * pool).astype(np.int64)
        slots = (
            rng.random(count) * internet.population[new_net].astype(np.float64)
        ).astype(np.uint32)
        seg_net[redraw] = new_net
        seg_addr[redraw] = internet.net24[new_net] + internet.host_offsets(slots)

    return owners, seg_net, seg_addr, seg_start, seg_end


@dataclass(frozen=True)
class DynamicsConfig:
    """Parameters of the uncleanliness process."""

    #: Days per epoch (the field is piecewise constant within an epoch).
    epoch_days: int = 30

    #: Horizon in days (must cover the simulations using the process).
    horizon_days: int = 334

    #: Per-epoch probability that a network keeps its structural value.
    stability: float = 1.0

    #: Lognormal jitter applied to transient (reshuffled) values.
    innovation_sigma: float = 0.3

    def validate(self) -> None:
        if self.epoch_days <= 0:
            raise ValueError("epoch_days must be positive")
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        if not 0 <= self.stability <= 1:
            raise ValueError("stability must be in [0, 1]")
        if self.innovation_sigma < 0:
            raise ValueError("innovation_sigma must be non-negative")

    @property
    def num_epochs(self) -> int:
        return -(-self.horizon_days // self.epoch_days)  # ceil division


class UncleanlinessProcess:
    """The realised per-epoch uncleanliness field."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: DynamicsConfig,
        rng: np.random.Generator,
    ) -> None:
        config.validate()
        self.internet = internet
        self.config = config
        self._generate(rng)

    def _generate(self, rng: np.random.Generator) -> None:
        cfg = self.config
        base = self.internet.uncleanliness
        epochs = cfg.num_epochs
        networks = base.size

        field = np.empty((epochs, networks), dtype=np.float64)
        for epoch in range(epochs):
            if cfg.stability >= 1:
                field[epoch] = base
                continue
            keep = rng.random(networks) < cfg.stability
            transient = rng.permutation(base)
            if cfg.innovation_sigma > 0:
                transient = np.clip(
                    transient
                    * rng.lognormal(0.0, cfg.innovation_sigma, size=networks),
                    0.0,
                    1.0,
                )
            field[epoch] = np.where(keep, base, transient)

        self.uncleanliness = field
        self.uncleanliness.setflags(write=False)

    # -- queries ------------------------------------------------------------

    def epoch_of(self, day: int) -> int:
        """Epoch index containing ``day``."""
        if not 0 <= day < self.config.horizon_days:
            raise ValueError(
                f"day {day} outside process horizon "
                f"[0, {self.config.horizon_days})"
            )
        return day // self.config.epoch_days

    def at_day(self, day: int) -> np.ndarray:
        """Per-/24 uncleanliness in force on ``day``."""
        return self.uncleanliness[self.epoch_of(day)]

    def at_epoch(self, epoch: int) -> np.ndarray:
        return self.uncleanliness[epoch]

    def compromise_weights(self, day: int, affinity: float = 1.7) -> np.ndarray:
        """Population x uncleanliness^affinity on ``day`` (cf.
        :meth:`SyntheticInternet.compromise_weights`)."""
        return self.internet.population.astype(np.float64) * np.power(
            self.at_day(day), affinity
        )

    def field_correlation(self, day_a: int, day_b: int) -> float:
        """Pearson correlation of the field between two days.

        1 for a frozen field; decays toward 0 as stability drops and the
        epochs diverge.
        """
        a = self.at_day(day_a)
        b = self.at_day(day_b)
        if np.allclose(a, a.mean()) or np.allclose(b, b.mean()):
            return 1.0
        return float(np.corrcoef(a, b)[0, 1])

    def __repr__(self) -> str:
        return (
            f"UncleanlinessProcess(epochs={self.config.num_epochs}, "
            f"stability={self.config.stability})"
        )
