"""A synthetic Internet with per-network uncleanliness.

This is the substrate that replaces the paper's proprietary vantage: a
population of occupied /24 networks spread non-uniformly over the 2006
allocated IPv4 space, each carrying

* a **host population** (how many addresses are live),
* an **uncleanliness** score in [0, 1] — the paper's hidden network
  property: "an indicator of the propensity for hosts in a network to be
  compromised" (§1), and
* a **hosting flag** marking datacenter-style blocks where public web
  servers (and therefore phishing sites, §5.2) concentrate.

Structure follows the paper's modelling assumptions:

* addresses are *not* uniform in IPv4 space (Kohler et al., cited in
  §4.2): occupied /16s are a sparse subset of allocated space and /24
  occupancy within a /16 varies widely;
* uncleanliness is correlated within a /16 (institutions run many
  adjacent /24s), which produces the spatial clustering the paper
  measures, and is heavy-tailed: most networks are mostly clean, a small
  minority are very unclean.

Everything is generated deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask

__all__ = ["InternetConfig", "SyntheticInternet"]


@dataclass(frozen=True)
class InternetConfig:
    """Generation parameters for :class:`SyntheticInternet`.

    The defaults give a reproduction-scale Internet: roughly 50k occupied
    /24s and 2M live hosts (the paper's vantage saw 47M distinct
    addresses; all analyses are size-relative, so scale does not affect
    shape).
    """

    #: Number of occupied /16 networks drawn from allocated space.
    num_slash16: int = 950

    #: Mean fraction of a /16's 256 possible /24s that are occupied.
    mean_occupancy: float = 0.30

    #: Lognormal sigma of per-/16 occupancy variation (address-structure
    #: burstiness per Kohler et al.).
    occupancy_sigma: float = 0.8

    #: Beta parameters of the per-/16 base uncleanliness distribution.
    #: (0.28, 3.0) gives a mostly-clean Internet with a heavy unclean tail.
    uncleanliness_alpha: float = 0.28
    uncleanliness_beta: float = 3.0

    #: Lognormal sigma of per-/24 uncleanliness variation around the /16 base.
    uncleanliness_noise: float = 0.45

    #: Fraction of /16s that are hosting/datacenter space.
    hosting_fraction: float = 0.04

    #: Mean live hosts per occupied /24 (geometric, capped at 254).
    mean_hosts: float = 90.0

    #: The observed edge network; external reports exclude it (§3.2).
    #: A /8 stands in for the paper's 20M-address network.
    observed_octet: int = 30

    def validate(self) -> None:
        if self.num_slash16 <= 0:
            raise ValueError("num_slash16 must be positive")
        if not 0 < self.mean_occupancy <= 1:
            raise ValueError("mean_occupancy must be in (0, 1]")
        if not 0 <= self.hosting_fraction <= 1:
            raise ValueError("hosting_fraction must be in [0, 1]")
        if self.mean_hosts < 1:
            raise ValueError("mean_hosts must be at least 1")
        if not 0 <= self.observed_octet <= 255:
            raise ValueError("observed_octet out of range")


class SyntheticInternet:
    """The generated network population (columnar over occupied /24s)."""

    def __init__(self, config: InternetConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self.observed_network = CIDRBlock(config.observed_octet << 24, 8)
        self._generate(rng)

    # -- generation ----------------------------------------------------------

    def _generate(self, rng: np.random.Generator) -> None:
        cfg = self.config
        octets = np.asarray(
            sorted(allocated_octets() - {cfg.observed_octet}), dtype=np.uint32
        )

        # Occupied /16s: skewed across /8s (some /8s much denser than others).
        octet_weights = rng.dirichlet(np.full(octets.size, 0.5))
        slash16_octets = rng.choice(octets, size=cfg.num_slash16 * 2, p=octet_weights)
        slash16_seconds = rng.integers(0, 256, size=cfg.num_slash16 * 2, dtype=np.uint32)
        slash16 = np.unique(
            (slash16_octets << np.uint32(24)) | (slash16_seconds << np.uint32(16))
        )[: cfg.num_slash16]

        # Per-/16 character: base uncleanliness, occupancy, hosting flag.
        base_unclean = rng.beta(
            cfg.uncleanliness_alpha, cfg.uncleanliness_beta, size=slash16.size
        )
        occupancy = cfg.mean_occupancy * rng.lognormal(
            -cfg.occupancy_sigma**2 / 2, cfg.occupancy_sigma, size=slash16.size
        )
        occupancy = np.clip(occupancy, 1.0 / 256, 1.0)
        hosting16 = rng.random(slash16.size) < cfg.hosting_fraction

        # Occupied /24s within each /16.
        nets, net16_index = [], []
        for i, base in enumerate(slash16):
            count = max(1, int(rng.binomial(256, occupancy[i])))
            thirds = rng.choice(256, size=count, replace=False).astype(np.uint32)
            nets.append(base | (thirds << np.uint32(8)))
            net16_index.append(np.full(count, i, dtype=np.int64))
        net24 = np.concatenate(nets)
        self._net16_index = np.concatenate(net16_index)

        order = np.argsort(net24)
        self.net24 = net24[order]
        self._net16_index = self._net16_index[order]

        # Per-/24 uncleanliness: /16 base modulated by lognormal noise, so
        # dirt clusters hierarchically.
        noise = rng.lognormal(0.0, cfg.uncleanliness_noise, size=self.net24.size)
        self.uncleanliness = np.clip(
            base_unclean[self._net16_index] * noise, 0.0, 1.0
        )

        # Host populations: geometric with the configured mean, capped to
        # the usable host range of a /24.
        populations = rng.geometric(1.0 / cfg.mean_hosts, size=self.net24.size)
        self.population = np.minimum(populations, 254).astype(np.uint16)

        self.hosting = hosting16[self._net16_index]

        # Hosting blocks are professionally run: damp their uncleanliness.
        self.uncleanliness = np.where(
            self.hosting, self.uncleanliness * 0.25, self.uncleanliness
        )

        for arr in (self.net24, self.uncleanliness, self.population, self.hosting):
            arr.setflags(write=False)

    # -- introspection ---------------------------------------------------------

    @property
    def num_networks(self) -> int:
        """Number of occupied /24s."""
        return int(self.net24.size)

    @property
    def total_population(self) -> int:
        """Total live hosts across all occupied /24s."""
        return int(self.population.astype(np.int64).sum())

    def network_of(self, address: int) -> Optional[int]:
        """Index of the occupied /24 containing ``address``, or None."""
        net = np.uint32(as_int(address) & 0xFFFFFF00)
        idx = int(np.searchsorted(self.net24, net))
        if idx < self.net24.size and self.net24[idx] == net:
            return idx
        return None

    def is_observed(self, address: int) -> bool:
        """Whether an address lies inside the observed edge network."""
        return self.observed_network.contains(address)

    # -- address generation -----------------------------------------------------

    #: Stride for spreading live hosts across a /24.  Real populations are
    #: not packed at the bottom of the block (DHCP pools, static servers,
    #: NAT gateways sit anywhere), and the paper's Table 3 depends on this:
    #: its FP counts collapse past /26 because innocent hosts do NOT share
    #: small sub-blocks with bots.  167 is coprime to 254, so the stride
    #: walk visits every usable offset exactly once.
    HOST_STRIDE = 167

    @classmethod
    def host_offsets(cls, indices: np.ndarray) -> np.ndarray:
        """Last-octet offsets of host slots ``indices`` (0-based) in a /24."""
        spread = (np.asarray(indices, dtype=np.uint32) * cls.HOST_STRIDE) % 254
        return spread + 1

    def host_addresses(self, network_index: int) -> np.ndarray:
        """All live host addresses of one /24 (spread over the block)."""
        base = self.net24[network_index]
        count = int(self.population[network_index])
        return base + self.host_offsets(np.arange(count))

    def sample_hosts(
        self,
        count: int,
        rng: np.random.Generator,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sample ``count`` live host addresses (with replacement).

        ``weights`` are per-/24 selection weights; the default weights by
        host population, which models "addresses observed at a busy
        vantage" and backs the control report.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if weights is None:
            weights = self.population.astype(np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights sum to zero")
        probs = weights / total
        net_idx = rng.choice(self.num_networks, size=count, p=probs)
        slots = (
            rng.random(count) * self.population[net_idx].astype(np.float64)
        ).astype(np.uint32)
        return self.net24[net_idx] + self.host_offsets(slots)

    def sample_unique_hosts(
        self,
        count: int,
        rng: np.random.Generator,
        weights: Optional[np.ndarray] = None,
        max_rounds: int = 12,
    ) -> np.ndarray:
        """Sample until ``count`` *distinct* host addresses are collected.

        Raises if the population cannot supply that many distinct hosts.
        """
        if count > self.total_population:
            raise ValueError(
                f"requested {count} unique hosts but population is "
                f"{self.total_population}"
            )
        seen = np.asarray([], dtype=np.uint32)
        for _ in range(max_rounds):
            need = count - seen.size
            if need <= 0:
                break
            batch = self.sample_hosts(max(need * 2, 64), rng, weights)
            seen = np.union1d(seen, batch)
        if seen.size < count:
            raise RuntimeError("unique host sampling did not converge")
        return rng.choice(seen, size=count, replace=False)

    # -- weights for the actors ----------------------------------------------------

    def compromise_weights(self, affinity: float = 2.0) -> np.ndarray:
        """Per-/24 weights for opportunistic compromise.

        Attackers hit everyone; *successful, persistent* compromise
        concentrates in unclean networks (§1).  Weight = population x
        uncleanliness^affinity.
        """
        return self.population.astype(np.float64) * np.power(
            self.uncleanliness, affinity
        )

    def hosting_weights(self, uncleanliness_pull: float = 0.08) -> np.ndarray:
        """Per-/24 weights for phishing-site placement.

        Phishers prefer hosting blocks (robust web serving, §5.2), with a
        small pull toward unclean space (compromised web servers exist).
        """
        base = self.population.astype(np.float64)
        hosting_term = np.where(self.hosting, 1.0, 0.01)
        return base * (hosting_term + uncleanliness_pull * self.uncleanliness)

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(networks={self.num_networks}, "
            f"hosts={self.total_population}, observed={self.observed_network})"
        )
