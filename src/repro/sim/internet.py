"""A synthetic Internet with per-network uncleanliness.

This is the substrate that replaces the paper's proprietary vantage: a
population of occupied /24 networks spread non-uniformly over the 2006
allocated IPv4 space, each carrying

* a **host population** (how many addresses are live),
* an **uncleanliness** score in [0, 1] — the paper's hidden network
  property: "an indicator of the propensity for hosts in a network to be
  compromised" (§1), and
* a **hosting flag** marking datacenter-style blocks where public web
  servers (and therefore phishing sites, §5.2) concentrate.

Structure follows the paper's modelling assumptions:

* addresses are *not* uniform in IPv4 space (Kohler et al., cited in
  §4.2): occupied /16s are a sparse subset of allocated space and /24
  occupancy within a /16 varies widely;
* uncleanliness is correlated within a /16 (institutions run many
  adjacent /24s), which produces the spatial clustering the paper
  measures, and is heavy-tailed: most networks are mostly clean, a small
  minority are very unclean.

Since the AS-substrate refactor the /16s are themselves announced by a
two-level autonomous-system topology (:mod:`repro.sim.asys`): with
:attr:`InternetConfig.asys` set, per-/16 base uncleanliness concentrates
around the announcing operator's posture and per-/24 compromise
durations stretch or shrink with the operator's cleanup tempo.  The
default (``asys=None``) keeps the original flat statistics and is
**bit-identical** to the pre-AS substrate: the flat topology is built
without consuming any random draws, and every AS-only knob is gated so
the flat path's draw sequence never changes.

Everything is generated deterministically from a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.engine.fingerprint import addendum_field
from repro.ipspace.addr import as_int
from repro.ipspace.cidr import CIDRBlock
from repro.ipspace.iana import allocated_octets
from repro.ipspace.reserved import reserved_mask
from repro.sim.asys import ASConfig, ASTopology, flat_topology, generate_topology

__all__ = ["InternetConfig", "SyntheticInternet"]


@dataclass(frozen=True)
class InternetConfig:
    """Generation parameters for :class:`SyntheticInternet`.

    The defaults give a reproduction-scale Internet: roughly 50k occupied
    /24s and 2M live hosts (the paper's vantage saw 47M distinct
    addresses; all analyses are size-relative, so scale does not affect
    shape).
    """

    #: Number of occupied /16 networks drawn from allocated space.
    num_slash16: int = 950

    #: Mean fraction of a /16's 256 possible /24s that are occupied.
    mean_occupancy: float = 0.30

    #: Lognormal sigma of per-/16 occupancy variation (address-structure
    #: burstiness per Kohler et al.).
    occupancy_sigma: float = 0.8

    #: Beta parameters of the per-/16 base uncleanliness distribution.
    #: (0.28, 3.0) gives a mostly-clean Internet with a heavy unclean tail.
    uncleanliness_alpha: float = 0.28
    uncleanliness_beta: float = 3.0

    #: Lognormal sigma of per-/24 uncleanliness variation around the /16 base.
    uncleanliness_noise: float = 0.45

    #: Fraction of /16s that are hosting/datacenter space.
    hosting_fraction: float = 0.04

    #: Mean live hosts per occupied /24 (geometric, capped at 254).
    mean_hosts: float = 90.0

    #: The observed edge network; external reports exclude it (§3.2).
    #: A /8 stands in for the paper's 20M-address network.
    observed_octet: int = 30

    #: AS-level structure (None = the original flat world).  All four
    #: fields below are fingerprint addenda: at their defaults they are
    #: omitted from the canonical form, so pre-AS cache keys stay valid.
    asys: Optional[ASConfig] = addendum_field(default=None)

    #: Fraction of /16s that are DHCP/NAT dynamic pools (addresses there
    #: rebind over time; see BotnetConfig.rebind_days).
    dynamic_fraction: float = addendum_field(default=0.0)

    #: Prefix reassignment event: on ``reassignment_day`` a random
    #: ``reassignment_fraction`` of /16s moves to a different announcing
    #: AS and takes on the new operator's uncleanliness and cleanup
    #: regime for compromises starting after that day.  Requires
    #: ``asys``; -1 / 0.0 disables.
    reassignment_day: int = addendum_field(default=-1)
    reassignment_fraction: float = addendum_field(default=0.0)

    def validate(self) -> None:
        if self.num_slash16 <= 0:
            raise ValueError("num_slash16 must be positive")
        if not 0 < self.mean_occupancy <= 1:
            raise ValueError("mean_occupancy must be in (0, 1]")
        if self.occupancy_sigma < 0:
            raise ValueError("occupancy_sigma must be non-negative")
        if self.uncleanliness_alpha <= 0 or self.uncleanliness_beta <= 0:
            raise ValueError("uncleanliness beta parameters must be positive")
        if self.uncleanliness_noise < 0:
            raise ValueError("uncleanliness_noise must be non-negative")
        if not 0 <= self.hosting_fraction <= 1:
            raise ValueError("hosting_fraction must be in [0, 1]")
        if self.mean_hosts < 1:
            raise ValueError("mean_hosts must be at least 1")
        if not 0 <= self.observed_octet <= 255:
            raise ValueError("observed_octet out of range")
        if self.asys is not None:
            self.asys.validate()
        if not 0 <= self.dynamic_fraction <= 1:
            raise ValueError("dynamic_fraction must be in [0, 1]")
        if not 0 <= self.reassignment_fraction <= 1:
            raise ValueError("reassignment_fraction must be in [0, 1]")
        if self.reassignment_fraction > 0:
            if self.asys is None:
                raise ValueError(
                    "prefix reassignment requires AS structure: set "
                    "InternetConfig.asys"
                )
            if self.reassignment_day < 0:
                raise ValueError(
                    "reassignment_fraction > 0 needs reassignment_day >= 0"
                )


class SyntheticInternet:
    """The generated network population (columnar over occupied /24s)."""

    def __init__(self, config: InternetConfig, rng: np.random.Generator) -> None:
        config.validate()
        self.config = config
        self.observed_network = CIDRBlock(config.observed_octet << 24, 8)
        self._generate(rng)

    # -- generation ----------------------------------------------------------

    def _generate(self, rng: np.random.Generator) -> None:
        cfg = self.config
        octets = np.asarray(
            sorted(allocated_octets() - {cfg.observed_octet}), dtype=np.uint32
        )

        # Occupied /16s: skewed across /8s (some /8s much denser than others).
        octet_weights = rng.dirichlet(np.full(octets.size, 0.5))
        slash16_octets = rng.choice(octets, size=cfg.num_slash16 * 2, p=octet_weights)
        slash16_seconds = rng.integers(0, 256, size=cfg.num_slash16 * 2, dtype=np.uint32)
        slash16 = np.unique(
            (slash16_octets << np.uint32(24)) | (slash16_seconds << np.uint32(16))
        )[: cfg.num_slash16]

        # The announcing-AS layer.  The flat topology consumes no draws
        # (bit-identity of the default world); the AS topology draws its
        # plan first, then per-/16 base uncleanliness concentrates
        # around each announcing operator's posture.
        if cfg.asys is None:
            self.topology: ASTopology = flat_topology(slash16.size)
            # Per-/16 character: base uncleanliness, occupancy, hosting.
            base_unclean = rng.beta(
                cfg.uncleanliness_alpha, cfg.uncleanliness_beta, size=slash16.size
            )
        else:
            self.topology = generate_topology(cfg.asys, slash16.size, rng)
            as_mean = self.topology.base_uncleanliness[self.topology.as_of_net16]
            conc = cfg.asys.concentration
            base_unclean = rng.beta(conc * as_mean, conc * (1.0 - as_mean))
        occupancy = cfg.mean_occupancy * rng.lognormal(
            -cfg.occupancy_sigma**2 / 2, cfg.occupancy_sigma, size=slash16.size
        )
        occupancy = np.clip(occupancy, 1.0 / 256, 1.0)
        hosting16 = rng.random(slash16.size) < cfg.hosting_fraction

        # Occupied /24s within each /16.
        nets, net16_index = [], []
        for i, base in enumerate(slash16):
            count = max(1, int(rng.binomial(256, occupancy[i])))
            thirds = rng.choice(256, size=count, replace=False).astype(np.uint32)
            nets.append(base | (thirds << np.uint32(8)))
            net16_index.append(np.full(count, i, dtype=np.int64))
        net24 = np.concatenate(nets)
        self._net16_index = np.concatenate(net16_index)

        order = np.argsort(net24)
        self.net24 = net24[order]
        self._net16_index = self._net16_index[order]

        # Per-/24 uncleanliness: /16 base modulated by lognormal noise, so
        # dirt clusters hierarchically.
        noise = rng.lognormal(0.0, cfg.uncleanliness_noise, size=self.net24.size)
        self.uncleanliness = np.clip(
            base_unclean[self._net16_index] * noise, 0.0, 1.0
        )

        # Host populations: geometric with the configured mean, capped to
        # the usable host range of a /24.
        populations = rng.geometric(1.0 / cfg.mean_hosts, size=self.net24.size)
        self.population = np.minimum(populations, 254).astype(np.uint16)

        self.hosting = hosting16[self._net16_index]

        # Hosting blocks are professionally run: damp their uncleanliness.
        self.uncleanliness = np.where(
            self.hosting, self.uncleanliness * 0.25, self.uncleanliness
        )

        # -- AS-derived per-/24 fields -----------------------------------
        # All draws below are gated on non-default config, so the flat
        # default world's draw sequence ends exactly where it always did.
        self.slash16 = slash16
        self.as_of_net24 = self.topology.as_of_net16[self._net16_index]
        if self.topology.flat:
            # Multiplying by an all-ones factor is bit-exact (x * 1.0).
            self.duration_factor = np.ones(self.net24.size, dtype=np.float64)
        else:
            per_as = self.topology.duration_factor(cfg.asys.reference_cleanup_days)
            self.duration_factor = per_as[self.as_of_net24]

        if cfg.dynamic_fraction > 0:
            dynamic16 = rng.random(slash16.size) < cfg.dynamic_fraction
        else:
            dynamic16 = np.zeros(slash16.size, dtype=bool)
        self.dynamic = dynamic16[self._net16_index]

        if cfg.reassignment_fraction > 0:
            self._generate_reassignment(rng)
        else:
            self.uncleanliness_after = self.uncleanliness
            self.duration_factor_after = self.duration_factor
            self.as_of_net24_after = self.as_of_net24

        for arr in (
            self.net24,
            self.uncleanliness,
            self.population,
            self.hosting,
            self.slash16,
            self.as_of_net24,
            self.duration_factor,
            self.dynamic,
            self.uncleanliness_after,
            self.duration_factor_after,
            self.as_of_net24_after,
        ):
            arr.setflags(write=False)

    def _generate_reassignment(self, rng: np.random.Generator) -> None:
        """Draw the mid-window prefix-reassignment event.

        Affected /16s move to a uniformly-drawn new AS; their /24s'
        *after* regime (uncleanliness + cleanup tempo) is re-drawn from
        the new operator's posture exactly the way the original regime
        was drawn from the old one.
        """
        cfg = self.config
        topo = self.topology
        n16 = self.slash16.size
        affected16 = rng.random(n16) < cfg.reassignment_fraction
        new_as16 = topo.as_of_net16.copy()
        count = int(affected16.sum())
        if count:
            new_as16[affected16] = rng.integers(0, topo.num_as, size=count)
        self.as_of_net24_after = new_as16[self._net16_index]

        conc = cfg.asys.concentration
        base16 = np.zeros(n16, dtype=np.float64)
        if count:
            mean_new = topo.base_uncleanliness[new_as16[affected16]]
            base16[affected16] = rng.beta(
                conc * mean_new, conc * (1.0 - mean_new)
            )
        mask24 = affected16[self._net16_index]
        after = np.array(self.uncleanliness, copy=True)
        changed = int(mask24.sum())
        if changed:
            noise = rng.lognormal(0.0, cfg.uncleanliness_noise, size=changed)
            values = np.clip(
                base16[self._net16_index[mask24]] * noise, 0.0, 1.0
            )
            after[mask24] = np.where(
                self.hosting[mask24], values * 0.25, values
            )
        self.uncleanliness_after = after

        per_as = topo.duration_factor(cfg.asys.reference_cleanup_days)
        self.duration_factor_after = per_as[self.as_of_net24_after]

    # -- introspection ---------------------------------------------------------

    @property
    def num_networks(self) -> int:
        """Number of occupied /24s."""
        return int(self.net24.size)

    @property
    def total_population(self) -> int:
        """Total live hosts across all occupied /24s."""
        return int(self.population.astype(np.int64).sum())

    @property
    def net16_index(self) -> np.ndarray:
        """Per-/24 index into :attr:`slash16` (the containing /16)."""
        return self._net16_index

    @property
    def num_as(self) -> int:
        """Number of autonomous systems announcing the occupied space."""
        return self.topology.num_as

    @property
    def reassignment_day(self) -> int:
        """Day the prefix-reassignment event fires, or -1 if none."""
        if self.config.reassignment_fraction > 0:
            return self.config.reassignment_day
        return -1

    def slash16_bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Half-open ``[start, end)`` ranges of each /16's /24 rows.

        ``self.net24`` is address-sorted, so every /16's occupied /24s
        are contiguous; the bounds let kernels (e.g. the DHCP rebind
        kernel in :mod:`repro.sim.dynamics`) redraw addresses within a
        /16's occupied pool without per-row Python loops.
        """
        lows = self.slash16.astype(np.int64)
        starts = np.searchsorted(self.net24, lows)
        ends = np.searchsorted(self.net24, lows + 0x1_0000)
        return starts, ends

    def network_of(self, address: int) -> Optional[int]:
        """Index of the occupied /24 containing ``address``, or None."""
        net = np.uint32(as_int(address) & 0xFFFFFF00)
        idx = int(np.searchsorted(self.net24, net))
        if idx < self.net24.size and self.net24[idx] == net:
            return idx
        return None

    def is_observed(self, address: int) -> bool:
        """Whether an address lies inside the observed edge network."""
        return self.observed_network.contains(address)

    # -- address generation -----------------------------------------------------

    #: Stride for spreading live hosts across a /24.  Real populations are
    #: not packed at the bottom of the block (DHCP pools, static servers,
    #: NAT gateways sit anywhere), and the paper's Table 3 depends on this:
    #: its FP counts collapse past /26 because innocent hosts do NOT share
    #: small sub-blocks with bots.  167 is coprime to 254, so the stride
    #: walk visits every usable offset exactly once.
    HOST_STRIDE = 167

    @classmethod
    def host_offsets(cls, indices: np.ndarray) -> np.ndarray:
        """Last-octet offsets of host slots ``indices`` (0-based) in a /24."""
        spread = (np.asarray(indices, dtype=np.uint32) * cls.HOST_STRIDE) % 254
        return spread + 1

    def host_addresses(self, network_index: int) -> np.ndarray:
        """All live host addresses of one /24 (spread over the block)."""
        base = self.net24[network_index]
        count = int(self.population[network_index])
        return base + self.host_offsets(np.arange(count))

    def sample_hosts(
        self,
        count: int,
        rng: np.random.Generator,
        weights: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Sample ``count`` live host addresses (with replacement).

        ``weights`` are per-/24 selection weights; the default weights by
        host population, which models "addresses observed at a busy
        vantage" and backs the control report.
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if weights is None:
            weights = self.population.astype(np.float64)
        total = weights.sum()
        if total <= 0:
            raise ValueError("weights sum to zero")
        probs = weights / total
        net_idx = rng.choice(self.num_networks, size=count, p=probs)
        slots = (
            rng.random(count) * self.population[net_idx].astype(np.float64)
        ).astype(np.uint32)
        return self.net24[net_idx] + self.host_offsets(slots)

    def sample_unique_hosts(
        self,
        count: int,
        rng: np.random.Generator,
        weights: Optional[np.ndarray] = None,
        max_rounds: int = 12,
    ) -> np.ndarray:
        """Sample until ``count`` *distinct* host addresses are collected.

        Raises if the population cannot supply that many distinct hosts.
        """
        if count > self.total_population:
            raise ValueError(
                f"requested {count} unique hosts but population is "
                f"{self.total_population}"
            )
        seen = np.asarray([], dtype=np.uint32)
        for _ in range(max_rounds):
            need = count - seen.size
            if need <= 0:
                break
            batch = self.sample_hosts(max(need * 2, 64), rng, weights)
            seen = np.union1d(seen, batch)
        if seen.size < count:
            raise RuntimeError("unique host sampling did not converge")
        return rng.choice(seen, size=count, replace=False)

    # -- weights for the actors ----------------------------------------------------

    def compromise_weights(self, affinity: float = 2.0) -> np.ndarray:
        """Per-/24 weights for opportunistic compromise.

        Attackers hit everyone; *successful, persistent* compromise
        concentrates in unclean networks (§1).  Weight = population x
        uncleanliness^affinity.
        """
        return self.population.astype(np.float64) * np.power(
            self.uncleanliness, affinity
        )

    def hosting_weights(self, uncleanliness_pull: float = 0.08) -> np.ndarray:
        """Per-/24 weights for phishing-site placement.

        Phishers prefer hosting blocks (robust web serving, §5.2), with a
        small pull toward unclean space (compromised web servers exist).
        """
        base = self.population.astype(np.float64)
        hosting_term = np.where(self.hosting, 1.0, 0.01)
        return base * (hosting_term + uncleanliness_pull * self.uncleanliness)

    def __repr__(self) -> str:
        return (
            f"SyntheticInternet(networks={self.num_networks}, "
            f"hosts={self.total_population}, observed={self.observed_network})"
        )
