"""Phishing-site placement simulator.

The paper finds that phishing behaves differently from bots (§5.2): past
*bot* activity does not predict future phishing, but past *phishing* does
predict future phishing (Fig. 5).  Its explanation: phishing sites must be
publicly reachable web servers able to survive a flash crowd, so phishers
prefer hosting/datacenter space rather than the unclean consumer space
where bots live — yet whatever selection pressure phishers follow is
itself stable over time.

This simulator reproduces exactly that structure: phishing sites are
placed on /24s weighted by :meth:`SyntheticInternet.hosting_weights`
(hosting-dominated, with only a weak pull toward unclean space) and
persist for weeks, so phishing clusters spatially and self-predicts
temporally while staying decoupled from the botnet's address distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.internet import SyntheticInternet
from repro.sim.timeline import Window

__all__ = ["PhishingConfig", "PhishingSimulation"]


@dataclass(frozen=True)
class PhishingConfig:
    """Parameters of the phishing ecosystem."""

    #: Simulation horizon in days.
    horizon_days: int = 334

    #: Mean new phishing sites stood up per day.
    daily_sites: float = 35.0

    #: Mean site lifetime in days (sites persist until taken down).
    mean_lifetime_days: float = 25.0

    #: Pull toward unclean space (compromised web servers); small by design.
    uncleanliness_pull: float = 0.08

    def validate(self) -> None:
        if self.horizon_days <= 0:
            raise ValueError("horizon_days must be positive")
        if self.daily_sites <= 0:
            raise ValueError("daily_sites must be positive")
        if self.mean_lifetime_days <= 0:
            raise ValueError("mean_lifetime_days must be positive")


class PhishingSimulation:
    """The realised phishing-site history: one row per site."""

    def __init__(
        self,
        internet: SyntheticInternet,
        config: PhishingConfig,
        rng: np.random.Generator,
    ) -> None:
        config.validate()
        self.internet = internet
        self.config = config
        self._generate(rng)

    def _generate(self, rng: np.random.Generator) -> None:
        cfg = self.config
        total = rng.poisson(cfg.daily_sites * cfg.horizon_days)
        if total == 0:
            raise RuntimeError("phishing simulation produced no sites")

        weights = self.internet.hosting_weights(cfg.uncleanliness_pull)
        probs = weights / weights.sum()
        self.network_index = rng.choice(self.internet.num_networks, size=total, p=probs)
        populations = self.internet.population[self.network_index].astype(np.float64)
        slots = (rng.random(total) * populations).astype(np.uint32)
        self.address = self.internet.net24[self.network_index] + (
            self.internet.host_offsets(slots)
        )

        self.start_day = rng.integers(0, cfg.horizon_days, size=total, dtype=np.int64)
        lifetimes = np.maximum(
            1, rng.exponential(cfg.mean_lifetime_days, size=total).astype(np.int64)
        )
        self.end_day = np.minimum(self.start_day + lifetimes, cfg.horizon_days - 1)

        for arr in (self.network_index, self.address, self.start_day, self.end_day):
            arr.setflags(write=False)

    @property
    def num_sites(self) -> int:
        return int(self.address.size)

    def active_mask(self, window: Window) -> np.ndarray:
        """Sites live at any point during ``window``."""
        return (self.start_day <= window.end_day) & (self.end_day >= window.start_day)

    def active_addresses(self, window: Window) -> np.ndarray:
        """Unique addresses hosting a live phishing site during ``window``."""
        return np.unique(self.address[self.active_mask(window)])

    def __repr__(self) -> str:
        return f"PhishingSimulation(sites={self.num_sites})"
