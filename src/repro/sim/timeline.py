"""Simulation clock and calendar.

The simulation runs in whole days indexed from an epoch of 2006-01-01
(day 0), covering the paper's study year.  Flow timestamps are seconds
since that epoch.  :class:`Window` represents an inclusive day range and
maps to the calendar dates the paper quotes (e.g. October 1st-14th, 2006).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "EPOCH",
    "DAY_SECONDS",
    "date_to_day",
    "day_to_date",
    "Window",
    "PAPER_WINDOWS",
]

#: Day 0 of the simulation.
EPOCH = datetime.date(2006, 1, 1)

#: Seconds per simulated day.
DAY_SECONDS = 86_400


def date_to_day(date: datetime.date) -> int:
    """Day index of a calendar date (EPOCH is day 0).

    >>> date_to_day(datetime.date(2006, 1, 1))
    0
    """
    return (date - EPOCH).days


def day_to_date(day: int) -> datetime.date:
    """Calendar date of a day index.

    >>> day_to_date(0).isoformat()
    '2006-01-01'
    """
    return EPOCH + datetime.timedelta(days=day)


@dataclass(frozen=True, order=True)
class Window:
    """An inclusive range of simulation days."""

    start_day: int
    end_day: int

    def __post_init__(self) -> None:
        if self.end_day < self.start_day:
            raise ValueError(
                f"window ends before it starts: {self.start_day}..{self.end_day}"
            )

    @classmethod
    def from_dates(cls, start: datetime.date, end: datetime.date) -> "Window":
        """Window covering the calendar dates ``start``..``end`` inclusive."""
        return cls(date_to_day(start), date_to_day(end))

    @property
    def num_days(self) -> int:
        return self.end_day - self.start_day + 1

    @property
    def start_second(self) -> float:
        """First instant of the window, in epoch seconds."""
        return self.start_day * DAY_SECONDS

    @property
    def end_second(self) -> float:
        """First instant *after* the window, in epoch seconds."""
        return (self.end_day + 1) * DAY_SECONDS

    def days(self) -> Iterator[int]:
        return iter(range(self.start_day, self.end_day + 1))

    def contains_day(self, day: int) -> bool:
        return self.start_day <= day <= self.end_day

    def overlaps(self, other: "Window") -> bool:
        return self.start_day <= other.end_day and other.start_day <= self.end_day

    def dates(self) -> Tuple[datetime.date, datetime.date]:
        """Calendar (start, end) dates, for report metadata."""
        return (day_to_date(self.start_day), day_to_date(self.end_day))

    def __str__(self) -> str:
        start, end = self.dates()
        return f"{start.isoformat()}..{end.isoformat()}"


class PAPER_WINDOWS:
    """The observation windows used throughout the paper (Tables 1-2)."""

    #: The two-week unclean/observation period: October 1st-14th, 2006.
    OCTOBER = Window.from_dates(datetime.date(2006, 10, 1), datetime.date(2006, 10, 14))

    #: The control capture week: September 25th - October 2nd, 2006.
    CONTROL = Window.from_dates(datetime.date(2006, 9, 25), datetime.date(2006, 10, 2))

    #: The bot-test report day: May 10th, 2006 (five months before OCTOBER).
    BOT_TEST = Window.from_dates(datetime.date(2006, 5, 10), datetime.date(2006, 5, 10))

    #: The six-month phishing report: May 1st - November 1st, 2006.
    PHISH = Window.from_dates(datetime.date(2006, 5, 1), datetime.date(2006, 11, 1))

    #: The early-phishing window used for R_phish-test (pre-October half).
    PHISH_TEST = Window.from_dates(datetime.date(2006, 5, 1), datetime.date(2006, 5, 31))

    #: Figure 1's scanning observation period: January - April 2006.
    FIGURE1 = Window.from_dates(datetime.date(2006, 1, 2), datetime.date(2006, 4, 30))

    #: Figure 1's botnet report week (first week of March 2006).
    FIGURE1_BOT = Window.from_dates(datetime.date(2006, 3, 1), datetime.date(2006, 3, 7))
