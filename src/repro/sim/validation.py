"""Statistical validation of the simulation substrate.

The reproduction's conclusions are only as good as its generators, so the
distributional contracts the simulator documents are checked statistically
rather than assumed:

* compromise **start days** are uniform over the horizon (Poisson-process
  arrivals);
* compromise **durations**, standardised by their per-event means, are
  unit-exponential (the defender-persistence model);
* **channel assignment** is uniform over the configured C&C channels;
* compromise **placement** increases with network uncleanliness
  (opportunistic acquisition lands where defence is weak).

Each check returns a :class:`CheckResult` with the test statistic and
p-value; :func:`validate_botnet` bundles them.  Uses scipy for the KS,
chi-square and rank-correlation machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np
from scipy import stats

from repro.sim.botnet import BotnetSimulation

__all__ = ["CheckResult", "validate_botnet"]

#: Checks pass when the p-value clears this level (two-sided tests) or,
#: for the association check, when the correlation is positive and
#: significant at it.
DEFAULT_LEVEL = 0.01


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one distributional check."""

    name: str
    statistic: float
    p_value: float
    passed: bool
    detail: str = ""

    def as_dict(self) -> dict:
        return {
            "check": self.name,
            "statistic": round(self.statistic, 4),
            "p_value": round(self.p_value, 4),
            "passed": self.passed,
            "detail": self.detail,
        }


def check_start_days_uniform(
    botnet: BotnetSimulation, level: float = DEFAULT_LEVEL
) -> CheckResult:
    """KS test of start days against Uniform(0, horizon)."""
    horizon = botnet.config.horizon_days
    # Continuity correction: add uniform jitter inside the day bucket.
    jitter = np.random.default_rng(0).random(botnet.start_day.size)
    values = (botnet.start_day + jitter) / horizon
    statistic, p_value = stats.kstest(values, "uniform")
    return CheckResult(
        name="start_days_uniform",
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value > level),
        detail="Poisson arrivals imply uniform start days",
    )


def check_durations_exponential(
    botnet: BotnetSimulation, level: float = DEFAULT_LEVEL
) -> CheckResult:
    """KS test of standardised durations against Exp(1).

    Each event's duration is exponential with its own uncleanliness-
    driven mean; dividing by that mean should collapse them onto a unit
    exponential.  Horizon-truncated events are censored and excluded, as
    is the floor-at-one-day discretisation (durations of exactly one day
    carry rounding mass).
    """
    cfg = botnet.config
    if botnet.dynamics is None:
        unclean = botnet.internet.uncleanliness[botnet.network_index]
    else:
        epoch_days = botnet.dynamics.config.epoch_days
        unclean = botnet.dynamics.uncleanliness[
            botnet.start_day // epoch_days, botnet.network_index
        ]
    means = cfg.base_duration_days + cfg.duration_gain_days * unclean

    def standardise(durations: np.ndarray) -> np.ndarray:
        usable = (botnet.start_day + durations < cfg.horizon_days - 1) & (
            durations > 1
        )
        return durations[usable] / means[usable]

    observed = standardise(
        (botnet.end_day - botnet.start_day).astype(np.float64)
    )
    # Reference sample pushed through the exact same pipeline (exponential
    # draw, floor to whole days, one-day minimum, truncation filter), so
    # the two-sample KS compares like with like.
    rng = np.random.default_rng(0xD0C)
    reference = standardise(
        np.maximum(1, rng.exponential(means).astype(np.int64)).astype(np.float64)
    )
    statistic, p_value = stats.ks_2samp(observed, reference)
    return CheckResult(
        name="durations_exponential",
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value > level),
        detail="standardised compromise durations ~ Exp(1), day-discretised",
    )


def check_channels_uniform(
    botnet: BotnetSimulation, level: float = DEFAULT_LEVEL
) -> CheckResult:
    """Chi-square test of channel assignment uniformity."""
    counts = np.bincount(botnet.channel, minlength=botnet.config.num_channels)
    statistic, p_value = stats.chisquare(counts)
    return CheckResult(
        name="channels_uniform",
        statistic=float(statistic),
        p_value=float(p_value),
        passed=bool(p_value > level),
        detail="bots join C&C channels uniformly",
    )


def check_placement_tracks_uncleanliness(
    botnet: BotnetSimulation, level: float = DEFAULT_LEVEL
) -> CheckResult:
    """Spearman correlation of per-network compromise rate vs uncleanliness.

    Rates are normalised by population so the association isolates the
    uncleanliness term of the placement weights.
    """
    internet = botnet.internet
    counts = np.bincount(botnet.network_index, minlength=internet.num_networks)
    rate = counts / internet.population.astype(np.float64)
    correlation, p_value = stats.spearmanr(rate, internet.uncleanliness)
    return CheckResult(
        name="placement_tracks_uncleanliness",
        statistic=float(correlation),
        p_value=float(p_value),
        passed=bool(correlation > 0.3 and p_value < level),
        detail="compromise rate rises with network uncleanliness",
    )


def validate_botnet(
    botnet: BotnetSimulation, level: float = DEFAULT_LEVEL
) -> List[CheckResult]:
    """Run every botnet check; returns the individual results."""
    return [
        check_start_days_uniform(botnet, level),
        check_durations_exponential(botnet, level),
        check_channels_uniform(botnet, level),
        check_placement_tracks_uncleanliness(botnet, level),
    ]
