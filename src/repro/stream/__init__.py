"""Streaming uncleanliness: fold day-batches, serve per-IP queries.

The paper's §6 operational loop — observe reports, score prefixes, emit
a blocklist, repeat — as an *online* system instead of a monthly
rebuild:

``repro.stream.batches``
    :class:`DayBatch`: one day of border flows plus any report feeds
    that arrived that day, and the slicing of a window capture into the
    day-batch sequence the fold consumes.
``repro.stream.state``
    :class:`IncrementalState`: the fold.  Rolling report sets, exact
    mergeable detector aggregates, per-prefix unclean block counters,
    the §7 noisy-OR score table and the current recommended blocklist —
    updated per day in work proportional to the day's delta, and
    bit-identical to the batch pipeline after replaying any window.
``repro.stream.checkpoint``
    :class:`StreamStateCodec`: the fold state as a checksummed artifact
    so a restarted service resumes from the last committed day.
``repro.stream.service``
    :class:`UncleanlinessService`: ingest + checkpointing + the
    low-latency query surface (``score``, ``is_blocked``,
    ``top_blocks``) over a precomputed interval index.

The supported entry points are :func:`repro.api.stream_service`,
:func:`repro.api.score`, :func:`repro.api.is_blocked`,
:func:`repro.api.top_blocks` and the ``uncleanliness ingest``/``serve``
CLI verbs.
"""

from repro.stream.batches import DayBatch, day_batches
from repro.stream.checkpoint import StreamStateCodec
from repro.stream.service import UncleanlinessService
from repro.stream.state import IncrementalState, IngestDelta, StreamConfig

__all__ = [
    "DayBatch",
    "day_batches",
    "IncrementalState",
    "IngestDelta",
    "StreamConfig",
    "StreamStateCodec",
    "UncleanlinessService",
]
