"""Day batches: the unit of work the streaming fold consumes.

A :class:`DayBatch` is everything the monitoring point collected for one
simulation day — the day's border flows (which the stream's detectors
fold incrementally) plus whichever third-party report feeds happened to
arrive that day (delivered as whole :class:`~repro.core.report.Report`
objects; report sets are unions, so delivery day does not affect the
final state).

:func:`day_batches` slices a window capture into this sequence using the
shared day-slicing from :mod:`repro.core.folds`, so the stream and the
batch pipeline partition time identically — the precondition for replay
equivalence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping, Optional

from repro.core import folds
from repro.core.report import Report
from repro.flows.generator import BorderTraffic
from repro.flows.log import FlowLog

__all__ = ["DayBatch", "day_batches"]


@dataclass(frozen=True)
class DayBatch:
    """One day of input to the streaming fold.

    Attributes
    ----------
    day:
        Simulation day index (days since the simulation epoch).
    flows:
        The border flows starting within that day.
    provided:
        Report feeds delivered with this batch, keyed by tag.  Feeds
        accumulate by set union, so *when* a feed arrives changes only
        intermediate states, never the final one.
    """

    day: int
    flows: FlowLog = field(default_factory=FlowLog.empty)
    provided: Mapping[str, Report] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "provided", dict(self.provided))

    def __repr__(self) -> str:
        tags = ", ".join(sorted(self.provided)) or "-"
        return (
            f"DayBatch(day={self.day}, flows={len(self.flows)}, "
            f"provided=[{tags}])"
        )


def day_batches(
    traffic: BorderTraffic,
    provided: Optional[Mapping[str, Report]] = None,
    from_day: Optional[int] = None,
) -> Iterator[DayBatch]:
    """Slice a window capture into the day-batch sequence, in order.

    ``provided`` feeds ride along with the first emitted batch (the
    simplest schedule that reproduces the batch pipeline, which sees all
    feeds up front).  ``from_day`` skips days at or before an already
    ingested cursor — used when resuming from a checkpoint, in which
    case the caller must *not* pass ``provided`` again (the checkpoint
    already contains the merged feeds; re-merging is harmless but
    wasteful).
    """
    pending = dict(provided or {})
    for day, flows in folds.day_slices(traffic.flows, traffic.window):
        if from_day is not None and day < from_day:
            continue
        yield DayBatch(day=day, flows=flows, provided=pending)
        pending = {}
