"""Persistence of the streaming fold through the artifact store.

The fold state is exact integers and address sets — everything derived
(scores, blocklist, interval indexes) is a deterministic function of
them — so a checkpoint stores only the exact part and rebuilds the rest
on load.  One checkpoint is written per ingested day under

    ``<stream-fingerprint>/stream.day-<DDDDD>``

followed by a tiny head pointer at ``<stream-fingerprint>/stream.head``
naming the last committed day.  The head is written *after* its day
checkpoint, so a crash between the two leaves the previous head valid:
resume always lands on a fully committed day (crash consistency comes
from ordering, exactly like the store's payload-before-sidecar commit).

Checkpoints inherit every fault-tolerance property of
:class:`repro.engine.store.ArtifactStore`: checksummed payloads,
quarantine on corruption, degradation to memory-only — a checkpoint
that cannot be read is a miss, and the service falls back to the
newest older day or a cold start.
"""

from __future__ import annotations

import datetime
from typing import Dict

import numpy as np

from repro.core import folds
from repro.detect.spam import SpamAggregates
from repro.engine.fingerprint import fingerprint
from repro.engine.store import Codec
from repro.stream.state import BlockCounter, IncrementalState, StreamConfig

__all__ = ["StreamStateCodec", "stream_fingerprint", "day_key", "head_key"]


def stream_fingerprint(config: StreamConfig, source: str) -> str:
    """Checkpoint namespace: the stream config plus the identity of the
    feed producing its batches (e.g. a scenario config fingerprint)."""
    return fingerprint({"stream": config, "source": source})


def day_key(prefix: str, day: int) -> str:
    """Store key of the checkpoint committed after ingesting ``day``."""
    return f"{prefix}/stream.day-{day:05d}"


def head_key(prefix: str) -> str:
    """Store key of the last-committed-day pointer."""
    return f"{prefix}/stream.head"


def _period_meta(period) -> object:
    if period is None:
        return None
    return [period[0].isoformat(), period[1].isoformat()]


def _period_from(meta) -> object:
    if meta is None:
        return None
    return (
        datetime.date.fromisoformat(meta[0]),
        datetime.date.fromisoformat(meta[1]),
    )


class StreamStateCodec(Codec):
    """(De)serialises :class:`IncrementalState` for one fixed config.

    The codec is bound to a :class:`StreamConfig`; the config's
    fingerprint is stored in the sidecar and verified on load, so a
    checkpoint can never silently resume under different detector
    calibrations or scoring weights (a mismatch reads as corrupt).
    """

    name = "stream-state"

    def __init__(self, config: StreamConfig) -> None:
        config.validate()
        self.config = config

    def to_payload(self, value: IncrementalState):
        arrays: Dict[str, np.ndarray] = {"unclean": value._unclean}
        for tag, addresses in value._addresses.items():
            arrays[f"addresses:{tag}"] = addresses
        spam = value._spam
        arrays["spam:sources"] = spam.sources
        arrays["spam:messages"] = spam.messages
        arrays["spam:active_days"] = spam.active_days
        arrays["spam:size_sums"] = spam.size_sums
        arrays["spam:size_sq_sums"] = spam.size_sq_sums
        for cls, counter in value._class_counters.items():
            arrays[f"class:{cls}:blocks"] = counter.blocks
            arrays[f"class:{cls}:counts"] = counter.counts
        for n, counter in value._prefix_counters.items():
            arrays[f"prefix:{n}:blocks"] = counter.blocks
            arrays[f"prefix:{n}:counts"] = counter.counts
        meta = {
            "config_fingerprint": fingerprint(self.config),
            "cursor": value.cursor,
            "days_ingested": value.days_ingested,
            "flows_ingested": value.flows_ingested,
            "tags": sorted(value._addresses),
            "reports": {
                tag: {
                    "report_type": report_type,
                    "data_class": data_class,
                    "period": _period_meta(period),
                }
                for tag, (report_type, data_class, period) in value._meta.items()
            },
        }
        return arrays, meta

    def from_payload(self, arrays, meta) -> IncrementalState:
        if meta["config_fingerprint"] != fingerprint(self.config):
            raise ValueError(
                "stream checkpoint written under a different StreamConfig"
            )
        state = IncrementalState(self.config)
        state.cursor = int(meta["cursor"])
        state.days_ingested = int(meta["days_ingested"])
        state.flows_ingested = int(meta["flows_ingested"])
        state._addresses = {
            tag: arrays[f"addresses:{tag}"].astype(np.uint32)
            for tag in meta["tags"]
        }
        state._meta = {
            tag: (
                entry["report_type"],
                entry["data_class"],
                _period_from(entry["period"]),
            )
            for tag, entry in meta["reports"].items()
        }
        state._spam = SpamAggregates(
            sources=arrays["spam:sources"].astype(np.uint32),
            messages=arrays["spam:messages"].astype(np.int64),
            active_days=arrays["spam:active_days"].astype(np.int64),
            size_sums=arrays["spam:size_sums"].astype(np.float64),
            size_sq_sums=arrays["spam:size_sq_sums"].astype(np.float64),
        )
        state._class_counters = {
            cls: BlockCounter(
                self.config.prefix_len,
                blocks=arrays[f"class:{cls}:blocks"],
                counts=arrays[f"class:{cls}:counts"],
            )
            for cls in folds.CLASS_ORDER
        }
        state._prefix_counters = {
            int(n): BlockCounter(
                int(n),
                blocks=arrays[f"prefix:{n}:blocks"],
                counts=arrays[f"prefix:{n}:counts"],
            )
            for n in self.config.prefixes
        }
        state._unclean = arrays["unclean"].astype(np.uint32)
        state._rebuild_derived()
        return state
