"""The streaming uncleanliness service: ingest, checkpoint, query.

:class:`UncleanlinessService` wraps an :class:`IncrementalState` with

* **durable ingest** — after each day is folded in, the state is
  checkpointed through the artifact store and a head pointer is
  committed (in that order, so resume always lands on a complete day);
* **resume** — :meth:`UncleanlinessService.resume` reconstructs the
  newest committed state for a ``(stream config, source)`` pair, or
  starts cold when there is none;
* a **low-latency query surface** — ``score``, ``is_blocked`` and
  ``top_blocks`` answer from the precomputed interval indexes
  (two binary searches per lookup, no report scans), with per-lookup
  latency recorded to the ``stream.lookup.seconds`` histogram that
  ``benchmarks/bench_stream.py`` holds to a sub-millisecond p99.
"""

from __future__ import annotations

import time
from typing import List, Optional

import numpy as np

from repro.core.uncleanliness import BlockScores
from repro.engine.store import MISS, ArrayCodec, ArtifactStore, default_store
from repro.ipspace.addr import AddressLike
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.stream.batches import DayBatch
from repro.stream.checkpoint import (
    StreamStateCodec,
    day_key,
    head_key,
    stream_fingerprint,
)
from repro.stream.state import IncrementalState, IngestDelta, StreamConfig

__all__ = ["UncleanlinessService"]

_HEAD_CODEC = ArrayCodec()


class UncleanlinessService:
    """A resumable, queryable streaming uncleanliness pipeline."""

    def __init__(
        self,
        config: StreamConfig,
        *,
        source: str = "",
        store: Optional[ArtifactStore] = None,
        state: Optional[IncrementalState] = None,
        checkpointing: bool = True,
    ) -> None:
        config.validate()
        self.config = config
        self.source = source
        self.store = store if store is not None else default_store()
        self.checkpointing = checkpointing
        self.state = state if state is not None else IncrementalState(config)
        self.fingerprint = stream_fingerprint(config, source)
        self._codec = StreamStateCodec(config)
        self.queries = 0

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def resume(
        cls,
        config: StreamConfig,
        *,
        source: str = "",
        store: Optional[ArtifactStore] = None,
        checkpointing: bool = True,
    ) -> "UncleanlinessService":
        """The service at its newest committed checkpoint (cold if none).

        Reads the head pointer, then the day checkpoint it names.  Any
        failure along the way — no head, quarantined checkpoint, config
        mismatch — degrades to a cold start; ingest then simply replays
        from the window start.
        """
        service = cls(
            config, source=source, store=store, checkpointing=checkpointing
        )
        head = service.store.get(head_key(service.fingerprint), _HEAD_CODEC)
        if head is MISS:
            return service
        day = int(np.asarray(head).reshape(-1)[0])
        state = service.store.get(
            day_key(service.fingerprint, day), service._codec
        )
        if state is MISS:
            obs_metrics.inc("stream.resume.missing_checkpoint")
            return service
        # Snapshot again: a memory-tier hit hands every resumer the same
        # object, and resumed services go on to mutate their state.
        service.state = state.snapshot()
        obs_metrics.inc("stream.resume.restored")
        obs_metrics.set_gauge("stream.cursor", state.cursor)
        return service

    @property
    def cursor(self) -> int:
        """Last ingested day (window start - 1 when cold)."""
        return self.state.cursor

    def ingest(self, batch: DayBatch) -> IngestDelta:
        """Fold one day in and commit its checkpoint."""
        delta = self.state.ingest(batch)
        if self.checkpointing:
            with obs_trace.span(
                "stream.checkpoint", day=batch.day, fp=self.fingerprint
            ):
                # Day first, head second: the head only ever names a
                # checkpoint that finished committing.  A snapshot, not
                # the live state — the store's memory tier holds objects
                # by reference and the fold mutates counters in place.
                self.store.put(
                    day_key(self.fingerprint, batch.day),
                    self.state.snapshot(),
                    self._codec,
                )
                self.store.put(
                    head_key(self.fingerprint),
                    np.asarray([batch.day], dtype=np.int64),
                    _HEAD_CODEC,
                )
        return delta

    # -- query surface -----------------------------------------------------

    def _observe_lookup(self, began: float) -> None:
        self.queries += 1
        obs_metrics.inc("stream.lookup.count")
        obs_metrics.observe("stream.lookup.seconds", time.perf_counter() - began)

    def score(self, address: AddressLike) -> float:
        """Uncleanliness score of the block containing ``address``
        (0.0 for blocks never reported)."""
        began = time.perf_counter()
        value = self.state.score_index.value_of(address, default=0.0)
        self._observe_lookup(began)
        return value

    def is_blocked(self, address: AddressLike) -> bool:
        """Whether ``address`` falls inside the current blocklist."""
        began = time.perf_counter()
        verdict = self.state.block_index.contains(address)
        self._observe_lookup(began)
        return verdict

    def top_blocks(self, count: int = 10) -> List[dict]:
        """The ``count`` most unclean blocks with per-class evidence."""
        began = time.perf_counter()
        rows = self.state.scores().top(count)
        self._observe_lookup(began)
        return rows

    def scores_at(self, addresses: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`score` over an address array."""
        return self.state.score_index.values_at(addresses, default=0.0)

    def scores(self) -> BlockScores:
        return self.state.scores()

    def blocklist(self) -> np.ndarray:
        return self.state.blocklist()

    def info(self) -> dict:
        """Service counters for the CLI ``serve`` info command."""
        return {
            "fingerprint": self.fingerprint,
            "window": str(self.config.window),
            "cursor": self.state.cursor,
            "days_ingested": self.state.days_ingested,
            "flows_ingested": self.state.flows_ingested,
            "blocks": len(self.state.scores()),
            "blocklist": int(self.state.blocklist().size),
            "queries": self.queries,
        }

    def __repr__(self) -> str:
        return (
            f"UncleanlinessService(fp={self.fingerprint[:12]}, "
            f"cursor={self.state.cursor}, "
            f"blocklist={int(self.state.blocklist().size)})"
        )
